"""Deterministic fault injection for the characterization and serving runtimes.

The harness wraps the two injectable pipeline stages of
:class:`repro.core.runner.CharacterizationRunner` (``simulate`` and
``estimate_energy``) and perturbs them according to a :class:`FaultPlan`:
named programs raise simulator exceptions, exhaust their instruction
budget, or yield NaN/Inf energies — each a bounded number of times, so
tests can distinguish "transient fault + retry succeeds" from "permanent
fault → structured failure record".  It also fabricates genuinely hanging
programs (an infinite loop contained by the instruction budget) and
corrupts checkpoint files the way a crash mid-write would.

:class:`ServiceChaosPlan` extends the same philosophy one layer up, to
the ``repro serve`` estimation service: a seeded schedule of **worker
crashes** (``os._exit`` in a forked child), **worker hangs** and
**mid-response connection resets**, plus per-name **poisoned requests**
that crash every batch containing them.  The plan only *decides*; the
service stamps directives onto worker items and
:func:`repro.serve.supervise.execute_chaos_directive` executes them in
the worker, so fork-mode chaos kills real processes and inline-mode
chaos raises the equivalent :class:`~repro.serve.supervise.InjectedWorkerCrash`.

Everything here is deterministic: seeded randomness only, no wall-clock.
"""

from __future__ import annotations

import dataclasses
import random
import warnings
from typing import Optional, Sequence

from ..asm import Program, assemble
from ..obs.protocol import SimObserver
from ..obs.session import DEFAULT_MAX_INSTRUCTIONS, SessionFn, run_session
from ..xtcore import ProcessorConfig, SimulationResult, build_processor
from ..xtcore.iss import SimulationError, SimulationLimitExceeded
from ..core.runner import EstimateFn, RunnerTask, SimulateFn

#: Inject on every attempt (never exhausts).
ALWAYS = -1


class InjectedFault(SimulationError):
    """Marker exception for harness-injected simulator faults."""


@dataclasses.dataclass
class _FaultSpec:
    kind: str  # "sim-error" | "budget" | "nan" | "inf"
    remaining: int  # attempts left to inject; ALWAYS = forever

    def fire(self) -> bool:
        if self.remaining == 0:
            return False
        if self.remaining > 0:
            self.remaining -= 1
        return True


class FaultPlan:
    """A per-program-name schedule of injected failures."""

    def __init__(self) -> None:
        self._simulation: dict[str, _FaultSpec] = {}
        self._energy: dict[str, _FaultSpec] = {}
        #: (program name, fault kind) log of every injection fired
        self.injected: list[tuple[str, str]] = []

    # -- scheduling --------------------------------------------------------

    def fail_simulation(self, name: str, times: int = ALWAYS) -> "FaultPlan":
        """Raise :class:`InjectedFault` from the simulator for ``name``."""
        self._simulation[name] = _FaultSpec("sim-error", times)
        return self

    def exhaust_budget(self, name: str, times: int = ALWAYS) -> "FaultPlan":
        """Raise :class:`SimulationLimitExceeded` (a slow/hanging program)."""
        self._simulation[name] = _FaultSpec("budget", times)
        return self

    def nan_energy(self, name: str, times: int = ALWAYS) -> "FaultPlan":
        """Make the reference energy estimate come back as NaN."""
        self._energy[name] = _FaultSpec("nan", times)
        return self

    def inf_energy(self, name: str, times: int = ALWAYS) -> "FaultPlan":
        """Make the reference energy estimate come back as +Inf."""
        self._energy[name] = _FaultSpec("inf", times)
        return self

    # -- stage wrappers ----------------------------------------------------

    def wrap_session(self, inner: Optional[SessionFn] = None) -> SessionFn:
        """A session stage that injects the scheduled simulator faults.

        The returned callable satisfies the keyword-only
        :data:`~repro.obs.session.SessionFn` contract, so it plugs
        directly into :class:`~repro.core.runner.CharacterizationRunner`
        (and anything else built on :func:`repro.obs.run_session`).
        """
        inner_fn = inner if inner is not None else run_session

        def session(
            config: ProcessorConfig,
            program: Program,
            *,
            observers: Sequence[SimObserver] = (),
            collect_trace: bool = False,
            max_instructions: int = DEFAULT_MAX_INSTRUCTIONS,
            entry: Optional[int] = None,
        ) -> SimulationResult:
            spec = self._simulation.get(program.name)
            if spec is not None and spec.fire():
                self.injected.append((program.name, spec.kind))
                if spec.kind == "budget":
                    raise SimulationLimitExceeded(
                        f"injected instruction-budget exhaustion in {program.name!r}"
                    )
                raise InjectedFault(f"injected simulator fault in {program.name!r}")
            return inner_fn(
                config,
                program,
                observers=observers,
                collect_trace=collect_trace,
                max_instructions=max_instructions,
                entry=entry,
            )

        return session

    def wrap_simulate(self, inner: Optional[SimulateFn] = None) -> SimulateFn:
        """Deprecated positional-shape wrapper; use :meth:`wrap_session`.

        Kept for pre-session callers: accepts and returns the old
        positional ``(config, program, collect_trace, max_instructions)``
        stage shape, delegating to :meth:`wrap_session` internally.
        """
        warnings.warn(
            "FaultPlan.wrap_simulate() is deprecated; use wrap_session(), "
            "which follows the keyword-only run_session() signature",
            DeprecationWarning,
            stacklevel=2,
        )
        inner_session: Optional[SessionFn] = None
        if inner is not None:
            inner_positional = inner

            def inner_session(
                config: ProcessorConfig,
                program: Program,
                *,
                observers: Sequence[SimObserver] = (),
                collect_trace: bool = False,
                max_instructions: int = DEFAULT_MAX_INSTRUCTIONS,
                entry: Optional[int] = None,
            ) -> SimulationResult:
                return inner_positional(
                    config, program, collect_trace, max_instructions
                )

        session = self.wrap_session(inner_session)

        def simulate(
            config: ProcessorConfig,
            program: Program,
            collect_trace: bool = False,
            max_instructions: int = DEFAULT_MAX_INSTRUCTIONS,
        ) -> SimulationResult:
            return session(
                config,
                program,
                collect_trace=collect_trace,
                max_instructions=max_instructions,
            )

        return simulate

    def wrap_estimate(self, inner: EstimateFn) -> EstimateFn:
        """An ``estimate_energy`` stage that injects NaN/Inf energies."""

        def estimate(config: ProcessorConfig, result: SimulationResult) -> float:
            spec = self._energy.get(result.program.name)
            if spec is not None and spec.fire():
                self.injected.append((result.program.name, spec.kind))
                return float("nan") if spec.kind == "nan" else float("inf")
            return inner(config, result)

        return estimate


class ServiceChaosPlan:
    """A seeded, deterministic schedule of service-layer faults.

    Batch-granular faults (``crashes``, ``hangs``) are assigned to
    distinct dispatch ordinals drawn from ``range(horizon)`` with a
    seeded RNG: the service counts every batch dispatch and consults
    :meth:`directive_for_batch` with the running ordinal.  Connection
    resets work the same way over response ordinals.  ``poison`` names
    programs whose mere presence in a batch crashes the worker — the
    deterministic stand-in for a request that segfaults the simulator —
    which is what drives the bisect-and-quarantine path.

    Same seed + same traffic ⇒ same injections, so chaos benchmarks and
    smokes are reproducible run to run.
    """

    def __init__(
        self,
        seed: int = 0,
        crashes: int = 0,
        hangs: int = 0,
        resets: int = 0,
        horizon: int = 24,
        hang_seconds: float = 30.0,
        poison: Sequence[str] = (),
    ) -> None:
        if horizon < 1:
            raise ValueError(f"horizon must be >= 1, got {horizon}")
        if crashes + hangs > horizon:
            raise ValueError(
                f"cannot schedule {crashes + hangs} batch faults in a "
                f"horizon of {horizon}"
            )
        self.seed = seed
        self.horizon = horizon
        self.hang_seconds = hang_seconds
        self.poison = frozenset(poison)
        rng = random.Random(seed)
        ordinals = rng.sample(range(horizon), crashes + hangs)
        self._batch_faults: dict[int, str] = {}
        for ordinal in ordinals[:crashes]:
            self._batch_faults[ordinal] = "crash"
        for ordinal in ordinals[crashes:]:
            self._batch_faults[ordinal] = f"hang:{hang_seconds:g}"
        self._reset_ordinals = frozenset(
            rng.sample(range(horizon), min(resets, horizon))
        )
        self._responses_seen = 0
        #: (kind, ordinal) log of every injection actually fired
        self.injected: list[tuple[str, int]] = []

    # -- parent-side decisions ---------------------------------------------

    def directive_for_batch(self, ordinal: int) -> Optional[str]:
        """The chaos directive for one batch dispatch, logging the firing."""
        directive = self._batch_faults.pop(ordinal, None)
        if directive is not None:
            kind = directive.split(":", 1)[0]
            self.injected.append((kind, ordinal))
        return directive

    def rearm(self, directive: str, not_before: int) -> None:
        """Re-schedule a directive whose batch never reached a worker.

        When the pool breaks under a *concurrent* batch, a directive
        already stamped onto this one is consumed without ever executing.
        The service hands it back here: the firing is removed from the
        log and the directive re-enters the schedule at the first free
        ordinal at or after ``not_before`` — the fault count a plan
        promises is the fault count the run actually experiences.
        """
        kind = directive.split(":", 1)[0]
        for index in range(len(self.injected) - 1, -1, -1):
            if self.injected[index][0] == kind:
                del self.injected[index]
                break
        ordinal = max(0, not_before)
        while ordinal in self._batch_faults:
            ordinal += 1
        self._batch_faults[ordinal] = directive

    def is_poisoned(self, item: dict) -> bool:
        """Whether one worker item names a poisoned program."""
        if not self.poison:
            return False
        name = item.get("benchmark") or item.get("name")
        return name in self.poison

    def take_connection_reset(self) -> bool:
        """Whether the current response should be cut mid-write."""
        ordinal = self._responses_seen
        self._responses_seen += 1
        if ordinal in self._reset_ordinals:
            self.injected.append(("reset", ordinal))
            return True
        return False

    def injected_counts(self) -> dict:
        counts: dict[str, int] = {}
        for kind, _ in self.injected:
            counts[kind] = counts.get(kind, 0) + 1
        return counts

    # -- CLI spec ----------------------------------------------------------

    @classmethod
    def parse(cls, spec: str) -> "ServiceChaosPlan":
        """Build a plan from a ``--chaos`` CLI spec string.

        The spec is comma-separated ``key=value`` pairs, e.g.
        ``seed=7,crashes=3,hangs=1,resets=1,horizon=24,hang=2.5,poison=a|b``.
        """
        kwargs: dict = {}
        for token in spec.split(","):
            token = token.strip()
            if not token:
                continue
            key, sep, value = token.partition("=")
            if not sep:
                raise ValueError(f"chaos spec token {token!r} is not key=value")
            key = key.strip()
            value = value.strip()
            if key in ("seed", "crashes", "hangs", "resets", "horizon"):
                kwargs[key] = int(value)
            elif key in ("hang", "hang_seconds"):
                kwargs["hang_seconds"] = float(value)
            elif key == "poison":
                kwargs["poison"] = tuple(
                    name for name in value.split("|") if name
                )
            else:
                raise ValueError(f"unknown chaos spec key {key!r}")
        return cls(**kwargs)


def hanging_task(
    name: str = "fault_hang", max_instructions: int = 2_000
) -> RunnerTask:
    """A real (not mocked) non-terminating program, contained by budget.

    The program is a tight ``j``-to-self loop; simulating it always ends
    in :class:`~repro.xtcore.SimulationLimitExceeded`, which is how the
    runner experiences a slow or hanging workload.
    """
    source = f"{name}:\n    j {name}\n"

    def builder() -> tuple[ProcessorConfig, Program]:
        config = build_processor(f"xt-{name}")
        return config, assemble(source, name, isa=config.isa)

    return RunnerTask(name=name, builder=builder, max_instructions=max_instructions)


def corrupt_checkpoint(path: str, mode: str = "truncate") -> None:
    """Damage a checkpoint file the way a crash or disk fault would.

    ``truncate`` keeps the first half of the bytes (a write cut short);
    ``garbage`` replaces the content with non-JSON bytes.
    """
    if mode == "truncate":
        with open(path, "rb") as handle:
            data = handle.read()
        with open(path, "wb") as handle:
            handle.write(data[: len(data) // 2])
    elif mode == "garbage":
        with open(path, "w", encoding="utf-8") as handle:
            handle.write('{"format": "repro-characterization-samples/1", "samp\x00')
    else:
        raise ValueError(f"unknown corruption mode {mode!r}")
