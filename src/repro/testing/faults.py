"""Deterministic fault injection for the characterization runtime.

The harness wraps the two injectable pipeline stages of
:class:`repro.core.runner.CharacterizationRunner` (``simulate`` and
``estimate_energy``) and perturbs them according to a :class:`FaultPlan`:
named programs raise simulator exceptions, exhaust their instruction
budget, or yield NaN/Inf energies — each a bounded number of times, so
tests can distinguish "transient fault + retry succeeds" from "permanent
fault → structured failure record".  It also fabricates genuinely hanging
programs (an infinite loop contained by the instruction budget) and
corrupts checkpoint files the way a crash mid-write would.

Everything here is deterministic: no randomness, no wall-clock.
"""

from __future__ import annotations

import dataclasses
import warnings
from typing import Optional, Sequence

from ..asm import Program, assemble
from ..obs.protocol import SimObserver
from ..obs.session import DEFAULT_MAX_INSTRUCTIONS, SessionFn, run_session
from ..xtcore import ProcessorConfig, SimulationResult, build_processor
from ..xtcore.iss import SimulationError, SimulationLimitExceeded
from ..core.runner import EstimateFn, RunnerTask, SimulateFn

#: Inject on every attempt (never exhausts).
ALWAYS = -1


class InjectedFault(SimulationError):
    """Marker exception for harness-injected simulator faults."""


@dataclasses.dataclass
class _FaultSpec:
    kind: str  # "sim-error" | "budget" | "nan" | "inf"
    remaining: int  # attempts left to inject; ALWAYS = forever

    def fire(self) -> bool:
        if self.remaining == 0:
            return False
        if self.remaining > 0:
            self.remaining -= 1
        return True


class FaultPlan:
    """A per-program-name schedule of injected failures."""

    def __init__(self) -> None:
        self._simulation: dict[str, _FaultSpec] = {}
        self._energy: dict[str, _FaultSpec] = {}
        #: (program name, fault kind) log of every injection fired
        self.injected: list[tuple[str, str]] = []

    # -- scheduling --------------------------------------------------------

    def fail_simulation(self, name: str, times: int = ALWAYS) -> "FaultPlan":
        """Raise :class:`InjectedFault` from the simulator for ``name``."""
        self._simulation[name] = _FaultSpec("sim-error", times)
        return self

    def exhaust_budget(self, name: str, times: int = ALWAYS) -> "FaultPlan":
        """Raise :class:`SimulationLimitExceeded` (a slow/hanging program)."""
        self._simulation[name] = _FaultSpec("budget", times)
        return self

    def nan_energy(self, name: str, times: int = ALWAYS) -> "FaultPlan":
        """Make the reference energy estimate come back as NaN."""
        self._energy[name] = _FaultSpec("nan", times)
        return self

    def inf_energy(self, name: str, times: int = ALWAYS) -> "FaultPlan":
        """Make the reference energy estimate come back as +Inf."""
        self._energy[name] = _FaultSpec("inf", times)
        return self

    # -- stage wrappers ----------------------------------------------------

    def wrap_session(self, inner: Optional[SessionFn] = None) -> SessionFn:
        """A session stage that injects the scheduled simulator faults.

        The returned callable satisfies the keyword-only
        :data:`~repro.obs.session.SessionFn` contract, so it plugs
        directly into :class:`~repro.core.runner.CharacterizationRunner`
        (and anything else built on :func:`repro.obs.run_session`).
        """
        inner_fn = inner if inner is not None else run_session

        def session(
            config: ProcessorConfig,
            program: Program,
            *,
            observers: Sequence[SimObserver] = (),
            collect_trace: bool = False,
            max_instructions: int = DEFAULT_MAX_INSTRUCTIONS,
            entry: Optional[int] = None,
        ) -> SimulationResult:
            spec = self._simulation.get(program.name)
            if spec is not None and spec.fire():
                self.injected.append((program.name, spec.kind))
                if spec.kind == "budget":
                    raise SimulationLimitExceeded(
                        f"injected instruction-budget exhaustion in {program.name!r}"
                    )
                raise InjectedFault(f"injected simulator fault in {program.name!r}")
            return inner_fn(
                config,
                program,
                observers=observers,
                collect_trace=collect_trace,
                max_instructions=max_instructions,
                entry=entry,
            )

        return session

    def wrap_simulate(self, inner: Optional[SimulateFn] = None) -> SimulateFn:
        """Deprecated positional-shape wrapper; use :meth:`wrap_session`.

        Kept for pre-session callers: accepts and returns the old
        positional ``(config, program, collect_trace, max_instructions)``
        stage shape, delegating to :meth:`wrap_session` internally.
        """
        warnings.warn(
            "FaultPlan.wrap_simulate() is deprecated; use wrap_session(), "
            "which follows the keyword-only run_session() signature",
            DeprecationWarning,
            stacklevel=2,
        )
        inner_session: Optional[SessionFn] = None
        if inner is not None:
            inner_positional = inner

            def inner_session(
                config: ProcessorConfig,
                program: Program,
                *,
                observers: Sequence[SimObserver] = (),
                collect_trace: bool = False,
                max_instructions: int = DEFAULT_MAX_INSTRUCTIONS,
                entry: Optional[int] = None,
            ) -> SimulationResult:
                return inner_positional(
                    config, program, collect_trace, max_instructions
                )

        session = self.wrap_session(inner_session)

        def simulate(
            config: ProcessorConfig,
            program: Program,
            collect_trace: bool = False,
            max_instructions: int = DEFAULT_MAX_INSTRUCTIONS,
        ) -> SimulationResult:
            return session(
                config,
                program,
                collect_trace=collect_trace,
                max_instructions=max_instructions,
            )

        return simulate

    def wrap_estimate(self, inner: EstimateFn) -> EstimateFn:
        """An ``estimate_energy`` stage that injects NaN/Inf energies."""

        def estimate(config: ProcessorConfig, result: SimulationResult) -> float:
            spec = self._energy.get(result.program.name)
            if spec is not None and spec.fire():
                self.injected.append((result.program.name, spec.kind))
                return float("nan") if spec.kind == "nan" else float("inf")
            return inner(config, result)

        return estimate


def hanging_task(
    name: str = "fault_hang", max_instructions: int = 2_000
) -> RunnerTask:
    """A real (not mocked) non-terminating program, contained by budget.

    The program is a tight ``j``-to-self loop; simulating it always ends
    in :class:`~repro.xtcore.SimulationLimitExceeded`, which is how the
    runner experiences a slow or hanging workload.
    """
    source = f"{name}:\n    j {name}\n"

    def builder() -> tuple[ProcessorConfig, Program]:
        config = build_processor(f"xt-{name}")
        return config, assemble(source, name, isa=config.isa)

    return RunnerTask(name=name, builder=builder, max_instructions=max_instructions)


def corrupt_checkpoint(path: str, mode: str = "truncate") -> None:
    """Damage a checkpoint file the way a crash or disk fault would.

    ``truncate`` keeps the first half of the bytes (a write cut short);
    ``garbage`` replaces the content with non-JSON bytes.
    """
    if mode == "truncate":
        with open(path, "rb") as handle:
            data = handle.read()
        with open(path, "wb") as handle:
            handle.write(data[: len(data) // 2])
    elif mode == "garbage":
        with open(path, "w", encoding="utf-8") as handle:
            handle.write('{"format": "repro-characterization-samples/1", "samp\x00')
    else:
        raise ValueError(f"unknown corruption mode {mode!r}")
