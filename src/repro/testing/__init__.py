"""``repro.testing`` — deterministic fault injection for robustness tests.

Production code never imports this package; tests and chaos-style
experiment runs use it to prove the fault-tolerant characterization
runtime (:mod:`repro.core.runner`) contains every failure mode.
"""

from .faults import (
    FaultPlan,
    InjectedFault,
    corrupt_checkpoint,
    hanging_task,
)

__all__ = [
    "FaultPlan",
    "InjectedFault",
    "corrupt_checkpoint",
    "hanging_task",
]
