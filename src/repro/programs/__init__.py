"""``repro.programs`` — verified benchmark workloads.

* :func:`characterization_suite` — the 25 test programs used to fit the
  macro-model (paper Fig. 3);
* :func:`application_suite` — the 10 Table II applications;
* :func:`reed_solomon_choices` — the 4 Fig. 4 custom-instruction design
  points of the Reed-Solomon kernel;
* :func:`fir_choices` — the 3 FIR-filter design points (second DSE study);
* :mod:`repro.programs.extensions` — the custom-instruction library.
"""

from . import extensions, gf
from .apps import application_suite
from .fir import fir_choices
from .data import Lcg, format_words, rand_words
from .registry import BenchmarkCase, expect_word, expect_words
from .reed_solomon import reed_solomon_choices
from .testsuite import characterization_suite

__all__ = [
    "BenchmarkCase",
    "Lcg",
    "application_suite",
    "characterization_suite",
    "expect_word",
    "expect_words",
    "extensions",
    "fir_choices",
    "format_words",
    "gf",
    "rand_words",
    "reed_solomon_choices",
]
