"""Benchmark-case plumbing: source + extensions + functional checks.

A :class:`BenchmarkCase` bundles everything needed to run one workload on
one extended-processor configuration: the assembly source, the custom
instruction spec factories it relies on, and a functional check that
validates the simulated output against a pure-Python reference — every
benchmark in the suite is *verified*, not just executed.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Optional, Sequence

from ..asm import Program, assemble
from ..obs import SimObserver, run_session
from ..tie import TieSpec
from ..xtcore import (
    ExecutableProgram,
    ProcessorConfig,
    SimulationResult,
    build_processor,
    compilation_cache,
)

SpecFactory = Callable[[], TieSpec]
CheckFn = Callable[[SimulationResult], None]


@dataclasses.dataclass
class BenchmarkCase:
    """One (program, processor-extension) workload definition."""

    name: str
    description: str
    source: str
    spec_factories: tuple[SpecFactory, ...] = ()
    check: Optional[CheckFn] = None
    max_instructions: int = 2_000_000
    #: when set, the case runs on this pre-built (possibly shared)
    #: processor instead of compiling its own from ``spec_factories``.
    shared_config: Optional[ProcessorConfig] = None
    _built: Optional[tuple[ProcessorConfig, Program]] = dataclasses.field(
        default=None, repr=False, compare=False
    )

    def build(self) -> tuple[ProcessorConfig, Program]:
        """Build (and cache) the processor config + assembled program.

        The cache matters: a :class:`~repro.xtcore.ProcessorConfig` compares
        by identity of its compiled extensions, so every consumer of this
        case must see the *same* config object.
        """
        if self._built is None:
            if self.shared_config is not None:
                config = self.shared_config
            else:
                specs = [factory() for factory in self.spec_factories]
                config = build_processor(f"xt-{self.name}", specs)
            program = assemble(self.source, self.name, isa=config.isa)
            self._built = (config, program)
        return self._built

    @property
    def config(self) -> ProcessorConfig:
        return self.build()[0]

    @property
    def program(self) -> Program:
        return self.build()[1]

    @property
    def executable(self) -> ExecutableProgram:
        """The case's compiled form, via the process-wide compilation cache.

        ``run()`` resolves the same cache entry through ``run_session``, so
        repeated runs of one case never re-lower the program; this accessor
        exists for callers that want the lowering itself (benchmarks,
        diagnostics).
        """
        config, program = self.build()
        return compilation_cache().get_or_compile(config, program)

    def run(
        self,
        collect_trace: bool = False,
        observers: Sequence[SimObserver] = (),
    ) -> SimulationResult:
        """Simulate the case (does not run the functional check)."""
        config, program = self.build()
        return run_session(
            config,
            program,
            observers=observers,
            collect_trace=collect_trace,
            max_instructions=self.max_instructions,
        )

    def run_verified(
        self,
        collect_trace: bool = False,
        observers: Sequence[SimObserver] = (),
    ) -> SimulationResult:
        """Simulate and run the functional check (if any)."""
        result = self.run(collect_trace=collect_trace, observers=observers)
        self.verify(result)
        return result

    def verify(self, result: SimulationResult) -> None:
        if self.check is not None:
            self.check(result)


def expect_words(symbol: str, expected: list[int]) -> CheckFn:
    """Check helper: memory at ``symbol`` must hold ``expected`` words."""

    def check(result: SimulationResult) -> None:
        actual = result.words(symbol, len(expected))
        masked = [value & 0xFFFFFFFF for value in expected]
        if actual != masked:
            mismatches = [
                f"[{i}] got {a:#x}, want {e:#x}"
                for i, (a, e) in enumerate(zip(actual, masked))
                if a != e
            ]
            raise AssertionError(
                f"{result.program.name}: output mismatch at {symbol!r}: "
                + "; ".join(mismatches[:8])
                + (f" (+{len(mismatches) - 8} more)" if len(mismatches) > 8 else "")
            )

    return check


def expect_word(symbol: str, expected: int) -> CheckFn:
    """Check helper: single 32-bit word at ``symbol``."""
    return expect_words(symbol, [expected])
