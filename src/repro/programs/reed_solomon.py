"""Reed-Solomon syndrome kernel with four custom-instruction choices.

The paper's Fig. 4 evaluates the *relative* accuracy of the macro-model:
one application (a Reed-Solomon decoder/encoder) implemented with four
different custom-instruction choices, whose energy profile from the
macro-model must track the profile from the reference RTL estimator.

The kernel computes the 2t = 8 syndromes of a received GF(2^8) codeword
block by Horner's rule: ``S_j = ((...((0*a_j ^ r_{n-1})*a_j ^ r_{n-2})...)
^ r_0)`` with ``a_j = alpha^j``.  The four design points:

========  =====================================================================
choice    custom-instruction set
========  =====================================================================
``sw``    none — GF multiplication in software (shift-and-xor subroutine)
``gfmul`` single-cycle table-based GF multiplier instruction
``gfmac`` fused Horner step: ``gfacc = gfacc * alpha ^ symbol`` in one insn
``dual``  2-wide fused Horner step — two syndromes per pass over the data
========  =====================================================================

All four variants produce bit-identical syndromes, verified against the
pure-Python reference in :mod:`repro.programs.gf`.
"""

from __future__ import annotations

from ..tie import TieSpec, TieState
from ..xtcore import DEFAULT_MAX_INSTRUCTIONS
from . import extensions as ext
from . import gf
from .data import Lcg, format_words
from .registry import BenchmarkCase, expect_words

#: Number of received symbols per block and syndrome count (2t).
BLOCK_SYMBOLS = 48
SYNDROME_COUNT = 8


def _workload() -> tuple[list[int], list[int], list[int]]:
    """(received symbols, alpha^j list, expected syndromes)."""
    received = [Lcg(1501).below(256) for _ in range(BLOCK_SYMBOLS)]
    alphas = [gf.gf_pow(2, j) for j in range(1, SYNDROME_COUNT + 1)]
    expected = gf.syndromes(received, SYNDROME_COUNT)
    return received, alphas, expected


# ---------------------------------------------------------------------------
# choice 4 hardware: the 2-wide fused Horner step
# ---------------------------------------------------------------------------


def _gfacc2() -> TieState:
    return TieState("gfacc2", width=16)


def _gf_mult_subgraph(spec: TieSpec, a, b, tag: str):
    """Instantiate one table-based GF(2^8) multiplier in ``spec``."""
    log_data = list(gf.log_table())
    alog_data = list(gf.alog_table())
    log_a = spec.table(f"gflog_{tag}a", log_data, a, out_width=8)
    log_b = spec.table(f"gflog_{tag}b", log_data, b, out_width=8)
    total = spec.add(spec.zero_extend(log_a, 9), spec.zero_extend(log_b, 9), width=9)
    wrapped = spec.sub(total, spec.const(255, 9), width=9)
    needs_wrap = spec.compare("ge_u", total, spec.const(255, 9))
    index = spec.slice(spec.mux(needs_wrap, wrapped, total), 0, 8)
    product = spec.table(f"gfalog_{tag}", alog_data, index, out_width=8)
    a_zero = spec.compare("eq", a, spec.const(0, 8))
    b_zero = spec.compare("eq", b, spec.const(0, 8))
    either = spec.bit_or(a_zero, b_zero)
    return spec.mux(either, spec.const(0, 8), product)


def gfmac2_spec() -> TieSpec:
    """``gfmac2 rs`` — two parallel Horner steps on the packed state.

    ``rs`` packs symbol[7:0], alpha1[15:8], alpha2[23:16]; the 16-bit
    state ``gfacc2`` packs the two 8-bit accumulators.
    """
    spec = TieSpec(
        "gfmac2", fmt="RS1", description="dual Horner: gfacc2.lo/hi = acc*alpha ^ sym"
    )
    acc = spec.use_state(_gfacc2())
    word = spec.source("rs", width=24)
    symbol = spec.slice(word, 0, 8)
    alpha1 = spec.slice(word, 8, 8)
    alpha2 = spec.slice(word, 16, 8)
    state = spec.read_state(acc)
    acc1 = spec.slice(state, 0, 8)
    acc2 = spec.slice(state, 8, 8)
    new1 = spec.bit_xor(_gf_mult_subgraph(spec, acc1, alpha1, "p1"), symbol)
    new2 = spec.bit_xor(_gf_mult_subgraph(spec, acc2, alpha2, "p2"), symbol)
    spec.write_state(acc, spec.concat(new2, new1))
    return spec


def rdgf2_spec() -> TieSpec:
    """``rdgf2 rd`` — rd = packed dual accumulator (acc2<<8 | acc1)."""
    spec = TieSpec("rdgf2", fmt="RD1", description="rd = gfacc2")
    acc = spec.use_state(_gfacc2())
    spec.result(spec.zero_extend(spec.read_state(acc), 32))
    return spec


def wrgf2_spec() -> TieSpec:
    """``wrgf2 rs`` — gfacc2 = rs[15:0]."""
    spec = TieSpec("wrgf2", fmt="RS1", description="gfacc2 = rs[15:0]")
    acc = spec.use_state(_gfacc2())
    spec.write_state(acc, spec.source("rs", width=16))
    return spec


# ---------------------------------------------------------------------------
# the four program variants
# ---------------------------------------------------------------------------


def _data_section(received: list[int], alphas: list[int]) -> str:
    return f"""
    .data
received:
{format_words(received, directive=".byte", per_line=16)}
alphas:
{format_words(alphas, directive=".byte", per_line=16)}
    .align 4
synd: .space {SYNDROME_COUNT * 4}
"""


def rs_software() -> BenchmarkCase:
    received, alphas, expected = _workload()
    source = _data_section(received, alphas) + f"""
    .text
main:
    movi a15, 0          ; j
syndrome_loop:
    la a2, alphas
    add a2, a2, a15
    l8ui a14, a2, 0      ; alpha_j
    movi a13, 0          ; acc
    la a12, received
    addi a12, a12, {BLOCK_SYMBOLS - 1}
    movi a11, {BLOCK_SYMBOLS}
horner:
    ; acc = gfmult_sw(acc, alpha_j) ^ r[i]
    mov a6, a13
    mov a7, a14
    call gfmult_sw
    l8ui a5, a12, 0
    xor a13, a8, a5
    addi a12, a12, -1
    addi a11, a11, -1
    bnez a11, horner
    ; synd[j] = acc
    la a2, synd
    slli a3, a15, 2
    add a2, a2, a3
    s32i a13, a2, 0
    addi a15, a15, 1
    blti a15, {SYNDROME_COUNT}, syndrome_loop
    halt

; GF(2^8) multiply, poly 0x11D: a8 = a6 * a7 (clobbers a6, a7, a10)
gfmult_sw:
    movi a8, 0
    movi a10, 8
gfm_loop:
    bbc a7, 0, gfm_no_add
    xor a8, a8, a6
gfm_no_add:
    slli a6, a6, 1
    bbc a6, 8, gfm_no_red
    xori a6, a6, 0x11D
gfm_no_red:
    srli a7, a7, 1
    addi a10, a10, -1
    bnez a10, gfm_loop
    ret
"""
    return BenchmarkCase(
        name="rs_sw",
        description="Reed-Solomon syndromes, software GF multiply (no TIE)",
        source=source,
        check=expect_words("synd", expected),
        max_instructions=DEFAULT_MAX_INSTRUCTIONS,
    )


def rs_gfmul() -> BenchmarkCase:
    received, alphas, expected = _workload()
    source = _data_section(received, alphas) + f"""
    .text
main:
    movi a15, 0          ; j
syndrome_loop:
    la a2, alphas
    add a2, a2, a15
    l8ui a14, a2, 0      ; alpha_j
    movi a13, 0          ; acc
    la a12, received
    addi a12, a12, {BLOCK_SYMBOLS - 1}
    movi a11, {BLOCK_SYMBOLS}
horner:
    gfmul a8, a13, a14
    l8ui a5, a12, 0
    xor a13, a8, a5
    addi a12, a12, -1
    addi a11, a11, -1
    bnez a11, horner
    la a2, synd
    slli a3, a15, 2
    add a2, a2, a3
    s32i a13, a2, 0
    addi a15, a15, 1
    blti a15, {SYNDROME_COUNT}, syndrome_loop
    halt
"""
    return BenchmarkCase(
        name="rs_gfmul",
        description="Reed-Solomon syndromes, table-based gfmul instruction",
        source=source,
        spec_factories=(ext.gfmul_spec,),
        check=expect_words("synd", expected),
    )


def rs_gfmac() -> BenchmarkCase:
    received, alphas, expected = _workload()
    source = _data_section(received, alphas) + f"""
    .text
main:
    movi a15, 0          ; j
syndrome_loop:
    la a2, alphas
    add a2, a2, a15
    l8ui a14, a2, 0      ; alpha_j
    slli a14, a14, 8     ; pre-shift alpha into [15:8]
    movi a4, 0
    wrgf a4              ; gfacc = 0
    la a12, received
    addi a12, a12, {BLOCK_SYMBOLS - 1}
    movi a11, {BLOCK_SYMBOLS}
horner:
    l8ui a5, a12, 0
    or a5, a5, a14       ; pack alpha|symbol
    gfmac a5             ; gfacc = gfacc*alpha ^ symbol
    addi a12, a12, -1
    addi a11, a11, -1
    bnez a11, horner
    rdgf a13
    la a2, synd
    slli a3, a15, 2
    add a2, a2, a3
    s32i a13, a2, 0
    addi a15, a15, 1
    blti a15, {SYNDROME_COUNT}, syndrome_loop
    halt
"""
    return BenchmarkCase(
        name="rs_gfmac",
        description="Reed-Solomon syndromes, fused gfmac Horner instruction",
        source=source,
        spec_factories=(ext.gfmac_spec, ext.rdgf_spec, ext.wrgf_spec),
        check=expect_words("synd", expected),
    )


def rs_dual() -> BenchmarkCase:
    received, alphas, expected = _workload()
    source = _data_section(received, alphas) + f"""
    .text
main:
    movi a15, 0          ; pair index: 0, 2, 4, 6
pair_loop:
    la a2, alphas
    add a2, a2, a15
    l8ui a14, a2, 0      ; alpha_(j)
    l8ui a13, a2, 1      ; alpha_(j+1)
    slli a14, a14, 8
    slli a13, a13, 16
    or a14, a14, a13     ; packed alphas [23:8]
    movi a4, 0
    wrgf2 a4             ; both accumulators = 0
    la a12, received
    addi a12, a12, {BLOCK_SYMBOLS - 1}
    movi a11, {BLOCK_SYMBOLS}
horner:
    l8ui a5, a12, 0
    or a5, a5, a14       ; pack alphas|symbol
    gfmac2 a5            ; dual Horner step
    addi a12, a12, -1
    addi a11, a11, -1
    bnez a11, horner
    rdgf2 a13
    ; synd[j] = acc1; synd[j+1] = acc2
    la a2, synd
    slli a3, a15, 2
    add a2, a2, a3
    andi a4, a13, 255
    s32i a4, a2, 0
    srli a4, a13, 8
    s32i a4, a2, 4
    addi a15, a15, 2
    blti a15, {SYNDROME_COUNT}, pair_loop
    halt
"""
    return BenchmarkCase(
        name="rs_dual",
        description="Reed-Solomon syndromes, 2-wide fused Horner instruction",
        source=source,
        spec_factories=(gfmac2_spec, rdgf2_spec, wrgf2_spec),
        check=expect_words("synd", expected),
    )


def reed_solomon_choices() -> list[BenchmarkCase]:
    """The four Fig. 4 design points, in increasing-specialization order."""
    return [rs_software(), rs_gfmul(), rs_gfmac(), rs_dual()]
