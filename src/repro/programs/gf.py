"""GF(2^8) arithmetic — tables and reference operations.

Used by the Reed-Solomon workload (paper Fig. 4) both to *generate* the
lookup tables baked into the ``gfmul``-family custom instructions and to
compute reference results for functional verification of the assembly
kernels.

The field is GF(2^8) with the primitive polynomial x^8+x^4+x^3+x^2+1
(0x11D) and generator alpha = 2, the conventional Reed-Solomon choice.
"""

from __future__ import annotations

from functools import lru_cache

#: Primitive polynomial of the field (with the x^8 term).
PRIMITIVE_POLY = 0x11D

#: Field size.
FIELD_SIZE = 256


@lru_cache(maxsize=1)
def _tables() -> tuple[tuple[int, ...], tuple[int, ...]]:
    """Build (log, alog) tables for GF(2^8).

    ``alog[i] = alpha^i`` for i in 0..254 (entry 255 wraps to alpha^0 so
    the hardware table has a power-of-two 256 entries); ``log[alog[i]] =
    i`` with ``log[0] = 0`` as a don't-care (hardware masks zero inputs).
    """
    alog = [0] * FIELD_SIZE
    log = [0] * FIELD_SIZE
    value = 1
    for exponent in range(FIELD_SIZE - 1):
        alog[exponent] = value
        log[value] = exponent
        value <<= 1
        if value & 0x100:
            value ^= PRIMITIVE_POLY
    alog[FIELD_SIZE - 1] = alog[0]  # wrap: alpha^255 == alpha^0
    return tuple(log), tuple(alog)


def log_table() -> tuple[int, ...]:
    """The 256-entry discrete-log table (log[0] is a masked don't-care)."""
    return _tables()[0]


def alog_table() -> tuple[int, ...]:
    """The 256-entry antilog table, alog[i] = alpha^(i mod 255)."""
    return _tables()[1]


def gf_mult(a: int, b: int) -> int:
    """Reference GF(2^8) multiplication (shift-and-xor, table-free)."""
    if not 0 <= a < FIELD_SIZE or not 0 <= b < FIELD_SIZE:
        raise ValueError(f"GF(256) operands out of range: {a}, {b}")
    product = 0
    while b:
        if b & 1:
            product ^= a
        a <<= 1
        if a & 0x100:
            a ^= PRIMITIVE_POLY
        b >>= 1
    return product


def gf_mult_table(a: int, b: int) -> int:
    """Table-based GF multiply (mirrors the custom-hardware dataflow)."""
    if a == 0 or b == 0:
        return 0
    log, alog = _tables()
    s = log[a] + log[b]
    if s >= FIELD_SIZE - 1:
        s -= FIELD_SIZE - 1
    return alog[s]


def gf_pow(base: int, exponent: int) -> int:
    """base ** exponent in GF(2^8)."""
    result = 1
    for _ in range(exponent):
        result = gf_mult(result, base)
    return result


def syndromes(received: list[int], count: int) -> list[int]:
    """Reed-Solomon syndromes S_j = sum_i r_i * alpha^(i*j), j = 1..count.

    The reference implementation of the Fig. 4 workload kernel.
    """
    out: list[int] = []
    for j in range(1, count + 1):
        alpha_j = gf_pow(2, j)
        accumulator = 0
        for symbol in reversed(received):  # Horner: S = S*alpha^j + r_i
            accumulator = gf_mult(accumulator, alpha_j) ^ symbol
        out.append(accumulator)
    return out
