"""The characterization test-program suite (25 programs, paper Fig. 3).

Regression macro-modeling needs only "diversity in instruction
statistics" (paper Sec. I), so the suite mixes:

* base-ISA kernels that each stress one energy class or event type
  (ALU, multiply, shifts, loads, stores, branches, jumps, D-cache
  thrash, I-cache thrash, uncached fetch, interlocks);
* custom-instruction kernels that together cover **all ten** hardware
  library component categories on differently extended processors;
* mixed application-like kernels.

Every program carries a functional check against an independent Python
mirror of its computation, so the characterization inputs are verified,
not merely executed.
"""

from __future__ import annotations

from . import extensions as ext
from .data import Lcg, format_words
from .registry import BenchmarkCase, expect_word, expect_words

_U32 = 0xFFFFFFFF


# ---------------------------------------------------------------------------
# 1-3: ALU / multiplier / shifter class stress
# ---------------------------------------------------------------------------


def _tp01_alu_mix() -> BenchmarkCase:
    iterations = 400

    def mirror() -> int:
        a3, a4 = 17, 3
        for _ in range(iterations):
            a5 = (a3 + a4) & _U32
            a3 = (a5 ^ a4) & _U32
            a4 = (a5 - a3) & _U32
            a6 = max(a3, a4)
            a3 = (a3 | (a6 & 0xFF)) & _U32
            a4 = (a4 + 7) & _U32
        return a3

    source = f"""
    .data
out: .word 0
    .text
main:
    movi a2, {iterations}
    movi a3, 17
    movi a4, 3
loop:
    add a5, a3, a4
    xor a3, a5, a4
    sub a4, a5, a3
    maxu a6, a3, a4
    andi a6, a6, 255
    or a3, a3, a6
    addi a4, a4, 7
    addi a2, a2, -1
    bnez a2, loop
    la a7, out
    s32i a3, a7, 0
    halt
"""
    return BenchmarkCase(
        name="tp01_alu_mix",
        description="register-register ALU variety loop (arith class)",
        source=source,
        check=expect_word("out", mirror()),
    )


def _tp02_mul_div() -> BenchmarkCase:
    iterations = 150

    def mirror() -> int:
        x, acc = 12345, 0
        for _ in range(iterations):
            x = (x * 16807 + 12345) & _U32
            h = (x * x) >> 32
            q = x // 97
            r = x % 97
            acc = (acc + h + q + r) & _U32
        return acc & _U32

    source = f"""
    .data
out: .word 0
    .text
main:
    movi a2, {iterations}
    li a3, 12345
    li a4, 16807
    movi a5, 97
    movi a6, 0
    li a12, 12345
loop:
    mull a7, a3, a4
    add a3, a7, a12
    mulhu a8, a3, a3
    quou a9, a3, a5
    remu a10, a3, a5
    add a6, a6, a8
    add a6, a6, a9
    add a6, a6, a10
    addi a2, a2, -1
    bnez a2, loop
    la a7, out
    s32i a6, a7, 0
    halt
"""
    return BenchmarkCase(
        name="tp02_mul_div",
        description="multiply/divide-heavy loop (long-latency arith)",
        source=source,
        check=expect_word("out", mirror()),
    )


def _tp03_shift_mix() -> BenchmarkCase:
    iterations = 350

    def mirror() -> int:
        x = 0x1234ABCD
        acc = 0
        for i in range(iterations):
            s = i & 31
            left = (x << s) & _U32
            right = x >> (31 - s)
            rot = ((x << (s % 32 or 32)) | (x >> (32 - (s % 32 or 32)))) & _U32 if s else x
            x = (left ^ right) & _U32
            acc = (acc + rot + x) & _U32
        return acc

    source = f"""
    .data
out: .word 0
    .text
main:
    movi a2, {iterations}
    li a3, 0x1234ABCD
    movi a4, 0          ; i
    movi a6, 0          ; acc
    movi a9, 31
loop:
    andi a5, a4, 31     ; s
    sll a7, a3, a5      ; left
    sub a8, a9, a5      ; 31-s
    srl a8, a3, a8      ; right
    rotl a10, a3, a5    ; rot
    xor a3, a7, a8
    add a6, a6, a10
    add a6, a6, a3
    addi a4, a4, 1
    addi a2, a2, -1
    bnez a2, loop
    la a7, out
    s32i a6, a7, 0
    halt
"""

    def mirror_exact() -> int:
        x = 0x1234ABCD
        acc = 0
        for i in range(iterations):
            s = i & 31
            left = (x << s) & _U32
            right = x >> ((31 - s) & 31)
            rot = ((x << s) | (x >> ((32 - s) & 31))) & _U32 if s else x
            x = (left ^ right) & _U32
            acc = (acc + rot + x) & _U32
        return acc

    return BenchmarkCase(
        name="tp03_shift_mix",
        description="shift/rotate-heavy loop (base shifter)",
        source=source,
        check=expect_word("out", mirror_exact()),
    )


# ---------------------------------------------------------------------------
# 4-6: memory class stress
# ---------------------------------------------------------------------------


def _tp04_load_stream() -> BenchmarkCase:
    values = Lcg(41).words(256)
    passes = 6

    def mirror() -> int:
        acc = 0
        for _ in range(passes):
            for value in values:
                acc = (acc + value) & _U32
        return acc

    source = f"""
    .data
arr:
{format_words(values)}
out: .word 0
    .text
main:
    movi a2, {passes}
outer:
    la a3, arr
    movi a4, {len(values) // 4}
inner:
    l32i a5, a3, 0
    l32i a6, a3, 4
    l32i a7, a3, 8
    l32i a8, a3, 12
    add a9, a5, a6
    add a10, a7, a8
    add a11, a11, a9
    add a11, a11, a10
    addi a3, a3, 16
    addi a4, a4, -1
    bnez a4, inner
    addi a2, a2, -1
    bnez a2, outer
    la a3, out
    s32i a11, a3, 0
    halt
"""
    return BenchmarkCase(
        name="tp04_load_stream",
        description="sequential word loads (load class, D$ hits)",
        source=source,
        check=expect_word("out", mirror()),
    )


def _tp05_store_fill() -> BenchmarkCase:
    count = 320

    def mirror() -> list[int]:
        return [(7 * i + 3) & _U32 for i in range(count)]

    source = f"""
    .data
buf: .space {count * 4}
    .text
main:
    la a2, buf
    movi a3, 0          ; i
    movi a4, {count}
    movi a5, 3          ; value
loop:
    s32i a5, a2, 0
    s16i a5, a2, 0      ; redundant store (store-class pressure)
    addi a5, a5, 7
    addi a2, a2, 4
    addi a3, a3, 1
    bne a3, a4, loop
    halt
"""
    return BenchmarkCase(
        name="tp05_store_fill",
        description="store-dominated fill loop (store class)",
        source=source,
        check=expect_words("buf", mirror()),
    )


def _tp06_memcpy() -> BenchmarkCase:
    values = Lcg(99).words(200)

    source = f"""
    .data
src:
{format_words(values)}
dst: .space {len(values) * 4}
    .text
main:
    la a2, src
    la a3, dst
    movi a4, {len(values)}
loop:
    l32i a5, a2, 0
    s32i a5, a3, 0
    addi a2, a2, 4
    addi a3, a3, 4
    addi a4, a4, -1
    bnez a4, loop
    halt
"""
    return BenchmarkCase(
        name="tp06_memcpy",
        description="word-wise memcpy (balanced load/store)",
        source=source,
        check=expect_words("dst", list(values)),
    )


# ---------------------------------------------------------------------------
# 7-9: control-flow stress
# ---------------------------------------------------------------------------


def _tp07_branch_taken() -> BenchmarkCase:
    outer = 120
    inner = 12

    def mirror() -> int:
        acc = 0
        for i in range(outer):
            for j in range(inner):
                acc = (acc + i + j) & _U32
        return acc

    source = f"""
    .data
out: .word 0
    .text
main:
    movi a2, 0          ; i
    movi a6, 0          ; acc
    movi a8, {outer}
outer:
    movi a3, 0          ; j
inner:
    add a4, a2, a3
    add a6, a6, a4
    addi a3, a3, 1
    blti a3, {inner}, inner
    addi a2, a2, 1
    blt a2, a8, outer
    la a5, out
    s32i a6, a5, 0
    halt
"""
    return BenchmarkCase(
        name="tp07_branch_taken",
        description="tight nested loops (branch-taken dominated)",
        source=source,
        check=expect_word("out", mirror()),
    )


def _tp08_branch_untaken() -> BenchmarkCase:
    values = Lcg(7).words(256, bits=16)
    threshold = 0xF000  # rarely exceeded
    passes = 4

    def mirror() -> int:
        hits = 0
        for _ in range(passes):
            for value in values:
                if value >= threshold:
                    hits += 1
                if value == 12345:
                    hits += 100
                if (value & 1) == 0 and value < 4:
                    hits += 10
        return hits

    source = f"""
    .data
arr:
{format_words(values)}
out: .word 0
    .text
main:
    movi a2, {passes}
    movi a7, 0          ; hits
    li a8, {threshold}
    li a9, 12345
outer:
    la a3, arr
    movi a4, {len(values)}
inner:
    l32i a5, a3, 0
    bltu a5, a8, skip1
    addi a7, a7, 1
skip1:
    bne a5, a9, skip2
    addi a7, a7, 100
skip2:
    bbs a5, 0, skip3
    bgei a5, 4, skip3
    addi a7, a7, 10
skip3:
    addi a3, a3, 4
    addi a4, a4, -1
    bnez a4, inner
    addi a2, a2, -1
    bnez a2, outer
    la a3, out
    s32i a7, a3, 0
    halt
"""
    return BenchmarkCase(
        name="tp08_branch_untaken",
        description="scan with rarely-true conditions (branch-untaken)",
        source=source,
        check=expect_word("out", mirror()),
    )


def _tp09_call_jump() -> BenchmarkCase:
    iterations = 140

    def mirror() -> int:
        acc = 0
        for i in range(iterations):
            acc = (acc + 3) & _U32       # fn1
            acc = (acc ^ 0x55) & _U32    # fn2
            acc = (acc + (acc >> 3)) & _U32  # fn3 via callx
        return acc

    source = f"""
    .data
out: .word 0
    .text
main:
    movi a2, {iterations}
    movi a6, 0          ; acc
    la a10, fn3
loop:
    call fn1
    call fn2
    callx a10
    addi a2, a2, -1
    bnez a2, loop
    j finish
fn1:
    addi a6, a6, 3
    ret
fn2:
    xori a6, a6, 0x55
    ret
fn3:
    srli a7, a6, 3
    add a6, a6, a7
    ret
finish:
    la a3, out
    s32i a6, a3, 0
    halt
"""
    return BenchmarkCase(
        name="tp09_call_jump",
        description="call/callx/ret chains (jump class)",
        source=source,
        check=expect_word("out", mirror()),
    )


# ---------------------------------------------------------------------------
# 10-13: dynamic non-idealities (D$ miss, I$ miss, uncached, interlock)
# ---------------------------------------------------------------------------


def _tp10_dcache_thrash() -> BenchmarkCase:
    # 8 blocks exactly one D$-set apart (stride 4096 on a 16KB 4-way cache
    # with 32B lines -> all map to set 0): guaranteed conflict misses.
    blocks = 8
    stride = 4096
    passes = 160

    def mirror() -> int:
        # memory is zero-initialized; each pass adds block index values
        memory = [0] * blocks
        acc = 0
        for _ in range(passes):
            for b in range(blocks):
                acc = (acc + memory[b]) & _U32
                memory[b] = (memory[b] + b) & _U32
        return acc

    source = f"""
    .data
buf: .space {blocks * stride}
out: .word 0
    .text
main:
    movi a2, {passes}
    li a9, {stride}
    movi a11, 0          ; acc
outer:
    la a3, buf
    movi a4, 0           ; block index
inner:
    l32i a5, a3, 0
    add a11, a11, a5
    add a5, a5, a4
    s32i a5, a3, 0
    add a3, a3, a9
    addi a4, a4, 1
    blti a4, {blocks}, inner
    addi a2, a2, -1
    bnez a2, outer
    la a3, out
    s32i a11, a3, 0
    halt
"""
    return BenchmarkCase(
        name="tp10_dcache_thrash",
        description="conflict-miss pointer walk (D-cache misses)",
        source=source,
        check=expect_word("out", mirror()),
    )


def _tp11_icache_thrash() -> BenchmarkCase:
    # Six one-line code blocks 16KB apart all alias to the same set of the
    # 4-way I$ -> the round-robin walk LRU-thrashes and misses on every
    # block, every iteration.
    iterations = 130

    def mirror() -> int:
        acc = 0
        for _ in range(iterations):
            acc = (acc + 1) & _U32
            acc = (acc ^ 0x0F) & _U32
            acc = (acc + 5) & _U32
            acc = (acc - 9) & _U32
            acc = (acc ^ 0x33) & _U32
            acc = (acc * 3) & _U32
        return acc

    source = f"""
    .data
out: .word 0
    .text
main:
    movi a2, {iterations}
    movi a6, 0
    movi a8, 3
    j block0
    .org 0x4000
block0:
    addi a6, a6, 1
    j block1
    .org 0x8000
block1:
    xori a6, a6, 0x0F
    j block2
    .org 0xC000
block2:
    addi a6, a6, 5
    j block3
    .org 0x10000
block3:
    addi a6, a6, -9
    j block4
    .org 0x14000
block4:
    xori a6, a6, 0x33
    j block5
    .org 0x18000
block5:
    mull a6, a6, a8
    addi a2, a2, -1
    bnez a2, back
    j finish
back:
    j block0
    .org 0x1C000
finish:
    la a3, out
    s32i a6, a3, 0
    halt
"""
    return BenchmarkCase(
        name="tp11_icache_thrash",
        description="aliasing code blocks (I-cache conflict misses)",
        source=source,
        check=expect_word("out", mirror()),
    )


def _tp12_uncached_kernel() -> BenchmarkCase:
    iterations = 260

    def mirror() -> int:
        a3 = 0
        for i in range(iterations, 0, -1):
            a3 = (a3 + 7) & _U32
            a3 = (a3 ^ i) & _U32
        return a3

    source = f"""
    .data
out: .word 0
    .text
main:
    movi a2, {iterations}
    movi a3, 0
    j ucode
    .utext
ucode:
    addi a3, a3, 7
    xor a3, a3, a2
    addi a2, a2, -1
    bnez a2, ucode
    j finish
    .text
finish:
    la a4, out
    s32i a3, a4, 0
    halt
"""
    return BenchmarkCase(
        name="tp12_uncached_kernel",
        description="loop fetched from an uncached region (N_uf)",
        source=source,
        check=expect_word("out", mirror()),
    )


def _tp13_interlock_chain() -> BenchmarkCase:
    values = Lcg(5).words(128)
    passes = 5

    def mirror() -> int:
        acc = 0
        for _ in range(passes):
            for i in range(0, len(values) - 1, 2):
                acc = (acc + values[i]) & _U32
                acc = (acc - values[i + 1]) & _U32
        return acc

    source = f"""
    .data
arr:
{format_words(values)}
out: .word 0
    .text
main:
    movi a2, {passes}
    movi a7, 0
outer:
    la a3, arr
    movi a4, {len(values) // 2}
inner:
    l32i a5, a3, 0
    add a7, a7, a5      ; load-use interlock
    l32i a6, a3, 4
    sub a7, a7, a6      ; load-use interlock
    addi a3, a3, 8
    addi a4, a4, -1
    bnez a4, inner
    addi a2, a2, -1
    bnez a2, outer
    la a3, out
    s32i a7, a3, 0
    halt
"""
    return BenchmarkCase(
        name="tp13_interlock_chain",
        description="back-to-back load-use dependences (N_il)",
        source=source,
        check=expect_word("out", mirror()),
    )


def _tp14_checksum() -> BenchmarkCase:
    data = Lcg(2024).words(240, bits=8)

    def mirror() -> int:
        s1, s2 = 1, 0
        for byte in data:
            s1 = (s1 + byte) % 65521
            s2 = (s2 + s1) % 65521
        return ((s2 << 16) | s1) & _U32

    source = f"""
    .data
bytes:
{format_words(data, directive=".byte", per_line=16)}
out: .word 0
    .text
main:
    la a2, bytes
    movi a3, {len(data)}
    movi a4, 1          ; s1
    movi a5, 0          ; s2
    li a6, 65521
loop:
    l8ui a7, a2, 0
    add a4, a4, a7
    remu a4, a4, a6
    add a5, a5, a4
    remu a5, a5, a6
    addi a2, a2, 1
    addi a3, a3, -1
    bnez a3, loop
    slli a5, a5, 16
    or a5, a5, a4
    la a2, out
    s32i a5, a2, 0
    halt
"""
    return BenchmarkCase(
        name="tp14_checksum",
        description="adler32-style checksum (mixed classes)",
        source=source,
        check=expect_word("out", mirror()),
    )


# ---------------------------------------------------------------------------
# 15-24: custom-instruction kernels (all ten hw-library categories)
# ---------------------------------------------------------------------------


def _tp15_tie_mul16(config) -> BenchmarkCase:
    iterations = 220

    def mirror() -> int:
        x, acc = 7, 0
        for _ in range(iterations):
            p = (x & 0xFFFF) * ((x + 13) & 0xFFFF)
            acc = (acc + p) & _U32
            x = (x + 29) & _U32
        return acc

    source = f"""
    .data
out: .word 0
    .text
main:
    movi a2, {iterations}
    movi a3, 7
    movi a6, 0
loop:
    addi a4, a3, 13
    mul16 a5, a3, a4
    add a6, a6, a5
    addi a3, a3, 29
    addi a2, a2, -1
    bnez a2, loop
    la a4, out
    s32i a6, a4, 0
    halt
"""
    return BenchmarkCase(
        name="tp15_tie_mul16",
        description="TIE_mult kernel (specialized 16x16 multiplier)",
        source=source,
        shared_config=config,
        check=expect_word("out", mirror()),
    )


def _tp16_tie_mac(config) -> BenchmarkCase:
    values = Lcg(63).words(180)

    def mirror() -> int:
        acc = 0
        for word in values:
            acc = ext.ref_mac16_step(acc, word)
        return acc & _U32

    source = f"""
    .data
arr:
{format_words(values)}
out: .word 0
    .text
main:
    la a2, arr
    movi a3, {len(values)}
loop:
    l32i a4, a2, 0
    mac16 a4
    addi a2, a2, 4
    addi a3, a3, -1
    bnez a3, loop
    rdmac a5
    la a6, out
    s32i a5, a6, 0
    halt
"""
    return BenchmarkCase(
        name="tp16_tie_mac",
        description="TIE_mac + custom-register accumulate kernel",
        source=source,
        shared_config=config,
        check=expect_word("out", mirror()),
    )


def _tp17_tie_simd_add(config) -> BenchmarkCase:
    a_vals = Lcg(11).words(160)
    b_vals = Lcg(12).words(160)

    def mirror() -> list[int]:
        return [ext.ref_add4x8(a, b) for a, b in zip(a_vals, b_vals)]

    source = f"""
    .data
a_arr:
{format_words(a_vals)}
b_arr:
{format_words(b_vals)}
dst: .space {len(a_vals) * 4}
    .text
main:
    la a2, a_arr
    la a3, b_arr
    la a4, dst
    movi a5, {len(a_vals)}
loop:
    l32i a6, a2, 0
    l32i a7, a3, 0
    add4x8 a8, a6, a7
    s32i a8, a4, 0
    addi a2, a2, 4
    addi a3, a3, 4
    addi a4, a4, 4
    addi a5, a5, -1
    bnez a5, loop
    halt
"""
    return BenchmarkCase(
        name="tp17_tie_simd_add",
        description="SIMD byte adds (custom add/sub/cmp category)",
        source=source,
        shared_config=config,
        check=expect_words("dst", mirror()),
    )


def _tp18_tie_sum3(config) -> BenchmarkCase:
    a_vals = Lcg(31).words(170)
    b_vals = Lcg(32).words(170, bits=16)

    def mirror() -> int:
        acc = 0
        for a, b in zip(a_vals, b_vals):
            acc = (acc + ext.ref_sum3(a, b)) & _U32
        return acc

    source = f"""
    .data
a_arr:
{format_words(a_vals)}
b_arr:
{format_words(b_vals)}
out: .word 0
    .text
main:
    la a2, a_arr
    la a3, b_arr
    movi a4, {len(a_vals)}
    movi a7, 0
loop:
    l32i a5, a2, 0
    l32i a6, a3, 0
    sum3 a8, a5, a6
    add a7, a7, a8
    addi a2, a2, 4
    addi a3, a3, 4
    addi a4, a4, -1
    bnez a4, loop
    la a2, out
    s32i a7, a2, 0
    halt
"""
    return BenchmarkCase(
        name="tp18_tie_sum3",
        description="CSA-compressed 3-term adds (TIE_csa + TIE_add)",
        source=source,
        shared_config=config,
        check=expect_word("out", mirror()),
    )


def _tp19_tie_gfmul(config) -> BenchmarkCase:
    a_vals = Lcg(81).words(200, bits=8)
    b_vals = Lcg(82).words(200, bits=8)

    def mirror() -> int:
        acc = 0
        for a, b in zip(a_vals, b_vals):
            acc ^= ext.ref_gfmul(a, b)
            acc = (acc * 2 + 1) & 0xFF
        return acc

    source = f"""
    .data
a_arr:
{format_words(a_vals, directive=".byte", per_line=16)}
b_arr:
{format_words(b_vals, directive=".byte", per_line=16)}
out: .word 0
    .text
main:
    la a2, a_arr
    la a3, b_arr
    movi a4, {len(a_vals)}
    movi a7, 0
loop:
    l8ui a5, a2, 0
    l8ui a6, a3, 0
    gfmul a8, a5, a6
    xor a7, a7, a8
    slli a7, a7, 1
    addi a7, a7, 1
    andi a7, a7, 255
    addi a2, a2, 1
    addi a3, a3, 1
    addi a4, a4, -1
    bnez a4, loop
    la a2, out
    s32i a7, a2, 0
    halt
"""
    return BenchmarkCase(
        name="tp19_tie_gfmul",
        description="GF(2^8) multiplies via lookup tables (table category)",
        source=source,
        shared_config=config,
        check=expect_word("out", mirror()),
    )


def _tp20_tie_blend(config) -> BenchmarkCase:
    pixel_pairs = Lcg(55).words(190, bits=16)

    def mirror() -> int:
        acc = 0
        lcg = Lcg(56)
        for pixels in pixel_pairs:
            alpha = lcg.below(257)
            blended = ext.ref_blend8(pixels & 0xFF, (pixels >> 8) & 0xFF, alpha)
            acc = (acc + blended) & _U32
        return acc

    alpha_list = []
    lcg = Lcg(56)
    for _ in pixel_pairs:
        alpha_list.append(lcg.below(257))

    source = f"""
    .data
pix:
{format_words(pixel_pairs, directive=".half", per_line=12)}
alpha:
{format_words(alpha_list, directive=".half", per_line=12)}
out: .word 0
    .text
main:
    la a2, pix
    la a3, alpha
    movi a4, {len(pixel_pairs)}
    movi a7, 0
loop:
    l16ui a5, a2, 0
    l16ui a6, a3, 0
    blend8 a8, a5, a6
    add a7, a7, a8
    addi a2, a2, 2
    addi a3, a3, 2
    addi a4, a4, -1
    bnez a4, loop
    la a2, out
    s32i a7, a2, 0
    halt
"""
    return BenchmarkCase(
        name="tp20_tie_blend",
        description="alpha blending (custom multiplier + shifter)",
        source=source,
        shared_config=config,
        check=expect_word("out", mirror()),
    )


def _tp21_tie_parity_shift(config) -> BenchmarkCase:
    values = Lcg(77).words(210)

    def mirror() -> int:
        acc = 0
        for i, value in enumerate(values):
            mixed = ext.ref_shiftmix(value, i & 31)
            acc = (acc + mixed + ext.ref_parity32(mixed)) & _U32
        return acc

    source = f"""
    .data
arr:
{format_words(values)}
out: .word 0
    .text
main:
    la a2, arr
    movi a3, {len(values)}
    movi a4, 0          ; i
    movi a7, 0          ; acc
loop:
    l32i a5, a2, 0
    andi a6, a4, 31
    shiftmix a8, a5, a6
    parity32 a9, a8
    add a7, a7, a8
    add a7, a7, a9
    addi a2, a2, 4
    addi a4, a4, 1
    addi a3, a3, -1
    bnez a3, loop
    la a2, out
    s32i a7, a2, 0
    halt
"""
    return BenchmarkCase(
        name="tp21_tie_parity_shift",
        description="parity reduction + shift-mix (logic/red/mux + shifter)",
        source=source,
        shared_config=config,
        check=expect_word("out", mirror()),
    )


def _tp22_tie_sat_absdiff(config) -> BenchmarkCase:
    a_vals = Lcg(91).words(190, bits=12)
    b_vals = Lcg(92).words(190, bits=12)

    def mirror() -> int:
        acc = 0
        for a, b in zip(a_vals, b_vals):
            acc = (acc + ext.ref_sat8(ext.ref_absdiff(a, b))) & _U32
        return acc

    source = f"""
    .data
a_arr:
{format_words(a_vals)}
b_arr:
{format_words(b_vals)}
out: .word 0
    .text
main:
    la a2, a_arr
    la a3, b_arr
    movi a4, {len(a_vals)}
    movi a7, 0
loop:
    l32i a5, a2, 0
    l32i a6, a3, 0
    absdiff a8, a5, a6
    sat8 a9, a8
    add a7, a7, a9
    addi a2, a2, 4
    addi a3, a3, 4
    addi a4, a4, -1
    bnez a4, loop
    la a2, out
    s32i a7, a2, 0
    halt
"""
    return BenchmarkCase(
        name="tp22_tie_sat_absdiff",
        description="absolute difference + saturation (cmp/mux datapaths)",
        source=source,
        shared_config=config,
        check=expect_word("out", mirror()),
    )


def _tp23_tie_mixed(config) -> BenchmarkCase:
    # Deliberately state-register-heavy (rdmac/wrmac ping-pong every
    # iteration) and using the CSA-free sum4 adder: this decorrelates the
    # custom-register column from TIE_mac and TIE_add from TIE_csa.
    values = Lcg(17).words(150)

    def mirror() -> int:
        acc40 = 0
        mix = 0
        for value in values:
            acc40 = ext.ref_mac16_step(acc40, value)
            low = acc40 & _U32
            mix = (mix + ext.ref_sum4(low)) & _U32
            acc40 = mix  # wrmac reloads the accumulator from mix
        return (acc40 ^ mix) & _U32

    source = f"""
    .data
arr:
{format_words(values)}
out: .word 0
    .text
main:
    la a2, arr
    movi a3, {len(values)}
    movi a6, 0          ; mix
loop:
    l32i a4, a2, 0
    mac16 a4
    rdmac a5            ; state read
    sum4 a7, a5
    add a6, a6, a7
    wrmac a6            ; state write-back from the scalar side
    addi a2, a2, 4
    addi a3, a3, -1
    bnez a3, loop
    rdmac a7
    xor a7, a7, a6
    la a2, out
    s32i a7, a2, 0
    halt
"""
    return BenchmarkCase(
        name="tp23_tie_mixed",
        description="multi-extension kernel (mac + state ping-pong + sum4)",
        source=source,
        shared_config=config,
        check=expect_word("out", mirror()),
    )


def _tp24_tie_sparse(config) -> BenchmarkCase:
    # The custom hardware is instantiated but almost never *executed*:
    # spurious operand-bus activation dominates the structural variables.
    iterations = 300

    def mirror() -> int:
        x = 5
        for _ in range(iterations):
            x = (x * 3 + 11) & _U32
            x = (x ^ (x >> 7)) & _U32
        p = ext.ref_gfmul(x & 0xFF, 29)
        return (x + p) & _U32

    source = f"""
    .data
out: .word 0
    .text
main:
    movi a2, {iterations}
    movi a3, 5
    movi a8, 3
loop:
    mull a4, a3, a8
    addi a3, a4, 11
    srli a5, a3, 7
    xor a3, a3, a5
    addi a2, a2, -1
    bnez a2, loop
    andi a6, a3, 255
    movi a7, 29
    gfmul a9, a6, a7
    add a3, a3, a9
    la a2, out
    s32i a3, a2, 0
    halt
"""
    return BenchmarkCase(
        name="tp24_tie_sparse",
        description="extended core, custom insn nearly unused (spurious-dominated)",
        source=source,
        shared_config=config,
        check=expect_word("out", mirror()),
    )


def _tp25_app_like(config) -> BenchmarkCase:
    values = Lcg(2718).words(130)

    def mirror() -> int:
        acc40 = 0
        best = 0
        for i, value in enumerate(values):
            acc40 = ext.ref_mac16_step(acc40, value)
            low = acc40 & _U32
            best = max(best, low & 0xFFFF)
            if i % 3 == 0:
                best = (best + 1) & _U32
        return (best ^ (acc40 & _U32)) & _U32

    source = f"""
    .data
arr:
{format_words(values)}
out: .word 0
    .text
main:
    la a2, arr
    movi a3, {len(values)}
    movi a6, 0          ; best
    movi a9, 0          ; i mod 3 counter
loop:
    l32i a4, a2, 0
    mac16 a4
    rdmac a5
    zext16 a7, a5
    maxu a6, a6, a7
    bnez a9, no_bump
    addi a6, a6, 1
no_bump:
    addi a9, a9, 1
    blti a9, 3, no_wrap
    movi a9, 0
no_wrap:
    addi a2, a2, 4
    addi a3, a3, -1
    bnez a3, loop
    rdmac a5
    xor a6, a6, a5
    la a2, out
    s32i a6, a2, 0
    halt
"""
    return BenchmarkCase(
        name="tp25_app_like",
        description="application-like mixed kernel (mac + compares + branches)",
        source=source,
        shared_config=config,
        check=expect_word("out", mirror()),
    )


_BASE_FACTORIES = (
    _tp01_alu_mix,
    _tp02_mul_div,
    _tp03_shift_mix,
    _tp04_load_stream,
    _tp05_store_fill,
    _tp06_memcpy,
    _tp07_branch_taken,
    _tp08_branch_untaken,
    _tp09_call_jump,
    _tp10_dcache_thrash,
    _tp11_icache_thrash,
    _tp12_uncached_kernel,
    _tp13_interlock_chain,
    _tp14_checksum,
)

#: programs that run on the shared DSP-flavoured extension
_DSP_FACTORIES = (
    _tp15_tie_mul16,
    _tp16_tie_mac,
    _tp17_tie_simd_add,
    _tp18_tie_sum3,
    _tp23_tie_mixed,
    _tp25_app_like,
)

#: programs that run on the shared bit-manipulation extension
_BIT_FACTORIES = (
    _tp19_tie_gfmul,
    _tp20_tie_blend,
    _tp21_tie_parity_shift,
    _tp22_tie_sat_absdiff,
    _tp24_tie_sparse,
)


def dsp_extension_config(base=None):
    """The shared DSP-flavoured extended processor used by the suite.

    Sharing one extension across several test programs (with very
    different custom-instruction densities) is what makes the structural
    coefficients identifiable: each category column then has multiple
    independent directions in the design matrix instead of acting as a
    per-program free parameter.  ``base`` re-targets the suite at a
    different base configuration (family re-characterization).
    """
    from ..xtcore import build_processor

    return build_processor(
        "xt-char-dsp",
        [
            ext.mul16_spec(),
            ext.mul8_spec(),
            ext.min2h_spec(),
            ext.mac16_spec(),
            ext.rdmac_spec(),
            ext.wrmac_spec(),
            ext.mac8_spec(),
            ext.rdmac8_spec(),
            ext.add4x8_spec(),
            ext.sum3_spec(),
            ext.sum4_spec(),
            ext.swz_spec(),
        ],
        base=base,
    )


def bitops_extension_config(base=None):
    """The shared bit-manipulation extended processor used by the suite."""
    from ..xtcore import build_processor

    return build_processor(
        "xt-char-bit",
        [
            ext.gfmul_spec(),
            ext.blend8_spec(),
            ext.parity32_spec(),
            ext.shiftmix_spec(),
            ext.sat8_spec(),
            ext.absdiff_spec(),
            ext.sqr16_spec(),
            ext.sbox_spec(),
            ext.swz_spec(),
        ],
        base=base,
    )


def mixed_extension_config(base=None):
    """A third shared extension blending both families.

    Its per-category operand-bus tap ratios differ from both the DSP and
    the bit-manipulation configs, which decorrelates the spurious-
    activation directions of the structural variables across configs —
    without this, each config's spurious terms form a single direction
    and the fit can allocate their energy arbitrarily among categories.
    """
    from ..xtcore import build_processor

    return build_processor(
        "xt-char-mix",
        [
            ext.mul16_spec(),
            ext.sum3_spec(),
            ext.sat8_spec(),
            ext.absdiff_spec(),
            ext.parity32_spec(),
            ext.shiftmix_spec(),
            ext.sbox_spec(),
            ext.mac8_spec(),
            ext.rdmac8_spec(),
        ],
        base=base,
    )


def characterization_suite(
    include_variants: bool = True, base=None
) -> list[BenchmarkCase]:
    """The characterization suite (fresh case objects).

    The core is 25 programs as in the paper's Fig. 3: 14 base-ISA
    programs on the stock core, 6 on the shared DSP extension and 5 on
    the shared bit-manipulation extension — together exercising all 21
    macro-model variables.  By default 12 density-variant programs
    (:mod:`repro.programs.variants`) are appended; they vary the ratio of
    custom to base instructions, which the synthetic 25 alone cannot, and
    keep the least-squares problem well-determined (37 samples for 21
    coefficients).  Pass ``include_variants=False`` for the bare 25.
    """
    from .variants import density_suite

    cases = [factory() for factory in _BASE_FACTORIES]
    if base is not None:
        # re-target the base-ISA programs at the provided family base
        for case in cases:
            case.shared_config = base
    dsp = dsp_extension_config(base)
    bit = bitops_extension_config(base)
    cases.extend(factory(dsp) for factory in _DSP_FACTORIES)
    cases.extend(factory(bit) for factory in _BIT_FACTORIES)
    # keep the paper's Fig. 3 ordering: tp01..tp25 by name
    cases.sort(key=lambda case: case.name)
    if include_variants:
        cases.extend(density_suite(dsp, bit, mixed_extension_config(base)))
    return cases
