"""The custom-instruction library used by the benchmark programs.

Each factory returns a *fresh* :class:`~repro.tie.TieSpec` (specs are
mutable builders, so they cannot be shared between processor configs).
Together the specs cover all ten hardware-library component categories,
which the characterization suite requires (paper Sec. IV-A: "the test
program suite also incorporates custom instructions so as to cover all
the custom hardware library components").

A pure-Python reference function accompanies each spec (``ref_*``) for
functional verification of both the TIE semantics and the assembly
kernels that use them.
"""

from __future__ import annotations

from ..tie import TieSpec, TieState
from . import gf

# ---------------------------------------------------------------------------
# TIE_MULT — specialized 16x16 multiplier
# ---------------------------------------------------------------------------


def mul16_spec() -> TieSpec:
    """``mul16 rd, rs, rt`` — rd = low16(rs) * low16(rt) (32-bit result)."""
    spec = TieSpec("mul16", fmt="R3", description="rd = rs[15:0] * rt[15:0]")
    a = spec.source("rs", width=16)
    b = spec.source("rt", width=16)
    spec.result(spec.tie_mult(a, b))
    return spec


def ref_mul16(a: int, b: int) -> int:
    return ((a & 0xFFFF) * (b & 0xFFFF)) & 0xFFFFFFFF


def mul8_spec() -> TieSpec:
    """``mul8 rd, rs, rt`` — rd = low8(rs) * low8(rt).

    A *narrow* sibling of :func:`mul16_spec`: same category, a quarter of
    the complexity.  Pairs like (mul16, mul8) let the regression separate
    the per-execution base-core cost of a custom instruction (``N_sd``)
    from the per-complexity-unit energy of its category (``S_tie_mult``).
    """
    spec = TieSpec("mul8", fmt="R3", description="rd = rs[7:0] * rt[7:0]")
    a = spec.source("rs", width=8)
    b = spec.source("rt", width=8)
    spec.result(spec.tie_mult(a, b))
    return spec


def ref_mul8(a: int, b: int) -> int:
    return ((a & 0xFF) * (b & 0xFF)) & 0xFFFF


def min2h_spec() -> TieSpec:
    """``min2h rd, rs, rt`` — 16-bit unsigned minimum (narrow comparator)."""
    spec = TieSpec("min2h", fmt="R3", description="rd = min_u(rs[15:0], rt[15:0])")
    a = spec.source("rs", width=16)
    b = spec.source("rt", width=16)
    spec.result(spec.minimum(a, b))
    return spec


def ref_min2h(a: int, b: int) -> int:
    return min(a & 0xFFFF, b & 0xFFFF)


def swz_spec() -> TieSpec:
    """``swz rd, rs`` — byte-reverse ``rs`` using pure wiring.

    A zero-gate custom instruction: its datapath is slices and
    concatenations only, so it instantiates *no* hardware-library
    components and contributes nothing to the structural variables.
    Programs dense in ``swz`` therefore probe the per-cycle base-core
    cost of a custom instruction (the ``N_sd`` coefficient) directly.
    """
    spec = TieSpec("swz", fmt="R2", description="rd = byte-reverse(rs), wiring only")
    word = spec.source("rs")
    b0 = spec.slice(word, 0, 8)
    b1 = spec.slice(word, 8, 8)
    b2 = spec.slice(word, 16, 8)
    b3 = spec.slice(word, 24, 8)
    spec.result(spec.concat(spec.concat(b0, b1), spec.concat(b2, b3)))
    return spec


def ref_swz(a: int) -> int:
    return int.from_bytes((a & 0xFFFFFFFF).to_bytes(4, "little"), "big")


# ---------------------------------------------------------------------------
# TIE_MAC + CUSTOM_REG — multiply-accumulate into a 40-bit accumulator
# ---------------------------------------------------------------------------


def _acc40() -> TieState:
    return TieState("acc40", width=40)


def mac16_spec() -> TieSpec:
    """``mac16 rs, rt`` — acc40 += low16(rs) * low16(rt) (no GPR result)."""
    spec = TieSpec("mac16", fmt="RS1", description="acc40 += rs[15:0] * rs[31:16]")
    acc = spec.use_state(_acc40())
    word = spec.source("rs", width=32)
    a = spec.slice(word, 0, 16)
    b = spec.slice(word, 16, 16)
    spec.write_state(acc, spec.tie_mac(a, b, spec.read_state(acc), width=40))
    return spec


def rdmac_spec() -> TieSpec:
    """``rdmac rd`` — rd = low 32 bits of acc40."""
    spec = TieSpec("rdmac", fmt="RD1", description="rd = acc40[31:0]")
    acc = spec.use_state(_acc40())
    spec.result(spec.slice(spec.read_state(acc), 0, 32))
    return spec


def wrmac_spec() -> TieSpec:
    """``wrmac rs`` — acc40 = zext(rs) (clears the upper 8 bits)."""
    spec = TieSpec("wrmac", fmt="RS1", description="acc40 = zext(rs)")
    acc = spec.use_state(_acc40())
    spec.write_state(acc, spec.zero_extend(spec.source("rs", width=32), 40))
    return spec


def ref_mac16_step(acc: int, word: int) -> int:
    a = word & 0xFFFF
    b = (word >> 16) & 0xFFFF
    return (acc + a * b) & ((1 << 40) - 1)


def _acc24() -> TieState:
    return TieState("acc24", width=24)


def mac8_spec() -> TieSpec:
    """``mac8 rs`` — acc24 += rs[7:0] * rs[15:8] (narrow MAC sibling)."""
    spec = TieSpec("mac8", fmt="RS1", description="acc24 += rs[7:0] * rs[15:8]")
    acc = spec.use_state(_acc24())
    word = spec.source("rs", width=16)
    a = spec.slice(word, 0, 8)
    b = spec.slice(word, 8, 8)
    spec.write_state(acc, spec.tie_mac(a, b, spec.read_state(acc), width=24))
    return spec


def rdmac8_spec() -> TieSpec:
    """``rdmac8 rd`` — rd = acc24 (zero-extended)."""
    spec = TieSpec("rdmac8", fmt="RD1", description="rd = acc24")
    acc = spec.use_state(_acc24())
    spec.result(spec.zero_extend(spec.read_state(acc), 32))
    return spec


def ref_mac8_step(acc: int, word: int) -> int:
    a = word & 0xFF
    b = (word >> 8) & 0xFF
    return (acc + a * b) & ((1 << 24) - 1)


# ---------------------------------------------------------------------------
# ADD_SUB_CMP — SIMD byte adder and compare/select helpers
# ---------------------------------------------------------------------------


def add4x8_spec() -> TieSpec:
    """``add4x8 rd, rs, rt`` — four independent 8-bit adds (SIMD)."""
    spec = TieSpec("add4x8", fmt="R3", description="rd = rs +8+8+8+8 rt (per-byte, wrap)")
    a = spec.source("rs")
    b = spec.source("rt")
    sums = [
        spec.add(spec.slice(a, i * 8, 8), spec.slice(b, i * 8, 8), width=8)
        for i in range(4)
    ]
    low = spec.concat(sums[1], sums[0])
    high = spec.concat(sums[3], sums[2])
    spec.result(spec.concat(high, low))
    return spec


def ref_add4x8(a: int, b: int) -> int:
    out = 0
    for i in range(4):
        byte = ((a >> (8 * i)) + (b >> (8 * i))) & 0xFF
        out |= byte << (8 * i)
    return out


def max2_spec() -> TieSpec:
    """``max2 rd, rs, rt`` — rd = unsigned max (single comparator)."""
    spec = TieSpec("max2", fmt="R3", description="rd = max_u(rs, rt)")
    spec.result(spec.maximum(spec.source("rs"), spec.source("rt")))
    return spec


def min2_spec() -> TieSpec:
    """``min2 rd, rs, rt`` — rd = unsigned min."""
    spec = TieSpec("min2", fmt="R3", description="rd = min_u(rs, rt)")
    spec.result(spec.minimum(spec.source("rs"), spec.source("rt")))
    return spec


def absdiff_spec() -> TieSpec:
    """``absdiff rd, rs, rt`` — rd = |rs - rt| (unsigned compare + mux)."""
    spec = TieSpec("absdiff", fmt="R3", description="rd = |rs - rt| (unsigned)")
    a = spec.source("rs")
    b = spec.source("rt")
    d1 = spec.sub(a, b)
    d2 = spec.sub(b, a)
    spec.result(spec.mux(spec.compare("ge_u", a, b), d1, d2))
    return spec


def ref_absdiff(a: int, b: int) -> int:
    return (a - b) & 0xFFFFFFFF if a >= b else (b - a) & 0xFFFFFFFF


def sat8_spec() -> TieSpec:
    """``sat8 rd, rs`` — clamp an unsigned word to [0, 255]."""
    spec = TieSpec("sat8", fmt="R2", description="rd = min(rs, 255)")
    a = spec.source("rs")
    limit = spec.const(255, 32)
    over = spec.compare("ge_u", a, spec.const(256, 32))
    spec.result(spec.mux(over, limit, a))
    return spec


def ref_sat8(a: int) -> int:
    return 255 if a > 255 else a


# ---------------------------------------------------------------------------
# TIE_CSA + TIE_ADD — three-term compressed addition
# ---------------------------------------------------------------------------


def sum3_spec() -> TieSpec:
    """``sum3 rd, rs, rt`` — rd = rs.lo16 + rs.hi16 + rt.lo16 via CSA."""
    spec = TieSpec("sum3", fmt="R3", description="rd = rs[15:0] + rs[31:16] + rt[15:0]")
    a_word = spec.source("rs")
    b_word = spec.source("rt", width=16)
    lo = spec.slice(a_word, 0, 16)
    hi = spec.slice(a_word, 16, 16)
    lo18 = spec.zero_extend(lo, 18)
    hi18 = spec.zero_extend(hi, 18)
    b18 = spec.zero_extend(b_word, 18)
    partial_sum, partial_carry = spec.csa(lo18, hi18, b18, width=18)
    spec.result(spec.tie_add(partial_sum, partial_carry, width=18))
    return spec


def ref_sum3(a: int, b: int) -> int:
    return ((a & 0xFFFF) + ((a >> 16) & 0xFFFF) + (b & 0xFFFF)) & 0x3FFFF


def sum4_spec() -> TieSpec:
    """``sum4 rd, rs`` — sum the four bytes of ``rs`` (multi-operand adder).

    Uses the TIE_add module *without* a CSA stage — together with
    :func:`sum3_spec` this makes the TIE_add and TIE_csa structural
    variables separately identifiable during characterization.
    """
    spec = TieSpec("sum4", fmt="R2", description="rd = rs[7:0]+rs[15:8]+rs[23:16]+rs[31:24]")
    word = spec.source("rs")
    terms = [spec.zero_extend(spec.slice(word, i * 8, 8), 10) for i in range(4)]
    spec.result(spec.tie_add(*terms, width=10))
    return spec


def ref_sum4(a: int) -> int:
    return sum((a >> (8 * i)) & 0xFF for i in range(4)) & 0x3FF


# ---------------------------------------------------------------------------
# TABLE — GF(2^8) multiply and S-box substitution
# ---------------------------------------------------------------------------


def gfmul_spec() -> TieSpec:
    """``gfmul rd, rs, rt`` — GF(2^8) product via log/antilog tables."""
    spec = TieSpec("gfmul", fmt="R3", description="rd = rs *GF(256) rt (0x11D)")
    log_data = list(gf.log_table())
    alog_data = list(gf.alog_table())
    a = spec.source("rs", width=8)
    b = spec.source("rt", width=8)
    log_a = spec.table("gflog_a", log_data, a, out_width=8)
    log_b = spec.table("gflog_b", log_data, b, out_width=8)
    total = spec.add(spec.zero_extend(log_a, 9), spec.zero_extend(log_b, 9), width=9)
    wrapped = spec.sub(total, spec.const(255, 9), width=9)
    needs_wrap = spec.compare("ge_u", total, spec.const(255, 9))
    index = spec.slice(spec.mux(needs_wrap, wrapped, total), 0, 8)
    product = spec.table("gfalog", alog_data, index, out_width=8)
    zero = spec.const(0, 8)
    a_is_zero = spec.compare("eq", a, spec.const(0, 8))
    b_is_zero = spec.compare("eq", b, spec.const(0, 8))
    either_zero = spec.bit_or(a_is_zero, b_is_zero)
    spec.result(spec.mux(either_zero, zero, product))
    return spec


def ref_gfmul(a: int, b: int) -> int:
    return gf.gf_mult(a & 0xFF, b & 0xFF)


def _gfstate() -> TieState:
    return TieState("gfacc", width=8)


def gfmac_spec() -> TieSpec:
    """``gfmac rs, rt`` — gfacc = gfacc*GF rt ^ rs (Horner syndrome step)."""
    spec = TieSpec("gfmac", fmt="RS1", description="gfacc = gfacc *GF rs[15:8] ^ rs[7:0]")
    acc = spec.use_state(_gfstate())
    log_data = list(gf.log_table())
    alog_data = list(gf.alog_table())
    word = spec.source("rs", width=16)
    symbol = spec.slice(word, 0, 8)
    alpha = spec.slice(word, 8, 8)
    a = spec.read_state(acc)
    log_a = spec.table("gflog_acc", log_data, a, out_width=8)
    log_alpha = spec.table("gflog_alpha", log_data, alpha, out_width=8)
    total = spec.add(spec.zero_extend(log_a, 9), spec.zero_extend(log_alpha, 9), width=9)
    wrapped = spec.sub(total, spec.const(255, 9), width=9)
    needs_wrap = spec.compare("ge_u", total, spec.const(255, 9))
    index = spec.slice(spec.mux(needs_wrap, wrapped, total), 0, 8)
    product = spec.table("gfalog_m", alog_data, index, out_width=8)
    a_is_zero = spec.compare("eq", a, spec.const(0, 8))
    alpha_is_zero = spec.compare("eq", alpha, spec.const(0, 8))
    either_zero = spec.bit_or(a_is_zero, alpha_is_zero)
    scaled = spec.mux(either_zero, spec.const(0, 8), product)
    spec.write_state(acc, spec.bit_xor(scaled, symbol))
    return spec


def rdgf_spec() -> TieSpec:
    """``rdgf rd`` — rd = gfacc (and exposes the accumulator for tests)."""
    spec = TieSpec("rdgf", fmt="RD1", description="rd = gfacc")
    acc = spec.use_state(_gfstate())
    spec.result(spec.zero_extend(spec.read_state(acc), 32))
    return spec


def wrgf_spec() -> TieSpec:
    """``wrgf rs`` — gfacc = rs[7:0]."""
    spec = TieSpec("wrgf", fmt="RS1", description="gfacc = rs[7:0]")
    acc = spec.use_state(_gfstate())
    spec.write_state(acc, spec.source("rs", width=8))
    return spec


def ref_gfmac_step(acc: int, symbol: int, alpha: int) -> int:
    return gf.gf_mult(acc, alpha) ^ symbol


#: A small DES-flavoured 6-bit -> 4-bit substitution box (S1 of DES).
SBOX_6TO4: tuple[int, ...] = (
    14, 4, 13, 1, 2, 15, 11, 8, 3, 10, 6, 12, 5, 9, 0, 7,
    0, 15, 7, 4, 14, 2, 13, 1, 10, 6, 12, 11, 9, 5, 3, 8,
    4, 1, 14, 8, 13, 6, 2, 11, 15, 12, 9, 7, 3, 10, 5, 0,
    15, 12, 8, 2, 4, 9, 1, 7, 5, 11, 3, 14, 10, 0, 6, 13,
)


def sbox_spec() -> TieSpec:
    """``sbox48 rd, rs`` — DES-style 6-bit -> 4-bit S-box substitution."""
    spec = TieSpec("sbox48", fmt="R2", description="rd = S1[rs[5:0]] (DES S-box)")
    index = spec.source("rs", width=6)
    spec.result(spec.zero_extend(spec.table("sbox1", list(SBOX_6TO4), index, out_width=4), 32))
    return spec


def ref_sbox(index: int) -> int:
    return SBOX_6TO4[index & 0x3F]


# ---------------------------------------------------------------------------
# MULT + SHIFTER — alpha blending
# ---------------------------------------------------------------------------


def blend8_spec() -> TieSpec:
    """``blend8 rd, rs, rt`` — rd = (a*alpha + b*(256-alpha)) >> 8.

    ``rs`` packs the two 8-bit source pixels (a in [7:0], b in [15:8]);
    ``rt`` carries the 9-bit alpha in [8:0] (0..256).
    """
    spec = TieSpec("blend8", fmt="R3", description="rd = (a*alpha + b*(256-alpha)) >> 8")
    pixels = spec.source("rs", width=16)
    alpha = spec.source("rt", width=9)
    a = spec.slice(pixels, 0, 8)
    b = spec.slice(pixels, 8, 8)
    inv_alpha = spec.sub(spec.const(256, 9), alpha, width=9)
    term_a = spec.mul(a, alpha, width=17)
    term_b = spec.mul(b, inv_alpha, width=17)
    total = spec.add(term_a, term_b, width=18)
    shifted = spec.shift_right(total, spec.const(8, 4), width=18)
    spec.result(spec.slice(shifted, 0, 8))
    return spec


def ref_blend8(a: int, b: int, alpha: int) -> int:
    return (((a & 0xFF) * alpha + (b & 0xFF) * (256 - alpha)) >> 8) & 0xFF


def sqr16_spec() -> TieSpec:
    """``sqr16 rd, rs`` — rd = low16(rs)^2 on a general multiplier.

    The only spec whose datapath is *purely* the general multiplier
    category, which keeps the ``S_mult`` coefficient identifiable
    independently of the composite datapaths (e.g. blend8).
    """
    spec = TieSpec("sqr16", fmt="R2", description="rd = rs[15:0] squared")
    a = spec.source("rs", width=16)
    spec.result(spec.mul(a, a))
    return spec


def ref_sqr16(a: int) -> int:
    value = a & 0xFFFF
    return (value * value) & 0xFFFFFFFF


# ---------------------------------------------------------------------------
# LOGIC_RED_MUX + SHIFTER — parity and shift-mix
# ---------------------------------------------------------------------------


def parity32_spec() -> TieSpec:
    """``parity32 rd, rs`` — rd = XOR-reduction of all 32 bits."""
    spec = TieSpec("parity32", fmt="R2", description="rd = ^rs (parity)")
    spec.result(spec.zero_extend(spec.reduce_xor(spec.source("rs")), 32))
    return spec


def ref_parity32(a: int) -> int:
    return bin(a & 0xFFFFFFFF).count("1") & 1


def shiftmix_spec() -> TieSpec:
    """``shiftmix rd, rs, rt`` — rd = (rs << (rt & 31)) ^ rs (hash mix)."""
    spec = TieSpec("shiftmix", fmt="R3", description="rd = (rs << rt[4:0]) ^ rs")
    a = spec.source("rs")
    amount = spec.source("rt", width=5)
    shifted = spec.shift_left(a, amount, width=32)
    spec.result(spec.bit_xor(shifted, a))
    return spec


def ref_shiftmix(a: int, amount: int) -> int:
    return ((a << (amount & 31)) ^ a) & 0xFFFFFFFF


# ---------------------------------------------------------------------------
# Extension bundles (named groups used by benchmark configurations)
# ---------------------------------------------------------------------------

#: All spec factories, keyed by mnemonic — for enumeration in tests.
ALL_SPEC_FACTORIES = {
    "mul16": mul16_spec,
    "mul8": mul8_spec,
    "min2h": min2h_spec,
    "swz": swz_spec,
    "mac16": mac16_spec,
    "mac8": mac8_spec,
    "rdmac8": rdmac8_spec,
    "rdmac": rdmac_spec,
    "wrmac": wrmac_spec,
    "add4x8": add4x8_spec,
    "max2": max2_spec,
    "min2": min2_spec,
    "absdiff": absdiff_spec,
    "sat8": sat8_spec,
    "sum3": sum3_spec,
    "sum4": sum4_spec,
    "gfmul": gfmul_spec,
    "gfmac": gfmac_spec,
    "rdgf": rdgf_spec,
    "wrgf": wrgf_spec,
    "sbox48": sbox_spec,
    "sqr16": sqr16_spec,
    "blend8": blend8_spec,
    "parity32": parity32_spec,
    "shiftmix": shiftmix_spec,
}
