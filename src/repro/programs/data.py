"""Deterministic workload-data generation for the benchmark programs.

All benchmark inputs are generated with a fixed linear congruential
generator so that every run of the suite — and therefore every
characterization and every experiment — is exactly reproducible without
carrying large data files in the repository.
"""

from __future__ import annotations

from typing import Iterator


class Lcg:
    """A tiny 31-bit LCG (glibc constants) for reproducible test data."""

    MULTIPLIER = 1103515245
    INCREMENT = 12345
    MASK = 0x7FFFFFFF

    def __init__(self, seed: int) -> None:
        self.state = seed & self.MASK

    def next(self) -> int:
        self.state = (self.MULTIPLIER * self.state + self.INCREMENT) & self.MASK
        return self.state

    def below(self, bound: int) -> int:
        """Uniform-ish value in [0, bound)."""
        if bound <= 0:
            raise ValueError(f"bound must be positive, got {bound}")
        return self.next() % bound

    def words(self, count: int, bits: int = 32) -> list[int]:
        """``count`` unsigned values of ``bits`` width."""
        mask = (1 << bits) - 1
        # Combine two draws for full 32-bit coverage (the LCG is 31-bit).
        return [((self.next() << 16) ^ self.next()) & mask for _ in range(count)]


def rand_words(seed: int, count: int, bits: int = 32) -> list[int]:
    """Convenience: ``count`` reproducible values from a fresh LCG."""
    return Lcg(seed).words(count, bits)


def format_words(values: list[int], per_line: int = 8, directive: str = ".word") -> str:
    """Render values as assembler data directives, ``per_line`` per row."""
    lines = []
    for start in range(0, len(values), per_line):
        chunk = values[start : start + per_line]
        lines.append(f"    {directive} " + ", ".join(str(v) for v in chunk))
    return "\n".join(lines)


def chunked(values: list[int], size: int) -> Iterator[list[int]]:
    for start in range(0, len(values), size):
        yield values[start : start + size]
