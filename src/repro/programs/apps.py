"""The ten application benchmarks of the paper's Table II.

Ins sort, Gcd, Alphablend, Add4, Bubsort, DES, Accumulate, Drawline,
Multi accumulate and Seq mult — each incorporating custom instructions
(as in the paper, these are *different programs* from the 25-program
characterization suite, so Table II measures generalization, not fit).

Every application is functionally verified against a pure-Python
reference implementation.
"""

from __future__ import annotations

from ..xtcore import SimulationResult
from . import extensions as ext
from .data import Lcg, format_words
from .registry import BenchmarkCase, expect_word, expect_words

_U32 = 0xFFFFFFFF


# ---------------------------------------------------------------------------
# Ins sort — insertion sort with a pair-sorting custom pre-pass
# ---------------------------------------------------------------------------


def ins_sort() -> BenchmarkCase:
    values = Lcg(301).words(56, bits=16)
    n = len(values)

    source = f"""
    .data
arr:
{format_words(values)}
    .text
main:
    ; pre-pass: sort adjacent pairs with the min2/max2 custom comparators
    la a2, arr
    movi a3, {n // 2}
pair:
    l32i a4, a2, 0
    l32i a5, a2, 4
    min2 a6, a4, a5
    max2 a7, a4, a5
    s32i a6, a2, 0
    s32i a7, a2, 4
    addi a2, a2, 8
    addi a3, a3, -1
    bnez a3, pair

    ; insertion sort
    movi a2, 1           ; i
    movi a9, {n}
isort_outer:
    la a3, arr
    slli a4, a2, 2
    add a3, a3, a4       ; &arr[i]
    l32i a5, a3, 0       ; key
    mov a6, a2           ; j
isort_inner:
    beqz a6, place
    l32i a7, a3, -4      ; arr[j-1]
    bgeu a5, a7, place   ; key >= arr[j-1]: stop
    s32i a7, a3, 0       ; arr[j] = arr[j-1]
    addi a3, a3, -4
    addi a6, a6, -1
    j isort_inner
place:
    s32i a5, a3, 0
    addi a2, a2, 1
    blt a2, a9, isort_outer
    halt
"""
    return BenchmarkCase(
        name="ins_sort",
        description="insertion sort with custom pair-sort pre-pass",
        source=source,
        spec_factories=(ext.min2_spec, ext.max2_spec),
        check=expect_words("arr", sorted(values)),
    )


# ---------------------------------------------------------------------------
# Gcd — subtractive GCD using absdiff + min2
# ---------------------------------------------------------------------------


def _gcd(a: int, b: int) -> int:
    while b:
        a, b = b, a % b
    return a


def gcd() -> BenchmarkCase:
    lcg = Lcg(401)
    pairs = [(lcg.below(900) + 1, lcg.below(900) + 1) for _ in range(40)]
    a_vals = [p[0] for p in pairs]
    b_vals = [p[1] for p in pairs]
    expected = [_gcd(a, b) for a, b in pairs]

    source = f"""
    .data
a_arr:
{format_words(a_vals)}
b_arr:
{format_words(b_vals)}
out: .space {len(pairs) * 4}
    .text
main:
    la a2, a_arr
    la a3, b_arr
    la a4, out
    movi a5, {len(pairs)}
next_pair:
    l32i a6, a2, 0      ; a
    l32i a7, a3, 0      ; b
gcd_loop:
    beq a6, a7, done_pair
    absdiff a8, a6, a7  ; |a-b|
    min2 a7, a6, a7     ; min(a,b)
    mov a6, a8
    j gcd_loop
done_pair:
    s32i a6, a4, 0
    addi a2, a2, 4
    addi a3, a3, 4
    addi a4, a4, 4
    addi a5, a5, -1
    bnez a5, next_pair
    halt
"""
    return BenchmarkCase(
        name="gcd",
        description="subtractive GCD with absdiff/min custom comparators",
        source=source,
        spec_factories=(ext.absdiff_spec, ext.min2_spec),
        check=expect_words("out", expected),
    )


# ---------------------------------------------------------------------------
# Alphablend — per-pixel alpha blending with the blend8 datapath
# ---------------------------------------------------------------------------


def alphablend() -> BenchmarkCase:
    count = 170
    lcg = Lcg(501)
    fg = [lcg.below(256) for _ in range(count)]
    bg = [lcg.below(256) for _ in range(count)]
    alpha = [lcg.below(257) for _ in range(count)]
    packed = [(b << 8) | a for a, b in zip(fg, bg)]
    expected = [ext.ref_blend8(a, b, al) for a, b, al in zip(fg, bg, alpha)]

    source = f"""
    .data
pix:
{format_words(packed, directive=".half", per_line=12)}
alpha:
{format_words(alpha, directive=".half", per_line=12)}
dst: .space {count}
    .text
main:
    la a2, pix
    la a3, alpha
    la a4, dst
    movi a5, {count}
loop:
    l16ui a6, a2, 0
    l16ui a7, a3, 0
    blend8 a8, a6, a7
    s8i a8, a4, 0
    addi a2, a2, 2
    addi a3, a3, 2
    addi a4, a4, 1
    addi a5, a5, -1
    bnez a5, loop
    halt
"""

    def check(result: SimulationResult) -> None:
        base = result.program.symbol("dst")
        actual = [result.state.memory.read_byte(base + i) for i in range(count)]
        if actual != expected:
            raise AssertionError(f"alphablend: first mismatch at index "
                                 f"{next(i for i, (x, y) in enumerate(zip(actual, expected)) if x != y)}")

    return BenchmarkCase(
        name="alphablend",
        description="per-pixel alpha blending via blend8",
        source=source,
        spec_factories=(ext.blend8_spec,),
        check=check,
    )


# ---------------------------------------------------------------------------
# Add4 — packed 4x8-bit SIMD vector addition
# ---------------------------------------------------------------------------


def add4() -> BenchmarkCase:
    count = 200
    a_vals = Lcg(601).words(count)
    b_vals = Lcg(602).words(count)
    expected = [ext.ref_add4x8(a, b) for a, b in zip(a_vals, b_vals)]

    source = f"""
    .data
a_arr:
{format_words(a_vals)}
b_arr:
{format_words(b_vals)}
dst: .space {count * 4}
    .text
main:
    la a2, a_arr
    la a3, b_arr
    la a4, dst
    movi a5, {count}
loop:
    l32i a6, a2, 0
    l32i a7, a3, 0
    add4x8 a8, a6, a7
    s32i a8, a4, 0
    addi a2, a2, 4
    addi a3, a3, 4
    addi a4, a4, 4
    addi a5, a5, -1
    bnez a5, loop
    halt
"""
    return BenchmarkCase(
        name="add4",
        description="packed 4x8-bit SIMD vector add",
        source=source,
        spec_factories=(ext.add4x8_spec,),
        check=expect_words("dst", expected),
    )


# ---------------------------------------------------------------------------
# Bubsort — bubble sort whose compare-swap is a min2/max2 pair
# ---------------------------------------------------------------------------


def bubsort() -> BenchmarkCase:
    values = Lcg(701).words(48, bits=16)
    n = len(values)

    source = f"""
    .data
arr:
{format_words(values)}
    .text
main:
    movi a2, {n - 1}     ; passes remaining
outer:
    la a3, arr
    mov a4, a2           ; comparisons this pass
inner:
    l32i a5, a3, 0
    l32i a6, a3, 4
    min2 a7, a5, a6
    max2 a8, a5, a6
    s32i a7, a3, 0
    s32i a8, a3, 4
    addi a3, a3, 4
    addi a4, a4, -1
    bnez a4, inner
    addi a2, a2, -1
    bnez a2, outer
    halt
"""
    return BenchmarkCase(
        name="bubsort",
        description="bubble sort with single-instruction compare-swap",
        source=source,
        spec_factories=(ext.min2_spec, ext.max2_spec),
        check=expect_words("arr", sorted(values)),
    )


# ---------------------------------------------------------------------------
# DES — S-box substitution + diffusion round (DES-flavoured kernel)
# ---------------------------------------------------------------------------


def des() -> BenchmarkCase:
    count = 90
    blocks = Lcg(801).words(count)
    key = 0x3A94D2C7

    def round_fn(word: int) -> int:
        mixed = word ^ key
        out = 0
        for group in range(4):
            six = (mixed >> (6 * group)) & 0x3F
            out |= ext.ref_sbox(six) << (4 * group)
        diffused = ext.ref_shiftmix(out, 11)
        return diffused & _U32

    expected = [round_fn(b) for b in blocks]

    source = f"""
    .data
blocks:
{format_words(blocks)}
dst: .space {count * 4}
    .text
main:
    la a2, blocks
    la a3, dst
    movi a4, {count}
    li a5, {key}
    movi a12, 11
loop:
    l32i a6, a2, 0
    xor a6, a6, a5       ; key mix
    movi a7, 0           ; out accumulator
    ; group 0
    andi a8, a6, 63
    sbox48 a9, a8
    or a7, a7, a9
    ; group 1
    srli a8, a6, 6
    andi a8, a8, 63
    sbox48 a9, a8
    slli a9, a9, 4
    or a7, a7, a9
    ; group 2
    srli a8, a6, 12
    andi a8, a8, 63
    sbox48 a9, a8
    slli a9, a9, 8
    or a7, a7, a9
    ; group 3
    srli a8, a6, 18
    andi a8, a8, 63
    sbox48 a9, a8
    slli a9, a9, 12
    or a7, a7, a9
    ; diffusion
    shiftmix a7, a7, a12
    s32i a7, a3, 0
    addi a2, a2, 4
    addi a3, a3, 4
    addi a4, a4, -1
    bnez a4, loop
    halt
"""
    return BenchmarkCase(
        name="des",
        description="DES-flavoured S-box substitution + diffusion round",
        source=source,
        spec_factories=(ext.sbox_spec, ext.shiftmix_spec),
        check=expect_words("dst", expected),
    )


# ---------------------------------------------------------------------------
# Accumulate — MAC-accelerated dot-product-style accumulation
# ---------------------------------------------------------------------------


def accumulate() -> BenchmarkCase:
    values = Lcg(901).words(220)

    def mirror() -> int:
        acc = 0
        for word in values:
            acc = ext.ref_mac16_step(acc, word)
        return acc & _U32

    source = f"""
    .data
arr:
{format_words(values)}
out: .word 0
    .text
main:
    la a2, arr
    movi a3, {len(values)}
loop:
    l32i a4, a2, 0
    mac16 a4
    addi a2, a2, 4
    addi a3, a3, -1
    bnez a3, loop
    rdmac a5
    la a6, out
    s32i a5, a6, 0
    halt
"""
    return BenchmarkCase(
        name="accumulate",
        description="16x16 multiply-accumulate over a vector",
        source=source,
        spec_factories=(ext.mac16_spec, ext.rdmac_spec, ext.wrmac_spec),
        check=expect_word("out", mirror()),
    )


# ---------------------------------------------------------------------------
# Drawline — Bresenham rasterization with absdiff/min-max custom support
# ---------------------------------------------------------------------------


def drawline() -> BenchmarkCase:
    width = 64
    lines = [(2, 3, 59, 40), (60, 5, 4, 52), (1, 60, 62, 2), (30, 1, 33, 62)]

    def bresenham(fb: list[int], x0: int, y0: int, x1: int, y1: int) -> None:
        dx = abs(x1 - x0)
        dy = abs(y1 - y0)
        sx = 1 if x0 < x1 else -1
        sy = 1 if y0 < y1 else -1
        err = dx - dy
        while True:
            fb[y0 * width + x0] = 1
            if x0 == x1 and y0 == y1:
                break
            e2 = 2 * err
            if e2 > -dy:
                err -= dy
                x0 += sx
            if e2 < dx:
                err += dx
                y0 += sy

    framebuffer = [0] * (width * width)
    for x0, y0, x1, y1 in lines:
        bresenham(framebuffer, x0, y0, x1, y1)
    expected_set = sum(framebuffer)

    coords = []
    for x0, y0, x1, y1 in lines:
        coords.extend([x0, y0, x1, y1])

    source = f"""
    .data
coords:
{format_words(coords)}
fb: .space {width * width}
out: .word 0
    .text
main:
    la a14, coords
    movi a15, {len(lines)}
line_loop:
    l32i a2, a14, 0      ; x0
    l32i a3, a14, 4      ; y0
    l32i a4, a14, 8      ; x1
    l32i a5, a14, 12     ; y1
    absdiff a6, a4, a2   ; dx
    absdiff a7, a5, a3   ; dy
    ; sx = x0 < x1 ? 1 : -1
    movi a8, 1
    bltu a2, a4, sx_done
    movi a8, -1
sx_done:
    movi a9, 1
    bltu a3, a5, sy_done
    movi a9, -1
sy_done:
    sub a10, a6, a7      ; err = dx - dy
plot:
    ; fb[y0*width + x0] = 1
    slli a11, a3, 6      ; y0 * 64
    add a11, a11, a2
    la a12, fb
    add a12, a12, a11
    movi a13, 1
    s8i a13, a12, 0
    ; termination check
    bne a2, a4, step
    beq a3, a5, line_done
step:
    add a11, a10, a10    ; e2 = 2*err
    ; if e2 > -dy  (i.e. e2 + dy > 0, signed)
    add a12, a11, a7
    blti a12, 1, no_x
    sub a10, a10, a7
    add a2, a2, a8
no_x:
    ; if e2 < dx (signed)
    bge a11, a6, no_y
    add a10, a10, a6
    add a3, a3, a9
no_y:
    j plot
line_done:
    addi a14, a14, 16
    addi a15, a15, -1
    bnez a15, line_loop
    ; count set pixels
    la a2, fb
    li a3, {width * width}
    movi a4, 0
count:
    l8ui a5, a2, 0
    add a4, a4, a5
    addi a2, a2, 1
    addi a3, a3, -1
    bnez a3, count
    la a2, out
    s32i a4, a2, 0
    halt
"""

    def check(result: SimulationResult) -> None:
        base = result.program.symbol("fb")
        actual = [result.state.memory.read_byte(base + i) for i in range(width * width)]
        if actual != framebuffer:
            raise AssertionError("drawline: framebuffer mismatch against Bresenham reference")
        if result.word("out") != expected_set:
            raise AssertionError(
                f"drawline: pixel count {result.word('out')} != {expected_set}"
            )

    return BenchmarkCase(
        name="drawline",
        description="Bresenham line rasterization with absdiff support",
        source=source,
        spec_factories=(ext.absdiff_spec,),
        check=check,
    )


# ---------------------------------------------------------------------------
# Multi accumulate — interleaved MAC + 3-term-sum accumulations
# ---------------------------------------------------------------------------


def multi_accumulate() -> BenchmarkCase:
    a_vals = Lcg(1101).words(150)
    b_vals = Lcg(1102).words(150, bits=16)

    def mirror() -> tuple[int, int]:
        acc40 = 0
        sum_acc = 0
        for a, b in zip(a_vals, b_vals):
            acc40 = ext.ref_mac16_step(acc40, a)
            sum_acc = (sum_acc + ext.ref_sum3(a, b)) & _U32
        return acc40 & _U32, sum_acc

    mac_out, sum_out = mirror()

    source = f"""
    .data
a_arr:
{format_words(a_vals)}
b_arr:
{format_words(b_vals)}
out: .space 8
    .text
main:
    la a2, a_arr
    la a3, b_arr
    movi a4, {len(a_vals)}
    movi a7, 0           ; sum accumulator
loop:
    l32i a5, a2, 0
    l32i a6, a3, 0
    mac16 a5
    sum3 a8, a5, a6
    add a7, a7, a8
    addi a2, a2, 4
    addi a3, a3, 4
    addi a4, a4, -1
    bnez a4, loop
    rdmac a5
    la a6, out
    s32i a5, a6, 0
    s32i a7, a6, 4
    halt
"""
    return BenchmarkCase(
        name="multi_accumulate",
        description="two interleaved accumulations (MAC + CSA sum)",
        source=source,
        spec_factories=(ext.mac16_spec, ext.rdmac_spec, ext.wrmac_spec, ext.sum3_spec),
        check=expect_words("out", [mac_out, sum_out]),
    )


# ---------------------------------------------------------------------------
# Seq mult — element-wise sequence multiply via the TIE multiplier
# ---------------------------------------------------------------------------


def seq_mult() -> BenchmarkCase:
    count = 160
    a_vals = Lcg(1201).words(count, bits=16)
    b_vals = Lcg(1202).words(count, bits=16)
    expected = [ext.ref_mul16(a, b) for a, b in zip(a_vals, b_vals)]

    source = f"""
    .data
a_arr:
{format_words(a_vals)}
b_arr:
{format_words(b_vals)}
dst: .space {count * 4}
    .text
main:
    la a2, a_arr
    la a3, b_arr
    la a4, dst
    movi a5, {count}
loop:
    l32i a6, a2, 0
    l32i a7, a3, 0
    mul16 a8, a6, a7
    s32i a8, a4, 0
    addi a2, a2, 4
    addi a3, a3, 4
    addi a4, a4, 4
    addi a5, a5, -1
    bnez a5, loop
    halt
"""
    return BenchmarkCase(
        name="seq_mult",
        description="element-wise 16-bit sequence multiplication",
        source=source,
        spec_factories=(ext.mul16_spec,),
        check=expect_words("dst", expected),
    )


_APP_FACTORIES = (
    ins_sort,
    gcd,
    alphablend,
    add4,
    bubsort,
    des,
    accumulate,
    drawline,
    multi_accumulate,
    seq_mult,
)


def application_suite() -> list[BenchmarkCase]:
    """The ten Table II applications (fresh case objects)."""
    return [factory() for factory in _APP_FACTORIES]
