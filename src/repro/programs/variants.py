"""Density-variant characterization programs.

A synthetic loop kernel contributes essentially *one* direction to the
regression design matrix (all its counts scale together), so a suite of
one-kernel-per-variable programs leaves the least-squares problem barely
determined: tiny ground-truth nonlinearities then blow up into wild,
physically meaningless coefficients that fit perfectly but generalize
terribly.

This module manufactures extra characterization programs that reuse the
two shared extension configurations but vary the *ratio* of custom
instructions to base instructions ("density") and the operand data.
Each (custom-op set, density) pair is a new independent direction, which
pins the structural coefficients to their physical values.

Only stateless custom instructions are used here (R3/R2 formats), so a
single generic generator — with a faithful pure-Python mirror built from
the ``ref_*`` functions — covers every variant.
"""

from __future__ import annotations

import dataclasses
from typing import Callable

from ..xtcore import ProcessorConfig
from . import extensions as ext
from .registry import BenchmarkCase, expect_word

_U32 = 0xFFFFFFFF


@dataclasses.dataclass(frozen=True)
class _OpInfo:
    """How to apply one stateless custom op inside the generated kernel."""

    fmt: str  # "R3" or "R2"
    mask_a: int
    mask_b: int
    ref: Callable[..., int]


_OPS: dict[str, _OpInfo] = {
    "mul16": _OpInfo("R3", 0xFFFF, 0xFFFF, lambda a, b: ext.ref_mul16(a, b)),
    "add4x8": _OpInfo("R3", _U32, _U32, lambda a, b: ext.ref_add4x8(a, b)),
    "sum3": _OpInfo("R3", _U32, 0xFFFF, lambda a, b: ext.ref_sum3(a, b)),
    "sum4": _OpInfo("R2", _U32, 0, lambda a: ext.ref_sum4(a)),
    "gfmul": _OpInfo("R3", 0xFF, 0xFF, lambda a, b: ext.ref_gfmul(a, b)),
    "blend8": _OpInfo(
        "R3", 0xFFFF, 0x1FF,
        lambda a, b: ext.ref_blend8(a & 0xFF, (a >> 8) & 0xFF, min(b, 256)),
    ),
    "parity32": _OpInfo("R2", _U32, 0, lambda a: ext.ref_parity32(a)),
    "shiftmix": _OpInfo("R3", _U32, 0x1F, lambda a, b: ext.ref_shiftmix(a, b)),
    "sat8": _OpInfo("R2", _U32, 0, lambda a: ext.ref_sat8(a)),
    "absdiff": _OpInfo("R3", _U32, _U32, lambda a, b: ext.ref_absdiff(a, b)),
    "sqr16": _OpInfo("R2", 0xFFFF, 0, lambda a: ext.ref_sqr16(a)),
    "sbox48": _OpInfo("R2", 0x3F, 0, lambda a: ext.ref_sbox(a)),
    "mul8": _OpInfo("R3", 0xFF, 0xFF, lambda a, b: ext.ref_mul8(a, b)),
    "min2h": _OpInfo("R3", 0xFFFF, 0xFFFF, lambda a, b: ext.ref_min2h(a, b)),
    "swz": _OpInfo("R2", _U32, 0, lambda a: ext.ref_swz(a)),
}

#: blend8's alpha operand must stay in 0..256; applying the 9-bit mask can
#: still give 257..511, so the reference clamps — and the kernel masks the
#: register operand the same way before issuing the instruction.


def _make_density_case(
    name: str,
    config: ProcessorConfig,
    ops: tuple[str, ...],
    pad: int,
    iterations: int,
    seed: int,
    data_mask: int = _U32,
) -> BenchmarkCase:
    """Generate one variant kernel + its Python mirror.

    The kernel streams two operand arrays from memory (the way real
    application code feeds a datapath — addresses and loop counters on
    the operand buses, not wide pseudo-random register values), applies
    each custom op in ``ops`` to masked slices of the loaded words,
    accumulates the results, and runs ``pad`` filler base operations per
    iteration.  ``data_mask`` narrows the array data (low-switching
    regime).
    """
    from .data import Lcg, format_words

    for op in ops:
        if op not in _OPS:
            raise ValueError(f"density variants only support stateless ops, not {op!r}")

    x_values = [v & data_mask for v in Lcg(seed).words(iterations)]
    y_values = [v & data_mask for v in Lcg(seed * 3 + 1).words(iterations)]

    body_lines: list[str] = []
    body_lines.append("    l32i a3, a8, 0")
    body_lines.append("    l32i a4, a9, 0")
    body_lines.append("    addi a8, a8, 4")
    body_lines.append("    addi a9, a9, 4")
    for i, op in enumerate(ops):
        info = _OPS[op]
        # mask operands into a10/a11 per the op's input widths
        if info.mask_a == _U32:
            body_lines.append("    mov a10, a3")
        else:
            body_lines.append(f"    li a12, {info.mask_a}")
            body_lines.append("    and a10, a3, a12")
        if info.fmt == "R3":
            if info.mask_b == _U32:
                body_lines.append("    mov a11, a4")
            else:
                body_lines.append(f"    li a12, {info.mask_b}")
                body_lines.append("    and a11, a4, a12")
            if op == "blend8":  # clamp alpha to 0..256
                body_lines.append("    movi a12, 256")
                body_lines.append("    minu a11, a11, a12")
            body_lines.append(f"    {op} a13, a10, a11")
        else:
            body_lines.append(f"    {op} a13, a10")
        body_lines.append("    add a6, a6, a13")
    for i in range(pad):
        # filler base ops with some variety, including deterministic
        # never-taken (bne a0, a0) and always-taken (beq a0, a0) branches
        # so the branch-class variables vary independently of the loops
        sel = i % 7
        if sel == 5:
            body_lines.append(f"    bne a0, a0, flu_{i}")
            body_lines.append(f"flu_{i}:")
        elif sel == 6:
            body_lines.append(f"    beq a0, a0, flt_{i}")
            body_lines.append(f"flt_{i}:")
        else:
            filler = ("    addi a7, a7, 3", "    xor a7, a7, a3", "    slli a14, a7, 2",
                      "    sub a7, a7, a14", "    or a7, a7, a4")[sel]
            body_lines.append(filler)
    body = "\n".join(body_lines)

    source = f"""
    .data
xarr:
{format_words(x_values)}
yarr:
{format_words(y_values)}
out: .word 0
    .text
main:
    movi a2, {iterations}
    la a8, xarr
    la a9, yarr
    movi a6, 0
    movi a7, 0
loop:
{body}
    addi a2, a2, -1
    bnez a2, loop
    add a6, a6, a7
    la a2, out
    s32i a6, a2, 0
    halt
"""

    def mirror() -> int:
        acc = 0
        filler_acc = 0
        for x, y in zip(x_values, y_values):
            for op in ops:
                info = _OPS[op]
                a = x & info.mask_a
                if info.fmt == "R3":
                    b = y & info.mask_b
                    if op == "blend8":
                        b = min(b, 256)
                    value = info.ref(a, b)
                else:
                    value = info.ref(a)
                acc = (acc + value) & _U32
            for i in range(pad):
                sel = i % 7
                if sel == 0:
                    filler_acc = (filler_acc + 3) & _U32
                elif sel == 1:
                    filler_acc = (filler_acc ^ x) & _U32
                elif sel == 2:
                    pass  # slli writes a14, not the filler accumulator
                elif sel == 3:
                    filler_acc = (filler_acc - ((filler_acc << 2) & _U32)) & _U32
                elif sel == 4:
                    filler_acc = (filler_acc | y) & _U32
                # sel 5/6 are the architecturally-neutral filler branches
        return (acc + filler_acc) & _U32

    return BenchmarkCase(
        name=name,
        description=f"density variant: {'+'.join(ops)} with {pad} pad ops/iter",
        source=source,
        shared_config=config,
        check=expect_word("out", mirror()),
    )


def density_suite(
    dsp_config: ProcessorConfig,
    bit_config: ProcessorConfig,
    mix_config: ProcessorConfig | None = None,
) -> list[BenchmarkCase]:
    """Extra characterization programs over the shared extensions."""
    cases = [
        # DSP extension — vary which ops appear and how densely
        _make_density_case("tv01_mul16_dense", dsp_config, ("mul16",), 0, 300, 11),
        _make_density_case("tv02_mul16_sparse", dsp_config, ("mul16",), 14, 140, 13),
        _make_density_case("tv03_simd_dense", dsp_config, ("add4x8", "add4x8"), 1, 260, 17),
        _make_density_case("tv04_sum_mixture", dsp_config, ("sum3", "sum4", "sum4"), 3, 220, 19),
        _make_density_case("tv05_sum3_sparse", dsp_config, ("sum3",), 11, 150, 23),
        _make_density_case("tv06_dsp_all", dsp_config, ("mul16", "add4x8", "sum4"), 5, 170, 29),
        # BIT extension
        _make_density_case("tv07_gf_dense", bit_config, ("gfmul", "gfmul"), 0, 240, 31),
        _make_density_case("tv08_gf_sparse", bit_config, ("gfmul",), 13, 130, 37),
        _make_density_case("tv09_blend_sat", bit_config, ("blend8", "sat8"), 2, 230, 41),
        _make_density_case("tv10_bit_logic", bit_config, ("parity32", "shiftmix", "shiftmix"), 1, 240, 43),
        _make_density_case("tv11_absdiff_mix", bit_config, ("absdiff", "sat8", "parity32"), 6, 180, 47),
        _make_density_case("tv12_bit_all", bit_config, ("gfmul", "blend8", "shiftmix"), 8, 150, 53),
        # pure-multiplier and pure-table kernels pin S_mult and S_table
        _make_density_case("tv13_sqr_dense", bit_config, ("sqr16", "sqr16"), 2, 240, 59),
        _make_density_case("tv14_sbox_dense", bit_config, ("sbox48", "sbox48", "sbox48"), 1, 230, 61),
        # branch-filler-heavy kernels vary N_bt/N_bu independently of loops
        _make_density_case("tv15_branchy_dsp", dsp_config, ("add4x8",), 21, 160, 67),
        _make_density_case("tv16_branchy_bit", bit_config, ("sat8",), 28, 150, 71),
        # narrow siblings: same categories at a quarter/half the complexity
        # per execution — these separate N_sd from the S coefficients
        _make_density_case("tv17_narrow_mul", dsp_config, ("mul8", "mul8", "min2h"), 1, 240, 73),
        # zero-hardware wiring instruction: a direct N_sd probe
        _make_density_case("tv20_swz_dense_dsp", dsp_config, ("swz", "swz", "swz"), 0, 220, 83),
        _make_density_case("tv21_swz_dense_bit", bit_config, ("swz", "swz"), 3, 200, 89),
        # low-toggle regime: small-magnitude operands, as app kernels
        # (counters, pixel values, GF symbols) typically produce
        _make_density_case("tv22_lowtog_asc", bit_config, ("absdiff", "sat8"), 2, 210, 97, data_mask=0x7FF),
        _make_density_case("tv23_lowtog_dsp", dsp_config, ("add4x8", "min2h"), 3, 200, 101, data_mask=0x3FF),
        _make_density_case("tv24_lowtog_gf", bit_config, ("gfmul",), 1, 220, 103, data_mask=0x1F),
        _make_density_case("tv25_lowtog_swz", dsp_config, ("swz", "swz"), 2, 210, 107, data_mask=0xFFF),
        _make_density_case("tv18_narrow_mix", dsp_config, ("mul8", "min2h", "min2h"), 7, 170, 79),
        _mac_width_mix_case(dsp_config),
    ]
    if mix_config is not None:
        # the cross-family config: different spurious tap ratios per
        # category than either the DSP or the bit-ops config
        cases.extend(
            [
                _make_density_case("tx01_mix_mul", mix_config, ("mul16", "sat8"), 2, 220, 109),
                _make_density_case("tx02_mix_sum", mix_config, ("sum3", "absdiff"), 4, 200, 113),
                _make_density_case("tx03_mix_logic", mix_config, ("parity32", "shiftmix", "sbox48"), 1, 210, 127),
                _make_density_case("tx04_mix_sparse", mix_config, ("sbox48",), 18, 150, 131),
                _make_density_case("tx05_mix_lowtog", mix_config, ("mul16", "absdiff"), 3, 190, 137, data_mask=0x1FF),
                _mix_mac8_case(mix_config),
            ]
        )
    return cases


def _mix_mac8_case(mix_config: ProcessorConfig) -> BenchmarkCase:
    """tx06: the narrow MAC on the cross-family config (stateful kernel)."""
    from .data import Lcg, format_words
    from .registry import expect_word

    values = Lcg(139).words(160, bits=16)

    def mirror() -> int:
        acc24 = 0
        for word in values:
            acc24 = ext.ref_mac8_step(acc24, word)
        return acc24

    source = f"""
    .data
arr:
{format_words(values)}
out: .word 0
    .text
main:
    la a2, arr
    movi a3, {len(values)}
loop:
    l32i a4, a2, 0
    mac8 a4
    addi a2, a2, 4
    addi a3, a3, -1
    bnez a3, loop
    rdmac8 a5
    la a6, out
    s32i a5, a6, 0
    halt
"""
    return BenchmarkCase(
        name="tx06_mix_mac8",
        description="narrow MAC on the cross-family extension config",
        source=source,
        shared_config=mix_config,
        check=expect_word("out", mirror()),
    )


def _mac_width_mix_case(dsp_config: ProcessorConfig) -> BenchmarkCase:
    """tv19: interleave the 40-bit and 24-bit MAC accumulators.

    Stateful custom instructions need a dedicated kernel (the generic
    density generator only covers stateless ops).  Mixing mac16 (wide
    accumulator) with mac8 (narrow) varies TIE_mac and custom-register
    complexity per execution at a fixed N_sd rate.
    """
    from .data import Lcg, format_words
    from .registry import expect_word

    values = Lcg(83).words(170)

    def mirror() -> int:
        acc40 = 0
        acc24 = 0
        for i, word in enumerate(values):
            acc40 = ext.ref_mac16_step(acc40, word)
            acc24 = ext.ref_mac8_step(acc24, word & 0xFFFF)
            if i & 1:
                acc24 = ext.ref_mac8_step(acc24, (word >> 16) & 0xFFFF)
        return ((acc40 & _U32) ^ acc24) & _U32

    source = f"""
    .data
arr:
{format_words(values)}
out: .word 0
    .text
main:
    la a2, arr
    movi a3, {len(values)}
    movi a9, 0          ; parity toggle
loop:
    l32i a4, a2, 0
    mac16 a4
    mac8 a4
    beqz a9, even
    srli a5, a4, 16
    mac8 a5
    movi a9, 0
    j next
even:
    movi a9, 1
next:
    addi a2, a2, 4
    addi a3, a3, -1
    bnez a3, loop
    rdmac a6
    rdmac8 a7
    xor a6, a6, a7
    la a2, out
    s32i a6, a2, 0
    halt
"""
    return BenchmarkCase(
        name="tv19_mac_widths",
        description="wide + narrow MAC accumulators interleaved",
        source=source,
        shared_config=dsp_config,
        check=expect_word("out", mirror()),
    )
