"""FIR filter with three custom-instruction choices (second DSE workload).

A second design-space-exploration study alongside Reed-Solomon: a
16-tap FIR filter over 16-bit samples, implemented three ways:

========  ==================================================================
choice    implementation
========  ==================================================================
``sw``      base ISA only — ``mull`` + ``add`` per tap
``mac``     the ``mac16`` fused multiply-accumulate custom instruction
``packed``  ``firstep2``: one custom instruction per tap pair — packs two
            samples and two coefficients, two 16x16 MACs into one 40-bit
            accumulator via a CSA compression stage
========  ==================================================================

All three produce bit-identical outputs, verified against a pure-Python
reference.  The packed variant demonstrates a deeper datapath (TIE_mac +
TIE_csa + TIE_add + custom register together).
"""

from __future__ import annotations

from ..tie import TieSpec, TieState
from ..xtcore import DEFAULT_MAX_INSTRUCTIONS
from . import extensions as ext
from .data import Lcg, format_words
from .registry import BenchmarkCase, expect_words

#: filter geometry
TAPS = 16
SAMPLES = 72
OUTPUTS = SAMPLES - TAPS + 1

_U32 = 0xFFFFFFFF
_ACC_MASK = (1 << 40) - 1


def _workload() -> tuple[list[int], list[int], list[int]]:
    """(samples, coefficients, expected outputs) — all 16-bit unsigned."""
    samples = Lcg(7001).words(SAMPLES, bits=12)
    coefficients = Lcg(7002).words(TAPS, bits=8)
    outputs = []
    for n in range(OUTPUTS):
        acc = 0
        for k in range(TAPS):
            acc = (acc + samples[n + k] * coefficients[k]) & _ACC_MASK
        outputs.append(acc & _U32)
    return samples, coefficients, outputs


def _fir_state() -> TieState:
    return TieState("firacc", width=40)


def firstep2_spec() -> TieSpec:
    """``firstep2 rd, rs, rt`` — rd = low32 of (firacc += s0*c0 + s1*c1).

    ``rs`` packs samples (lo16, hi16), ``rt`` packs coefficients.  Writing
    the running accumulator to ``rd`` keeps the R3 format natural and
    gives the kernel a free copy of the low word.
    """
    spec = TieSpec("firstep2", fmt="R3", description="firacc += 2-tap packed MAC; rd = firacc[31:0]")
    acc = spec.use_state(_fir_state())
    samples = spec.source("rs")
    coefficients = spec.source("rt")
    s0 = spec.slice(samples, 0, 16)
    s1 = spec.slice(samples, 16, 16)
    c0 = spec.slice(coefficients, 0, 16)
    c1 = spec.slice(coefficients, 16, 16)
    p0 = spec.tie_mult(s0, c0)                      # 32-bit products
    p1 = spec.tie_mult(s1, c1)
    old = spec.read_state(acc)
    partial_sum, partial_carry = spec.csa(
        spec.zero_extend(p0, 40), spec.zero_extend(p1, 40), old, width=40
    )
    total = spec.tie_add(partial_sum, partial_carry, width=40)
    spec.write_state(acc, total)
    spec.result(spec.slice(total, 0, 32))
    return spec


def wrfir_spec() -> TieSpec:
    """``wrfir rs`` — firacc = zext(rs)."""
    spec = TieSpec("wrfir", fmt="RS1", description="firacc = zext(rs)")
    acc = spec.use_state(_fir_state())
    spec.write_state(acc, spec.zero_extend(spec.source("rs"), 40))
    return spec


def ref_firstep2(acc: int, samples: int, coefficients: int) -> int:
    s0, s1 = samples & 0xFFFF, (samples >> 16) & 0xFFFF
    c0, c1 = coefficients & 0xFFFF, (coefficients >> 16) & 0xFFFF
    return (acc + s0 * c0 + s1 * c1) & _ACC_MASK


def _data_section(samples: list[int], coefficients: list[int]) -> str:
    return f"""
    .data
samples:
{format_words(samples, directive=".half", per_line=12)}
coeffs:
{format_words(coefficients, directive=".half", per_line=12)}
    .align 4
outp: .space {OUTPUTS * 4}
"""


def fir_software() -> BenchmarkCase:
    samples, coefficients, expected = _workload()
    source = _data_section(samples, coefficients) + f"""
    .text
main:
    movi a15, 0          ; n
    movi a9, {OUTPUTS}
    la a14, outp
out_loop:
    movi a13, 0          ; acc
    la a12, samples
    slli a2, a15, 1
    add a12, a12, a2     ; &samples[n]
    la a11, coeffs
    movi a10, {TAPS}
tap_loop:
    l16ui a4, a12, 0
    l16ui a5, a11, 0
    mull a6, a4, a5
    add a13, a13, a6
    addi a12, a12, 2
    addi a11, a11, 2
    addi a10, a10, -1
    bnez a10, tap_loop
    s32i a13, a14, 0
    addi a14, a14, 4
    addi a15, a15, 1
    blt a15, a9, out_loop
    halt
"""
    return BenchmarkCase(
        name="fir_sw",
        description="16-tap FIR, base ISA (mull + add per tap)",
        source=source,
        check=expect_words("outp", expected),
        max_instructions=DEFAULT_MAX_INSTRUCTIONS,
    )


def fir_mac() -> BenchmarkCase:
    samples, coefficients, expected = _workload()
    source = _data_section(samples, coefficients) + f"""
    .text
main:
    movi a15, 0          ; n
    movi a9, {OUTPUTS}
    la a14, outp
out_loop:
    movi a2, 0
    wrmac a2             ; acc40 = 0
    la a12, samples
    slli a2, a15, 1
    add a12, a12, a2
    la a11, coeffs
    movi a10, {TAPS}
tap_loop:
    l16ui a4, a12, 0
    l16ui a5, a11, 0
    slli a5, a5, 16
    or a4, a4, a5        ; pack sample | coeff<<16
    mac16 a4             ; acc40 += sample * coeff
    addi a12, a12, 2
    addi a11, a11, 2
    addi a10, a10, -1
    bnez a10, tap_loop
    rdmac a13
    s32i a13, a14, 0
    addi a14, a14, 4
    addi a15, a15, 1
    blt a15, a9, out_loop
    halt
"""
    return BenchmarkCase(
        name="fir_mac",
        description="16-tap FIR with the mac16 fused MAC instruction",
        source=source,
        spec_factories=(ext.mac16_spec, ext.rdmac_spec, ext.wrmac_spec),
        check=expect_words("outp", expected),
    )


def fir_packed() -> BenchmarkCase:
    samples, coefficients, expected = _workload()
    source = _data_section(samples, coefficients) + f"""
    .text
main:
    movi a15, 0          ; n
    movi a9, {OUTPUTS}
    la a14, outp
out_loop:
    movi a2, 0
    wrfir a2             ; firacc = 0
    la a12, samples
    slli a2, a15, 1
    add a12, a12, a2
    la a11, coeffs
    movi a10, {TAPS // 2}
pair_loop:
    l32i a4, a12, 0      ; two packed samples
    l32i a5, a11, 0      ; two packed coefficients
    firstep2 a13, a4, a5
    addi a12, a12, 4
    addi a11, a11, 4
    addi a10, a10, -1
    bnez a10, pair_loop
    s32i a13, a14, 0
    addi a14, a14, 4
    addi a15, a15, 1
    blt a15, a9, out_loop
    halt
"""
    return BenchmarkCase(
        name="fir_packed",
        description="16-tap FIR with the 2-wide packed firstep2 instruction",
        source=source,
        spec_factories=(firstep2_spec, wrfir_spec),
        check=expect_words("outp", expected),
    )


def fir_choices() -> list[BenchmarkCase]:
    """The three FIR design points, in increasing-specialization order."""
    return [fir_software(), fir_mac(), fir_packed()]
