"""``repro.xtcore`` — the extensible-processor substrate (Xtensa substitute)."""

from .caches import SetAssociativeCache
from .config import CacheConfig, ProcessorConfig, TimingConfig, build_processor
from .iss import (
    DEFAULT_STACK_TOP,
    EXIT_ADDRESS,
    SimulationError,
    SimulationLimitExceeded,
    SimulationResult,
    Simulator,
    simulate,
)
from .trace import ExecutionStats, TraceRecord, class_mix

__all__ = [
    "CacheConfig",
    "DEFAULT_STACK_TOP",
    "EXIT_ADDRESS",
    "ExecutionStats",
    "ProcessorConfig",
    "SetAssociativeCache",
    "SimulationError",
    "SimulationLimitExceeded",
    "SimulationResult",
    "Simulator",
    "TimingConfig",
    "TraceRecord",
    "build_processor",
    "class_mix",
    "simulate",
]
