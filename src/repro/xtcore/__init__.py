"""``repro.xtcore`` — the extensible-processor substrate (Xtensa substitute)."""

from .batch import run_batch, semantic_fingerprint
from .caches import SetAssociativeCache
from .compiled import (
    CompilationCache,
    ExecutableProgram,
    SuperopProgram,
    compilation_cache,
    compile_program,
    compile_superops,
    describe_invalid_pc,
)
from .config import (
    DEFAULT_MAX_INSTRUCTIONS,
    CacheConfig,
    ProcessorConfig,
    TimingConfig,
    build_processor,
)
from .errors import SimulationError, SimulationLimitExceeded
from .interp import ReferenceSimulator
from .iss import (
    DEFAULT_STACK_TOP,
    ENGINES,
    EXIT_ADDRESS,
    SimulationResult,
    Simulator,
    simulate,
)
from .trace import ExecutionStats, TraceRecord, class_mix

__all__ = [
    "CacheConfig",
    "CompilationCache",
    "DEFAULT_MAX_INSTRUCTIONS",
    "DEFAULT_STACK_TOP",
    "ENGINES",
    "EXIT_ADDRESS",
    "ExecutableProgram",
    "ExecutionStats",
    "ProcessorConfig",
    "ReferenceSimulator",
    "SetAssociativeCache",
    "SimulationError",
    "SimulationLimitExceeded",
    "SimulationResult",
    "Simulator",
    "SuperopProgram",
    "TimingConfig",
    "TraceRecord",
    "build_processor",
    "class_mix",
    "compilation_cache",
    "compile_program",
    "compile_superops",
    "describe_invalid_pc",
    "run_batch",
    "semantic_fingerprint",
    "simulate",
]
