"""Set-associative cache model with true-LRU replacement.

Only hit/miss behaviour matters to the energy flow (the macro-model
variables ``N_cm``/``N_dm`` count misses; the reference RTL estimator
charges per-access and per-miss energies), so the model tracks tags and
recency but not line contents.
"""

from __future__ import annotations

from .config import CacheConfig


class SetAssociativeCache:
    """A tag-only set-associative cache with per-set LRU ordering."""

    def __init__(self, config: CacheConfig, name: str = "cache") -> None:
        self.config = config
        self.name = name
        self._offset_bits = config.line_bytes.bit_length() - 1
        self._index_mask = config.num_sets - 1
        self._index_bits = self._index_mask.bit_length()
        self._num_ways = config.ways
        # Per set: list of tags in LRU order (front = most recent).
        self._sets: list[list[int]] = [[] for _ in range(config.num_sets)]
        self.hits = 0
        self.misses = 0

    @property
    def offset_bits(self) -> int:
        """Byte-offset width of one line (``addr >> offset_bits`` = line)."""
        return self._offset_bits

    def _locate(self, addr: int) -> tuple[int, int]:
        line = addr >> self._offset_bits
        return line & self._index_mask, line >> self._index_bits

    def access(self, addr: int) -> bool:
        """Access the line containing ``addr``; returns True on a hit.

        Misses allocate the line (write-allocate for the D-cache; fills
        for the I-cache), evicting the LRU way when the set is full.
        """
        line = addr >> self._offset_bits
        tag = line >> self._index_bits
        ways = self._sets[line & self._index_mask]
        if ways:
            if ways[0] == tag:  # MRU hit: no reordering needed
                self.hits += 1
                return True
            if tag in ways:
                ways.remove(tag)
                ways.insert(0, tag)
                self.hits += 1
                return True
        self.misses += 1
        ways.insert(0, tag)
        if len(ways) > self._num_ways:
            ways.pop()
        return False

    def contains(self, addr: int) -> bool:
        """Non-destructive lookup (no LRU update, no fill)."""
        index, tag = self._locate(addr)
        return tag in self._sets[index]

    def flush(self) -> None:
        """Invalidate all lines and reset statistics."""
        for ways in self._sets:
            ways.clear()
        self.hits = 0
        self.misses = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def occupancy(self) -> int:
        """Number of valid lines currently resident."""
        return sum(len(ways) for ways in self._sets)

    def __repr__(self) -> str:
        cfg = self.config
        return (
            f"SetAssociativeCache({self.name}: {cfg.size_bytes}B, {cfg.ways}-way, "
            f"{cfg.line_bytes}B lines, {self.hits} hits / {self.misses} misses)"
        )
