"""Simulation exception types.

Defined in their own leaf module so both the program compiler
(:mod:`repro.xtcore.compiled`) and the dispatch engine
(:mod:`repro.xtcore.iss`) can raise them without importing each other;
``repro.xtcore`` re-exports them under their historical names.
"""

from __future__ import annotations


class SimulationError(RuntimeError):
    """The simulated program did something unrecoverable."""


class SimulationLimitExceeded(SimulationError):
    """The instruction budget ran out (probable infinite loop)."""
