"""The retained reference interpreter (pre-compilation dispatch loop).

This is the seed `Simulator` loop, kept verbatim as
:class:`ReferenceSimulator`: it re-resolves semantics, source/dest
registers and the class/latency decision per retired instruction, and
re-decodes the program on every construction.  It exists for two jobs:

* the **differential test harness** asserts that the compiled dispatch
  engine in :mod:`repro.xtcore.iss` produces bitwise-identical stats,
  traces and final machine state against this loop on generated and
  bundled programs;
* the **throughput benchmark** (`benchmarks/bench_iss_throughput.py`)
  measures the compiled paths' speedup against it.

It is not wired into any production call path — ``run_session`` and the
CLI always use the compiled engine.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..asm import Program
from ..isa import INSTRUCTION_BYTES, InstructionClass, MachineState
from ..isa.bits import truncate
from ..isa.instructions import Instruction, InstructionDef
from ..obs.bundled import StatsObserver, TraceObserver
from ..obs.events import RetireEvent
from ..obs.protocol import SimObserver
from .caches import SetAssociativeCache
from .config import DEFAULT_MAX_INSTRUCTIONS, ProcessorConfig
from .errors import SimulationError, SimulationLimitExceeded
from .iss import DEFAULT_STACK_TOP, EXIT_ADDRESS, SimulationResult


class ReferenceSimulator:
    """The pre-refactor interpreter loop, unchanged (oracle + baseline)."""

    def __init__(
        self,
        config: ProcessorConfig,
        program: Program,
        collect_trace: bool = False,
        max_instructions: int = DEFAULT_MAX_INSTRUCTIONS,
        observers: Sequence[SimObserver] = (),
    ) -> None:
        self.config = config
        self.program = program
        self.collect_trace = collect_trace
        self.max_instructions = max_instructions
        self.observers = tuple(observers)
        isa = config.isa
        # Pre-decode: (instruction, definition, uncached?) per address.
        self._decoded: dict[int, tuple[Instruction, InstructionDef, bool]] = {}
        for addr, ins in program.instructions.items():
            try:
                definition = isa.lookup(ins.mnemonic)
            except KeyError as exc:
                raise SimulationError(
                    f"{program.name}: instruction {ins.mnemonic!r} at {addr:#x} "
                    f"is not in processor {config.name}'s ISA"
                ) from exc
            self._decoded[addr] = (ins, definition, program.is_uncached(addr))

    def _reset(self) -> MachineState:
        state = MachineState(self.config.num_registers)
        for addr, blob in self.program.data:
            state.memory.write_bytes(addr, blob)
        state.tie_state.update(self.config.state_inits)
        state.set(0, EXIT_ADDRESS)  # link register sentinel
        state.set(1, DEFAULT_STACK_TOP)
        state.pc = self.program.entry
        return state

    def run(self, entry: Optional[int] = None) -> SimulationResult:
        """Simulate from ``entry`` (default: program entry) to completion."""
        state = self._reset()
        if entry is not None:
            state.pc = entry
        stats_observer = StatsObserver()
        chain: list[SimObserver] = [stats_observer]
        trace_observer: Optional[TraceObserver] = None
        if self.collect_trace:
            trace_observer = TraceObserver()
            chain.append(trace_observer)
        chain.extend(self.observers)
        for observer in chain:
            observer.on_run_start(self.config, self.program)
        # Prefilter per granularity once, so unused callbacks cost nothing
        # in the hot loop.
        retire_observers = [o for o in chain if o.wants_retire]
        event_observers = [o for o in chain if o.wants_events]
        need_result = any(o.needs_result for o in retire_observers)
        event = RetireEvent()  # reused every instruction (observers copy)

        stats = stats_observer.stats
        icache = SetAssociativeCache(self.config.icache, "icache")
        dcache = SetAssociativeCache(self.config.dcache, "dcache")
        timing = self.config.timing
        decoded = self._decoded

        prev_load_dests: tuple[int, ...] = ()
        executed = 0

        while not state.halted:
            pc = state.pc
            if pc == EXIT_ADDRESS:
                break
            entry_tuple = decoded.get(pc)
            if entry_tuple is None:
                raise SimulationError(
                    f"{self.program.name}: pc={pc:#010x} is not a valid instruction address"
                )
            ins, definition, uncached = entry_tuple

            if executed >= self.max_instructions:
                raise SimulationLimitExceeded(
                    f"{self.program.name}: exceeded {self.max_instructions} instructions"
                )
            executed += 1

            # ---- fetch ---------------------------------------------------
            cycles = 0
            icache_miss = False
            if uncached:
                cycles += timing.uncached_fetch_penalty
                if event_observers:
                    for observer in event_observers:
                        observer.on_uncached_fetch(pc)
            elif not icache.access(pc):
                icache_miss = True
                cycles += self.config.icache.miss_penalty
                if event_observers:
                    for observer in event_observers:
                        observer.on_icache_miss(pc)

            # ---- decode / hazard detection -------------------------------
            sources = definition.source_registers(ins)
            interlock = bool(prev_load_dests) and any(
                src in prev_load_dests for src in sources
            )
            if interlock:
                cycles += timing.interlock_stall
                if event_observers:
                    for observer in event_observers:
                        observer.on_interlock(pc)

            operands = tuple(state.get(src) for src in sources)

            # ---- execute --------------------------------------------------
            next_pc = definition.semantics(state, ins)

            # ---- memory timing -------------------------------------------
            dcache_miss = False
            mem_addr: Optional[int] = None
            iclass = definition.iclass
            if iclass in (InstructionClass.LOAD, InstructionClass.STORE):
                mem_addr = truncate(operands[0] + (ins.imm or 0))
                if not dcache.access(mem_addr):
                    dcache_miss = True
                    cycles += self.config.dcache.miss_penalty
                    if event_observers:
                        for observer in event_observers:
                            observer.on_dcache_miss(mem_addr)

            # ---- cycle attribution ----------------------------------------
            if iclass is InstructionClass.BRANCH:
                taken = next_pc is not None
                resolved = (
                    InstructionClass.BRANCH_TAKEN if taken else InstructionClass.BRANCH_UNTAKEN
                )
                issue_cycles = definition.latency + (timing.branch_taken_penalty if taken else 0)
            elif iclass is InstructionClass.JUMP:
                resolved = iclass
                issue_cycles = definition.latency + timing.branch_taken_penalty
            else:  # ARITH, LOAD, STORE, CUSTOM, SYSTEM
                resolved = iclass
                issue_cycles = definition.latency

            cycles += issue_cycles

            # ---- retire: fan the event out to the observer chain ----------
            event.addr = pc
            event.mnemonic = ins.mnemonic
            event.iclass = resolved
            event.cycles = cycles
            event.issue_cycles = issue_cycles
            event.operands = operands
            if need_result:
                dests = definition.dest_registers(ins)
                event.result = state.get(dests[0]) if dests else 0
            else:
                event.result = 0
            event.icache_miss = icache_miss
            event.dcache_miss = dcache_miss
            event.uncached_fetch = uncached
            event.interlock = interlock
            event.mem_addr = mem_addr
            for observer in retire_observers:
                observer.on_retire(event)

            # ---- hazard bookkeeping / next pc -----------------------------
            prev_load_dests = (
                definition.dest_registers(ins)
                if iclass is InstructionClass.LOAD
                else ()
            )
            state.pc = next_pc if next_pc is not None else pc + INSTRUCTION_BYTES

        result = SimulationResult(
            program=self.program,
            config=self.config,
            stats=stats,
            state=state,
            trace=trace_observer.records if trace_observer is not None else None,
        )
        for observer in chain:
            observer.on_run_finish(result)
        return result
