"""Cycle-approximate instruction-set simulator for the extensible core.

This is the fast path of the paper's methodology (steps 6 and 9 of its
flow): instruction-set simulation gathers execution statistics — class
cycle counts, cache misses, uncached fetches, interlocks, custom
instruction counts — in one pass, without any structural hardware model.

The timing model is a five-stage in-order pipeline abstraction:

* every instruction occupies its definition latency in issue cycles;
* taken branches and jumps pay a pipeline-flush penalty, attributed to
  their class cycles (the paper's branch-taken class has a per-cycle
  coefficient covering this);
* a load-use dependence stalls the pipeline (the ``N_il`` interlock
  event);
* instruction fetches hit the I-cache, pay a miss penalty, or pay the
  uncached-fetch penalty when the address lies in an uncached region;
* loads and stores access the D-cache and pay miss penalties.

Simulation output is delivered through the streaming observer protocol
(:mod:`repro.obs`): the loop populates one reused
:class:`~repro.obs.events.RetireEvent` per instruction and fans it out to
the registered :class:`~repro.obs.protocol.SimObserver` chain.  The
always-on statistics and the optional trace materialization are the two
bundled observers; callers register further observers (online RTL energy
accumulation, profilers, trackers) via the ``observers`` argument or the
:func:`repro.obs.run_session` entry point.
"""

from __future__ import annotations

import dataclasses
from typing import Optional, Sequence

from ..asm import Program
from ..isa import (
    INSTRUCTION_BYTES,
    InstructionClass,
    MachineState,
)
from ..isa.bits import truncate
from ..isa.instructions import Instruction, InstructionDef
from ..obs.bundled import StatsObserver, TraceObserver
from ..obs.events import RetireEvent
from ..obs.protocol import SimObserver
from .caches import SetAssociativeCache
from .config import ProcessorConfig
from .trace import ExecutionStats, TraceRecord

#: Value planted in the link register at reset; returning to it halts the
#: simulation, so top-level routines may end with ``ret`` instead of ``halt``.
EXIT_ADDRESS = 0xFFFF_FFF0

#: Default stack-pointer value at reset (grows downward).
DEFAULT_STACK_TOP = 0x0007_FF00


class SimulationError(RuntimeError):
    """The simulated program did something unrecoverable."""


class SimulationLimitExceeded(SimulationError):
    """The instruction budget ran out (probable infinite loop)."""


@dataclasses.dataclass
class SimulationResult:
    """Output of one simulated run."""

    program: Program
    config: ProcessorConfig
    stats: ExecutionStats
    state: MachineState
    trace: Optional[list[TraceRecord]] = None

    @property
    def cycles(self) -> int:
        return self.stats.total_cycles

    @property
    def instructions(self) -> int:
        return self.stats.total_instructions

    @property
    def runtime_seconds(self) -> float:
        """Simulated wall-clock time at the configured core frequency."""
        return self.stats.total_cycles / (self.config.clock_mhz * 1e6)

    @property
    def cpi(self) -> float:
        """Cycles per instruction of the run (pipeline-quality metric)."""
        if self.stats.total_instructions == 0:
            return 0.0
        return self.stats.total_cycles / self.stats.total_instructions

    def performance_summary(self) -> str:
        """One-paragraph performance digest (CPI, stall/penalty shares)."""
        stats = self.stats
        cycles = stats.total_cycles or 1
        penalty_cycles = (
            stats.interlocks * self.config.timing.interlock_stall
            + stats.icache_misses * self.config.icache.miss_penalty
            + stats.dcache_misses * self.config.dcache.miss_penalty
            + stats.uncached_fetches * self.config.timing.uncached_fetch_penalty
        )
        return (
            f"{self.program.name} on {self.config.name}: "
            f"{stats.total_instructions} instructions in {stats.total_cycles} cycles "
            f"(CPI {self.cpi:.2f}, {100.0 * penalty_cycles / cycles:.1f}% in "
            f"stalls/miss penalties, {self.runtime_seconds * 1e6:.1f} us at "
            f"{self.config.clock_mhz:g} MHz)"
        )

    def word(self, symbol: str) -> int:
        """Read a 32-bit little-endian word at a program symbol (for checks)."""
        return self.state.memory.read(self.program.symbol(symbol), 4)

    def words(self, symbol: str, count: int) -> list[int]:
        base = self.program.symbol(symbol)
        return [self.state.memory.read(base + 4 * i, 4) for i in range(count)]


class Simulator:
    """Executes one :class:`Program` on one :class:`ProcessorConfig`.

    ``observers`` registers extra :class:`~repro.obs.protocol.SimObserver`
    subscribers on every run; statistics (and, with ``collect_trace=True``,
    trace materialization) are provided by bundled observers regardless.
    Most callers should go through :func:`repro.obs.run_session` instead
    of constructing a ``Simulator`` directly.
    """

    def __init__(
        self,
        config: ProcessorConfig,
        program: Program,
        collect_trace: bool = False,
        max_instructions: int = 5_000_000,
        observers: Sequence[SimObserver] = (),
    ) -> None:
        self.config = config
        self.program = program
        self.collect_trace = collect_trace
        self.max_instructions = max_instructions
        self.observers = tuple(observers)
        isa = config.isa
        # Pre-decode: (instruction, definition, uncached?) per address.
        self._decoded: dict[int, tuple[Instruction, InstructionDef, bool]] = {}
        for addr, ins in program.instructions.items():
            try:
                definition = isa.lookup(ins.mnemonic)
            except KeyError as exc:
                raise SimulationError(
                    f"{program.name}: instruction {ins.mnemonic!r} at {addr:#x} "
                    f"is not in processor {config.name}'s ISA"
                ) from exc
            self._decoded[addr] = (ins, definition, program.is_uncached(addr))

    def _reset(self) -> MachineState:
        state = MachineState(self.config.num_registers)
        for addr, blob in self.program.data:
            state.memory.write_bytes(addr, blob)
        state.tie_state.update(self.config.state_inits)
        state.set(0, EXIT_ADDRESS)  # link register sentinel
        state.set(1, DEFAULT_STACK_TOP)
        state.pc = self.program.entry
        return state

    def run(self, entry: Optional[int] = None) -> SimulationResult:
        """Simulate from ``entry`` (default: program entry) to completion."""
        state = self._reset()
        if entry is not None:
            state.pc = entry
        stats_observer = StatsObserver()
        chain: list[SimObserver] = [stats_observer]
        trace_observer: Optional[TraceObserver] = None
        if self.collect_trace:
            trace_observer = TraceObserver()
            chain.append(trace_observer)
        chain.extend(self.observers)
        for observer in chain:
            observer.on_run_start(self.config, self.program)
        # Prefilter per granularity once, so unused callbacks cost nothing
        # in the hot loop.
        retire_observers = [o for o in chain if o.wants_retire]
        event_observers = [o for o in chain if o.wants_events]
        need_result = any(o.needs_result for o in retire_observers)
        event = RetireEvent()  # reused every instruction (observers copy)

        stats = stats_observer.stats
        icache = SetAssociativeCache(self.config.icache, "icache")
        dcache = SetAssociativeCache(self.config.dcache, "dcache")
        timing = self.config.timing
        decoded = self._decoded

        prev_load_dests: tuple[int, ...] = ()
        executed = 0

        while not state.halted:
            pc = state.pc
            if pc == EXIT_ADDRESS:
                break
            entry_tuple = decoded.get(pc)
            if entry_tuple is None:
                raise SimulationError(
                    f"{self.program.name}: pc={pc:#010x} is not a valid instruction address"
                )
            ins, definition, uncached = entry_tuple

            if executed >= self.max_instructions:
                raise SimulationLimitExceeded(
                    f"{self.program.name}: exceeded {self.max_instructions} instructions"
                )
            executed += 1

            # ---- fetch ---------------------------------------------------
            cycles = 0
            icache_miss = False
            if uncached:
                cycles += timing.uncached_fetch_penalty
                if event_observers:
                    for observer in event_observers:
                        observer.on_uncached_fetch(pc)
            elif not icache.access(pc):
                icache_miss = True
                cycles += self.config.icache.miss_penalty
                if event_observers:
                    for observer in event_observers:
                        observer.on_icache_miss(pc)

            # ---- decode / hazard detection -------------------------------
            sources = definition.source_registers(ins)
            interlock = bool(prev_load_dests) and any(
                src in prev_load_dests for src in sources
            )
            if interlock:
                cycles += timing.interlock_stall
                if event_observers:
                    for observer in event_observers:
                        observer.on_interlock(pc)

            operands = tuple(state.get(src) for src in sources)

            # ---- execute --------------------------------------------------
            next_pc = definition.semantics(state, ins)

            # ---- memory timing -------------------------------------------
            dcache_miss = False
            mem_addr: Optional[int] = None
            iclass = definition.iclass
            if iclass in (InstructionClass.LOAD, InstructionClass.STORE):
                mem_addr = truncate(operands[0] + (ins.imm or 0))
                if not dcache.access(mem_addr):
                    dcache_miss = True
                    cycles += self.config.dcache.miss_penalty
                    if event_observers:
                        for observer in event_observers:
                            observer.on_dcache_miss(mem_addr)

            # ---- cycle attribution ----------------------------------------
            if iclass is InstructionClass.BRANCH:
                taken = next_pc is not None
                resolved = (
                    InstructionClass.BRANCH_TAKEN if taken else InstructionClass.BRANCH_UNTAKEN
                )
                issue_cycles = definition.latency + (timing.branch_taken_penalty if taken else 0)
            elif iclass is InstructionClass.JUMP:
                resolved = iclass
                issue_cycles = definition.latency + timing.branch_taken_penalty
            else:  # ARITH, LOAD, STORE, CUSTOM, SYSTEM
                resolved = iclass
                issue_cycles = definition.latency

            cycles += issue_cycles

            # ---- retire: fan the event out to the observer chain ----------
            event.addr = pc
            event.mnemonic = ins.mnemonic
            event.iclass = resolved
            event.cycles = cycles
            event.issue_cycles = issue_cycles
            event.operands = operands
            if need_result:
                dests = definition.dest_registers(ins)
                event.result = state.get(dests[0]) if dests else 0
            else:
                event.result = 0
            event.icache_miss = icache_miss
            event.dcache_miss = dcache_miss
            event.uncached_fetch = uncached
            event.interlock = interlock
            event.mem_addr = mem_addr
            for observer in retire_observers:
                observer.on_retire(event)

            # ---- hazard bookkeeping / next pc -----------------------------
            prev_load_dests = (
                definition.dest_registers(ins)
                if iclass is InstructionClass.LOAD
                else ()
            )
            state.pc = next_pc if next_pc is not None else pc + INSTRUCTION_BYTES

        result = SimulationResult(
            program=self.program,
            config=self.config,
            stats=stats,
            state=state,
            trace=trace_observer.records if trace_observer is not None else None,
        )
        for observer in chain:
            observer.on_run_finish(result)
        return result


def simulate(
    config: ProcessorConfig,
    program: Program,
    collect_trace: bool = False,
    max_instructions: int = 5_000_000,
    observers: Sequence[SimObserver] = (),
) -> SimulationResult:
    """One-shot convenience wrapper around :class:`Simulator`."""
    return Simulator(
        config,
        program,
        collect_trace=collect_trace,
        max_instructions=max_instructions,
        observers=observers,
    ).run()
