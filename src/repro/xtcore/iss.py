"""Cycle-approximate instruction-set simulation: the dispatch engine.

This is the fast path of the paper's methodology (steps 6 and 9 of its
flow): instruction-set simulation gathers execution statistics — class
cycle counts, cache misses, uncached fetches, interlocks, custom
instruction counts — in one pass, without any structural hardware model.

The timing model is a five-stage in-order pipeline abstraction:

* every instruction occupies its definition latency in issue cycles;
* taken branches and jumps pay a pipeline-flush penalty, attributed to
  their class cycles (the paper's branch-taken class has a per-cycle
  coefficient covering this);
* a load-use dependence stalls the pipeline (the ``N_il`` interlock
  event);
* instruction fetches hit the I-cache, pay a miss penalty, or pay the
  uncached-fetch penalty when the address lies in an uncached region;
* loads and stores access the D-cache and pay miss penalties.

Execution is a three-stage **compile → link → dispatch** pipeline: the
program is lowered once against the processor config into an
:class:`~repro.xtcore.compiled.ExecutableProgram` (memoized across runs
by the :func:`~repro.xtcore.compiled.compilation_cache`), and
:meth:`Simulator.run` dispatches over that IR with two specializations:

* the **instrumented path** runs whenever observers are registered or a
  trace is requested: it populates one reused
  :class:`~repro.obs.events.RetireEvent` per instruction and fans it out
  to the :class:`~repro.obs.protocol.SimObserver` chain, exactly as the
  streaming protocol documents;
* the **fast path** runs when there is nothing to observe (the
  characterize/DSE common case): no event objects, no operand tuples, no
  callback dispatch — just semantics plus per-op retire counters.

Both paths fold statistics the same way — per-op retire/taken counts and
scalar event counters, aggregated into :class:`ExecutionStats` at run
end — so their stats are identical by construction, and the differential
suite pins both against the retained reference interpreter
(:class:`repro.xtcore.interp.ReferenceSimulator`).
"""

from __future__ import annotations

import dataclasses
from typing import Optional, Sequence

from ..asm import Program
from ..isa import INSTRUCTION_BYTES, MachineState
from ..isa.classes import InstructionClass
from ..obs.bundled import TraceObserver
from ..obs.events import RetireEvent
from ..obs.protocol import SimObserver
from .caches import SetAssociativeCache
from .compiled import (
    BLK_FIRST_SRCS,
    BLK_ID,
    BLK_IFETCH,
    BLK_INTERLOCKS,
    BLK_LAST_ADDR,
    BLK_LEN,
    BLK_LOAD_DESTS,
    BLK_NEXT_IDX,
    BLK_START,
    BLK_STEPS,
    ExecutableProgram,
    SuperopProgram,
    compilation_cache,
    describe_invalid_pc,
)
from .config import DEFAULT_MAX_INSTRUCTIONS, ProcessorConfig
from .errors import SimulationError, SimulationLimitExceeded
from .trace import ExecutionStats, TraceRecord

#: Value planted in the link register at reset; returning to it halts the
#: simulation, so top-level routines may end with ``ret`` instead of ``halt``.
EXIT_ADDRESS = 0xFFFF_FFF0

#: Default stack-pointer value at reset (grows downward).
DEFAULT_STACK_TOP = 0x0007_FF00

_BRANCH_TAKEN = InstructionClass.BRANCH_TAKEN
_BRANCH_UNTAKEN = InstructionClass.BRANCH_UNTAKEN

#: Engine-selection names accepted by :class:`Simulator`, ``simulate`` and
#: ``run_session``.  ``auto`` resolves to the fastest engine that can honor
#: the run's instrumentation: superop blocks when nothing needs per-retire
#: callbacks, the per-op compiled path when something does.
ENGINES = ("auto", "reference", "compiled", "superop")

__all__ = [
    "DEFAULT_MAX_INSTRUCTIONS",
    "DEFAULT_STACK_TOP",
    "ENGINES",
    "EXIT_ADDRESS",
    "SimulationError",
    "SimulationLimitExceeded",
    "SimulationResult",
    "Simulator",
    "simulate",
]


@dataclasses.dataclass
class SimulationResult:
    """Output of one simulated run."""

    program: Program
    config: ProcessorConfig
    stats: ExecutionStats
    state: MachineState
    trace: Optional[list[TraceRecord]] = None
    #: dispatch engine that produced this result ("reference", "compiled",
    #: "superop" or "batch"); None when the producer predates the field.
    engine: Optional[str] = None

    @property
    def cycles(self) -> int:
        return self.stats.total_cycles

    @property
    def instructions(self) -> int:
        return self.stats.total_instructions

    @property
    def runtime_seconds(self) -> float:
        """Simulated wall-clock time at the configured core frequency."""
        return self.stats.total_cycles / (self.config.clock_mhz * 1e6)

    @property
    def cpi(self) -> float:
        """Cycles per instruction of the run (pipeline-quality metric)."""
        if self.stats.total_instructions == 0:
            return 0.0
        return self.stats.total_cycles / self.stats.total_instructions

    def performance_summary(self) -> str:
        """One-paragraph performance digest (CPI, stall/penalty shares)."""
        stats = self.stats
        cycles = stats.total_cycles or 1
        penalty_cycles = (
            stats.interlocks * self.config.timing.interlock_stall
            + stats.icache_misses * self.config.icache.miss_penalty
            + stats.dcache_misses * self.config.dcache.miss_penalty
            + stats.uncached_fetches * self.config.timing.uncached_fetch_penalty
        )
        return (
            f"{self.program.name} on {self.config.name}: "
            f"{stats.total_instructions} instructions in {stats.total_cycles} cycles "
            f"(CPI {self.cpi:.2f}, {100.0 * penalty_cycles / cycles:.1f}% in "
            f"stalls/miss penalties, {self.runtime_seconds * 1e6:.1f} us at "
            f"{self.config.clock_mhz:g} MHz)"
        )

    def word(self, symbol: str) -> int:
        """Read a 32-bit little-endian word at a program symbol (for checks)."""
        return self.state.memory.read(self.program.symbol(symbol), 4)

    def words(self, symbol: str, count: int) -> list[int]:
        base = self.program.symbol(symbol)
        return [self.state.memory.read(base + 4 * i, 4) for i in range(count)]


def _aggregate_stats(
    config: ProcessorConfig,
    executable: ExecutableProgram,
    counts: list[int],
    taken_counts: list[int],
    icache_misses: int,
    dcache_misses: int,
    interlocks: int,
) -> ExecutionStats:
    """Fold per-op retire counters into :class:`ExecutionStats`.

    Mathematically identical to applying :func:`repro.obs.bundled.apply_event`
    per retired instruction (the reference interpreter's folding rule), but
    O(static ops) instead of O(dynamic instructions): every retire of one
    micro-op contributes the same class, issue cycles and bus attribution,
    so the per-retire sums collapse to ``count x per-op values`` — with
    branches split by their taken count.  Both dispatch paths use this, so
    fast-path stats equal instrumented-path stats by construction.
    """
    stats = ExecutionStats()
    class_cycles = stats.class_cycles
    class_counts = stats.class_counts
    mnemonic_counts = stats.mnemonic_counts
    custom_cycles = stats.custom_cycles
    custom_counts = stats.custom_counts
    total_instructions = 0
    issue_total = 0
    base_bus = 0
    system = 0
    gpr_cycles = 0
    uncached_fetches = 0
    ops = executable.ops
    for index, count in enumerate(counts):
        if not count:
            continue
        op = ops[index]
        taken = taken_counts[index]
        untaken = count - taken
        issue = untaken * op[14] + taken * op[15]
        mnemonic = op[11]
        total_instructions += count
        issue_total += issue
        mnemonic_counts[mnemonic] = mnemonic_counts.get(mnemonic, 0) + count
        kind = op[17]
        if kind:  # custom instruction
            custom_cycles[mnemonic] = custom_cycles.get(mnemonic, 0) + issue
            custom_counts[mnemonic] = custom_counts.get(mnemonic, 0) + count
            if kind == 2:
                gpr_cycles += issue
        else:
            if op[7]:  # BRANCH: split by outcome
                if untaken:
                    class_cycles[_BRANCH_UNTAKEN] += untaken * op[14]
                    class_counts[_BRANCH_UNTAKEN] += untaken
                if taken:
                    class_cycles[_BRANCH_TAKEN] += taken * op[15]
                    class_counts[_BRANCH_TAKEN] += taken
            elif op[19]:  # one of the six base energy classes
                iclass = op[12]
                class_cycles[iclass] += issue
                class_counts[iclass] += count
            else:  # SYSTEM
                system += issue
            if op[18]:  # base op driving the shared operand buses
                base_bus += issue
        if not op[6]:
            uncached_fetches += count
    timing = config.timing
    stats.icache_misses = icache_misses
    stats.dcache_misses = dcache_misses
    stats.interlocks = interlocks
    stats.uncached_fetches = uncached_fetches
    stats.custom_gpr_cycles = gpr_cycles
    stats.base_bus_cycles = base_bus
    stats.system_cycles = system
    stats.total_instructions = total_instructions
    stats.total_cycles = (
        issue_total
        + interlocks * timing.interlock_stall
        + icache_misses * config.icache.miss_penalty
        + dcache_misses * config.dcache.miss_penalty
        + uncached_fetches * timing.uncached_fetch_penalty
    )
    return stats


class Simulator:
    """Executes one :class:`Program` on one :class:`ProcessorConfig`.

    Construction resolves the program against the process-wide
    :func:`~repro.xtcore.compiled.compilation_cache` (pass ``executable``
    to reuse a lowering compiled elsewhere, e.g. pre-fork in a worker
    pool).  ``observers`` registers extra
    :class:`~repro.obs.protocol.SimObserver` subscribers on every run.

    ``engine`` selects the dispatch tier explicitly — one of
    :data:`ENGINES`.  The default ``auto`` resolves per run: superop
    block dispatch when nothing needs per-retire visibility, the per-op
    compiled path when a trace or a retire/event observer is registered,
    never the reference interpreter.  An explicit ``superop`` request
    likewise deoptimizes to the compiled per-op path for instrumented
    runs — fused blocks cannot fan out per-retire callbacks — so stats
    stay bitwise identical either way.  Most callers should go through
    :func:`repro.obs.run_session` instead of constructing a ``Simulator``
    directly.
    """

    def __init__(
        self,
        config: ProcessorConfig,
        program: Program,
        collect_trace: bool = False,
        max_instructions: int = DEFAULT_MAX_INSTRUCTIONS,
        observers: Sequence[SimObserver] = (),
        executable: Optional[ExecutableProgram] = None,
        engine: str = "auto",
    ) -> None:
        if engine not in ENGINES:
            raise ValueError(
                f"unknown engine {engine!r}; expected one of {', '.join(ENGINES)}"
            )
        self.config = config
        self.program = program
        self.collect_trace = collect_trace
        self.max_instructions = max_instructions
        self.observers = tuple(observers)
        self.engine = engine
        if executable is None:
            executable = compilation_cache().get_or_compile(config, program)
        elif (
            executable.program_digest != program.digest()
            or executable.config_fingerprint != config.fingerprint()
        ):
            raise SimulationError(
                f"executable {executable!r} was compiled for different content "
                f"than ({program.name}, {config.name})"
            )
        self.executable = executable
        self._superops: Optional[SuperopProgram] = None

    def _reset(self) -> MachineState:
        state = MachineState(self.config.num_registers)
        for addr, blob in self.program.data:
            state.memory.write_bytes(addr, blob)
        state.tie_state.update(self.config.state_inits)
        state.set(0, EXIT_ADDRESS)  # link register sentinel
        state.set(1, DEFAULT_STACK_TOP)
        state.pc = self.program.entry
        return state

    def resolve_engine(self) -> str:
        """The engine this simulator will actually dispatch through.

        ``auto`` picks the fastest tier that honors the instrumentation;
        a ``superop`` request deoptimizes to ``compiled`` when per-retire
        visibility (a trace, or an observer with ``wants_retire`` /
        ``wants_events``) is required, since fused blocks cannot fan out
        per-instruction callbacks.  Run-scoped observers (tallies that
        only need ``on_run_start``/``on_run_finish``) do not force the
        deopt — both fast engines bracket the run for them.
        """
        engine = self.engine
        if engine == "reference":
            return engine
        per_retire = self.collect_trace or any(
            o.wants_retire or o.wants_events for o in self.observers
        )
        if per_retire:
            return "compiled"
        if engine == "auto":
            return "superop"
        return engine

    def run(self, entry: Optional[int] = None) -> SimulationResult:
        """Simulate from ``entry`` (default: program entry) to completion."""
        engine = self.resolve_engine()
        if engine == "reference":
            from .interp import ReferenceSimulator

            result = ReferenceSimulator(
                self.config,
                self.program,
                collect_trace=self.collect_trace,
                max_instructions=self.max_instructions,
                observers=self.observers,
            ).run(entry=entry)
            result.engine = "reference"
            return result
        state = self._reset()
        if entry is not None:
            state.pc = entry
        if self.collect_trace or any(
            o.wants_retire or o.wants_events for o in self.observers
        ):
            return self._run_instrumented(state)
        if self.observers:
            # Run-scoped observers only: bracket the fast engine with the
            # start/finish callbacks the protocol guarantees.
            for observer in self.observers:
                observer.on_run_start(self.config, self.program)
            result = (
                self._run_superop(state)
                if engine == "superop"
                else self._run_fast(state)
            )
            for observer in self.observers:
                observer.on_run_finish(result)
            return result
        if engine == "superop":
            return self._run_superop(state)
        return self._run_fast(state)

    # ------------------------------------------------------------------
    # fast path: no observers, no trace — counters only
    # ------------------------------------------------------------------

    def _run_fast(self, state: MachineState) -> SimulationResult:
        executable = self.executable
        ops = executable.ops
        pc_map = executable.pc_to_index
        counts = [0] * len(ops)
        taken_counts = [0] * len(ops)
        config = self.config
        icache = SetAssociativeCache(config.icache, "icache")
        dcache = SetAssociativeCache(config.dcache, "dcache")
        icache_access = icache.access
        dcache_access = dcache.access
        ishift = icache.offset_bits
        dshift = dcache.offset_bits
        icache_misses = 0
        dcache_misses = 0
        interlocks = 0
        # Same-line memo: a repeat access to the line just touched is a
        # guaranteed MRU hit with no LRU movement and no events, so the
        # cache model call can be skipped without changing any outcome.
        ilast = -1
        dlast = -1
        prev_load_dests: tuple[int, ...] = ()
        max_instructions = self.max_instructions
        # Register reads skip the bounds check when compilation proved
        # every index in range (the out-of-range IndexError path is kept
        # for programs where it did not).
        state_get = state.regs.__getitem__ if executable.regs_in_range else state.get
        executed = 0
        mem_base = 0

        pc = state.pc
        if pc != EXIT_ADDRESS:
            idx = pc_map.get(pc, -1)
            if idx < 0:
                raise SimulationError(
                    describe_invalid_pc(executable.program_name, pc, executable, None)
                )
            while True:
                if executed >= max_instructions:
                    raise SimulationLimitExceeded(
                        f"{executable.program_name}: "
                        f"exceeded {max_instructions} instructions"
                    )
                executed += 1
                op = ops[idx]
                addr = op[10]
                if op[6]:  # cached fetch
                    line = addr >> ishift
                    if line != ilast:
                        ilast = line
                        if not icache_access(addr):
                            icache_misses += 1
                if prev_load_dests:
                    for src in op[2]:
                        if src in prev_load_dests:
                            interlocks += 1
                            break
                if op[5]:  # memory op: base register read precedes execution
                    mem_base = state_get(op[3])
                state.pc = addr
                counts[idx] += 1
                next_pc = op[0](state, op[1])
                if op[5]:
                    mem_addr = (mem_base + op[4]) & 0xFFFFFFFF
                    line = mem_addr >> dshift
                    if line != dlast:
                        dlast = line
                        if not dcache_access(mem_addr):
                            dcache_misses += 1
                prev_load_dests = op[8]
                if next_pc is None:
                    if state.halted:
                        state.pc = addr + INSTRUCTION_BYTES
                        break
                    idx = op[9]
                    if idx >= 0:
                        continue
                    pc = addr + INSTRUCTION_BYTES
                else:
                    taken_counts[idx] += 1
                    if state.halted:
                        state.pc = next_pc
                        break
                    if next_pc == EXIT_ADDRESS:
                        state.pc = EXIT_ADDRESS
                        break
                    idx = pc_map.get(next_pc, -1)
                    if idx >= 0:
                        continue
                    pc = next_pc
                state.pc = pc
                raise SimulationError(
                    describe_invalid_pc(executable.program_name, pc, executable, addr)
                )

        stats = _aggregate_stats(
            config, executable, counts, taken_counts,
            icache_misses, dcache_misses, interlocks,
        )
        return SimulationResult(
            program=self.program,
            config=config,
            stats=stats,
            state=state,
            engine="compiled",
        )

    # ------------------------------------------------------------------
    # superop path: one dispatch per basic block, per-op side exits
    # ------------------------------------------------------------------

    def _run_superop(self, state: MachineState) -> SimulationResult:
        executable = self.executable
        superops = self._superops
        if superops is None:
            superops = compilation_cache().get_or_compile_superops(
                self.config, self.program, executable=executable
            )
            self._superops = superops
        ops = executable.ops
        pc_map = executable.pc_to_index
        block_at = superops.block_at
        counts = [0] * len(ops)
        taken_counts = [0] * len(ops)
        block_counts = [0] * len(superops.blocks)
        config = self.config
        icache = SetAssociativeCache(config.icache, "icache")
        dcache = SetAssociativeCache(config.dcache, "dcache")
        icache_access = icache.access
        dcache_access = dcache.access
        ishift = icache.offset_bits
        dshift = dcache.offset_bits
        interlocks = 0
        # Same-line memo + miss counters as two-slot lists so fused block
        # closures and the per-op side-exit path mutate one shared state.
        ic = [-1, 0]
        dc = [-1, 0]
        prev_load_dests: tuple[int, ...] = ()
        max_instructions = self.max_instructions
        state_get = state.regs.__getitem__ if executable.regs_in_range else state.get
        executed = 0
        mem_base = 0

        pc = state.pc
        if pc != EXIT_ADDRESS:
            idx = pc_map.get(pc, -1)
            if idx < 0:
                raise SimulationError(
                    describe_invalid_pc(executable.program_name, pc, executable, None)
                )
            while True:
                block = block_at[idx]
                if block is not None and executed + block[2] <= max_instructions:
                    # Fused fast path: the whole block retires in one
                    # dispatch — semantics, I-line memo and D-cache
                    # replays inlined into one generated closure, and
                    # the remaining bookkeeping folded to block deltas.
                    executed += block[2]
                    if prev_load_dests:
                        for src in block[5]:
                            if src in prev_load_dests:
                                interlocks += 1
                                break
                    interlocks += block[6]
                    block[10](state, ic, dc, icache_access, dcache_access)
                    block_counts[block[0]] += 1
                    prev_load_dests = block[7]
                    idx = block[8]
                    if idx >= 0:
                        continue
                    # Fell off the end of the mapped address range.
                    addr = block[9]
                    pc = (addr + INSTRUCTION_BYTES) & 0xFFFFFFFF
                    state.pc = pc
                    raise SimulationError(
                        describe_invalid_pc(
                            executable.program_name, pc, executable, addr
                        )
                    )
                # Side exit / per-op path: block boundaries (branches,
                # jumps, system ops, customs), mid-block landings from
                # dynamic jumps, and blocks that would cross the
                # instruction budget (so SimulationLimitExceeded raises
                # at the exact instruction, after any earlier fault).
                if executed >= max_instructions:
                    raise SimulationLimitExceeded(
                        f"{executable.program_name}: "
                        f"exceeded {max_instructions} instructions"
                    )
                executed += 1
                op = ops[idx]
                addr = op[10]
                if op[6]:  # cached fetch
                    line = addr >> ishift
                    if line != ic[0]:
                        ic[0] = line
                        if not icache_access(addr):
                            ic[1] += 1
                if prev_load_dests:
                    for src in op[2]:
                        if src in prev_load_dests:
                            interlocks += 1
                            break
                if op[5]:  # memory op: base register read precedes execution
                    mem_base = state_get(op[3])
                state.pc = addr
                counts[idx] += 1
                next_pc = op[0](state, op[1])
                if op[5]:
                    mem_addr = (mem_base + op[4]) & 0xFFFFFFFF
                    line = mem_addr >> dshift
                    if line != dc[0]:
                        dc[0] = line
                        if not dcache_access(mem_addr):
                            dc[1] += 1
                prev_load_dests = op[8]
                if next_pc is None:
                    if state.halted:
                        state.pc = addr + INSTRUCTION_BYTES
                        break
                    idx = op[9]
                    if idx >= 0:
                        continue
                    pc = addr + INSTRUCTION_BYTES
                else:
                    taken_counts[idx] += 1
                    if state.halted:
                        state.pc = next_pc
                        break
                    if next_pc == EXIT_ADDRESS:
                        state.pc = EXIT_ADDRESS
                        break
                    idx = pc_map.get(next_pc, -1)
                    if idx >= 0:
                        continue
                    pc = next_pc
                state.pc = pc
                raise SimulationError(
                    describe_invalid_pc(executable.program_name, pc, executable, addr)
                )

        # Expand per-block execution counters into the per-op counts the
        # aggregation contract expects (O(static ops), like aggregation).
        blocks = superops.blocks
        for block_id, count in enumerate(block_counts):
            if not count:
                continue
            block = blocks[block_id]
            for i in range(block[1], block[1] + block[2]):
                counts[i] += count
        stats = _aggregate_stats(
            config, executable, counts, taken_counts,
            ic[1], dc[1], interlocks,
        )
        return SimulationResult(
            program=self.program,
            config=config,
            stats=stats,
            state=state,
            engine="superop",
        )

    # ------------------------------------------------------------------
    # instrumented path: observer chain and/or trace materialization
    # ------------------------------------------------------------------

    def _run_instrumented(self, state: MachineState) -> SimulationResult:
        executable = self.executable
        config = self.config
        chain: list[SimObserver] = []
        trace_observer: Optional[TraceObserver] = None
        if self.collect_trace:
            trace_observer = TraceObserver()
            chain.append(trace_observer)
        chain.extend(self.observers)
        for observer in chain:
            observer.on_run_start(config, self.program)
        # Prefilter per granularity once, so unused callbacks cost nothing
        # in the hot loop.
        retire_observers = [o for o in chain if o.wants_retire]
        event_observers = [o for o in chain if o.wants_events]
        need_result = any(o.needs_result for o in retire_observers)
        event = RetireEvent()  # reused every instruction (observers copy)

        ops = executable.ops
        pc_map = executable.pc_to_index
        counts = [0] * len(ops)
        taken_counts = [0] * len(ops)
        icache = SetAssociativeCache(config.icache, "icache")
        dcache = SetAssociativeCache(config.dcache, "dcache")
        icache_access = icache.access
        dcache_access = dcache.access
        ishift = icache.offset_bits
        dshift = dcache.offset_bits
        icache_penalty = config.icache.miss_penalty
        dcache_penalty = config.dcache.miss_penalty
        timing = config.timing
        uncached_penalty = timing.uncached_fetch_penalty
        interlock_stall = timing.interlock_stall
        icache_misses = 0
        dcache_misses = 0
        interlocks = 0
        ilast = -1
        dlast = -1
        prev_load_dests: tuple[int, ...] = ()
        max_instructions = self.max_instructions
        state_get = state.regs.__getitem__ if executable.regs_in_range else state.get
        executed = 0

        pc = state.pc
        if pc != EXIT_ADDRESS:
            idx = pc_map.get(pc, -1)
            if idx < 0:
                raise SimulationError(
                    describe_invalid_pc(executable.program_name, pc, executable, None)
                )
            while True:
                if executed >= max_instructions:
                    raise SimulationLimitExceeded(
                        f"{executable.program_name}: "
                        f"exceeded {max_instructions} instructions"
                    )
                executed += 1
                op = ops[idx]
                addr = op[10]

                # ---- fetch -----------------------------------------------
                cycles = 0
                icache_miss = False
                uncached = not op[6]
                if uncached:
                    cycles += uncached_penalty
                    for observer in event_observers:
                        observer.on_uncached_fetch(addr)
                else:
                    line = addr >> ishift
                    if line != ilast:
                        ilast = line
                        if not icache_access(addr):
                            icache_miss = True
                            icache_misses += 1
                            cycles += icache_penalty
                            for observer in event_observers:
                                observer.on_icache_miss(addr)

                # ---- decode / hazard detection ---------------------------
                srcs = op[2]
                interlock = False
                if prev_load_dests:
                    for src in srcs:
                        if src in prev_load_dests:
                            interlock = True
                            interlocks += 1
                            cycles += interlock_stall
                            for observer in event_observers:
                                observer.on_interlock(addr)
                            break
                operands = tuple([state_get(src) for src in srcs]) if srcs else ()

                # ---- execute ---------------------------------------------
                state.pc = addr
                counts[idx] += 1
                next_pc = op[0](state, op[1])

                # ---- memory timing ---------------------------------------
                dcache_miss = False
                mem_addr: Optional[int] = None
                if op[5]:
                    mem_addr = (operands[0] + op[4]) & 0xFFFFFFFF
                    line = mem_addr >> dshift
                    if line != dlast:
                        dlast = line
                        if not dcache_access(mem_addr):
                            dcache_miss = True
                            dcache_misses += 1
                            cycles += dcache_penalty
                            for observer in event_observers:
                                observer.on_dcache_miss(mem_addr)

                # ---- retire: fan the event out to the observer chain -----
                if next_pc is None:
                    issue_cycles = op[14]
                    resolved = op[12]
                else:
                    taken_counts[idx] += 1
                    issue_cycles = op[15]
                    resolved = op[13]
                cycles += issue_cycles
                event.addr = addr
                event.mnemonic = op[11]
                event.iclass = resolved
                event.cycles = cycles
                event.issue_cycles = issue_cycles
                event.operands = operands
                if need_result:
                    dest0 = op[16]
                    event.result = state_get(dest0) if dest0 >= 0 else 0
                else:
                    event.result = 0
                event.icache_miss = icache_miss
                event.dcache_miss = dcache_miss
                event.uncached_fetch = uncached
                event.interlock = interlock
                event.mem_addr = mem_addr
                for observer in retire_observers:
                    observer.on_retire(event)

                # ---- hazard bookkeeping / next pc ------------------------
                prev_load_dests = op[8]
                if next_pc is None:
                    if state.halted:
                        state.pc = addr + INSTRUCTION_BYTES
                        break
                    idx = op[9]
                    if idx >= 0:
                        continue
                    pc = addr + INSTRUCTION_BYTES
                else:
                    if state.halted:
                        state.pc = next_pc
                        break
                    if next_pc == EXIT_ADDRESS:
                        state.pc = EXIT_ADDRESS
                        break
                    idx = pc_map.get(next_pc, -1)
                    if idx >= 0:
                        continue
                    pc = next_pc
                state.pc = pc
                raise SimulationError(
                    describe_invalid_pc(executable.program_name, pc, executable, addr)
                )

        stats = _aggregate_stats(
            config, executable, counts, taken_counts,
            icache_misses, dcache_misses, interlocks,
        )
        result = SimulationResult(
            program=self.program,
            config=config,
            stats=stats,
            state=state,
            trace=trace_observer.records if trace_observer is not None else None,
            engine="compiled",
        )
        for observer in chain:
            observer.on_run_finish(result)
        return result


def simulate(
    config: ProcessorConfig,
    program: Program,
    collect_trace: bool = False,
    max_instructions: int = DEFAULT_MAX_INSTRUCTIONS,
    observers: Sequence[SimObserver] = (),
    executable: Optional[ExecutableProgram] = None,
    engine: str = "auto",
) -> SimulationResult:
    """One-shot convenience wrapper around :class:`Simulator`."""
    return Simulator(
        config,
        program,
        collect_trace=collect_trace,
        max_instructions=max_instructions,
        observers=observers,
        executable=executable,
        engine=engine,
    ).run()
