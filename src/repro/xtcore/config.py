"""Processor configuration: base core options + custom-instruction extensions.

Mirrors the paper's target configuration: a T1040-class base core at
187 MHz with a 32-bit multiply option, 4-way 16 KB instruction and data
caches, a 32-bit system bus and a 64x32-bit generic register file —
extended per application with compiled TIE-substitute instructions.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from functools import cached_property
from typing import Iterable, Mapping, Optional, Sequence

from ..hwlib import ComponentInstance
from ..isa import InstructionSet, base_isa
from ..tie import TieImplementation, TieSpec, compile_extension

#: Default per-run instruction budget shared by the simulator, ``simulate``,
#: ``run_session`` and every CLI subcommand.  Defined here (the leaf config
#: module) so both ``repro.xtcore`` and ``repro.obs`` can import it without
#: creating an import cycle.
DEFAULT_MAX_INSTRUCTIONS = 5_000_000


@dataclasses.dataclass(frozen=True)
class CacheConfig:
    """Geometry and timing of one cache (I or D)."""

    size_bytes: int = 16 * 1024
    ways: int = 4
    line_bytes: int = 32
    miss_penalty: int = 12

    def __post_init__(self) -> None:
        if self.size_bytes <= 0 or self.ways <= 0 or self.line_bytes <= 0:
            raise ValueError("cache geometry values must be positive")
        if self.line_bytes & (self.line_bytes - 1):
            raise ValueError(f"line size {self.line_bytes} must be a power of two")
        if self.size_bytes % (self.ways * self.line_bytes):
            raise ValueError("cache size must be a multiple of ways x line size")
        sets = self.size_bytes // (self.ways * self.line_bytes)
        if sets & (sets - 1):
            raise ValueError(f"number of sets ({sets}) must be a power of two")
        if self.miss_penalty < 0:
            raise ValueError("miss penalty must be non-negative")

    @property
    def num_sets(self) -> int:
        return self.size_bytes // (self.ways * self.line_bytes)


@dataclasses.dataclass(frozen=True)
class TimingConfig:
    """Pipeline penalty/stall cycle counts of the five-stage base core."""

    branch_taken_penalty: int = 2
    interlock_stall: int = 1
    uncached_fetch_penalty: int = 10

    def __post_init__(self) -> None:
        if min(self.branch_taken_penalty, self.interlock_stall, self.uncached_fetch_penalty) < 0:
            raise ValueError("timing penalties must be non-negative")


@dataclasses.dataclass(frozen=True)
class ProcessorConfig:
    """One extensible-processor instance: base options + extensions.

    ``extensions`` holds *compiled* custom instructions; use
    :meth:`with_extensions` / :func:`build_processor` to go from raw
    :class:`~repro.tie.TieSpec` objects.
    """

    name: str = "xt1040"
    clock_mhz: float = 187.0
    num_registers: int = 64
    icache: CacheConfig = dataclasses.field(default_factory=CacheConfig)
    dcache: CacheConfig = dataclasses.field(default_factory=CacheConfig)
    timing: TimingConfig = dataclasses.field(default_factory=TimingConfig)
    extensions: tuple[TieImplementation, ...] = ()

    def __post_init__(self) -> None:
        if not 1 <= self.num_registers <= 64:
            raise ValueError("register file size must be 1..64")
        if self.clock_mhz <= 0:
            raise ValueError("clock must be positive")
        mnemonics = [impl.mnemonic for impl in self.extensions]
        if len(set(mnemonics)) != len(mnemonics):
            raise ValueError(f"duplicate custom mnemonics in {self.name}: {mnemonics}")

    @cached_property
    def isa(self) -> InstructionSet:
        """The full instruction set: base ISA + custom definitions."""
        isa = base_isa()
        if not self.extensions:
            return isa
        return isa.extend(
            f"{isa.name}+{self.name}",
            [impl.instruction for impl in self.extensions],
        )

    @cached_property
    def extension_index(self) -> Mapping[str, TieImplementation]:
        """Custom-instruction implementations keyed by mnemonic."""
        return {impl.mnemonic: impl for impl in self.extensions}

    def extension_for(self, mnemonic: str) -> Optional[TieImplementation]:
        return self.extension_index.get(mnemonic)

    @cached_property
    def custom_instances(self) -> tuple[ComponentInstance, ...]:
        """All custom-hardware instances, de-duplicated by name.

        State registers shared between instructions appear once; the TIE
        compiler guarantees equal-named instances are identical.
        """
        seen: dict[str, ComponentInstance] = {}
        for impl in self.extensions:
            for instance in impl.instances:
                existing = seen.get(instance.name)
                if existing is not None and existing != instance:
                    raise ValueError(
                        f"{self.name}: conflicting hardware instances named {instance.name!r}"
                    )
                seen[instance.name] = instance
        return tuple(seen.values())

    @cached_property
    def state_inits(self) -> Mapping[str, int]:
        """Initial values of all custom state registers."""
        inits: dict[str, int] = {}
        for impl in self.extensions:
            for name, state in impl.spec.states.items():
                inits[name] = state.init
        return inits

    def with_extensions(self, name: str, specs: Sequence[TieSpec]) -> "ProcessorConfig":
        """Return a new processor extended with compiled ``specs``."""
        return dataclasses.replace(
            self, name=name, extensions=tuple(compile_extension(list(specs)))
        )

    def fingerprint(self) -> str:
        """Stable content hash of everything that affects simulation + energy.

        Two configs with equal content — base-core options, cache/timing
        geometry and the full compiled-extension content (dataflow graphs,
        hardware instances, schedules, state registers) — fingerprint
        identically regardless of their ``name`` or object identity, in
        the same process or across processes and runs.  Use it to key
        caches of per-config derived artifacts (netlists, RTL estimators,
        design-space exploration scores).
        """
        return self._fingerprint

    @cached_property
    def _fingerprint(self) -> str:
        blob = json.dumps(
            self._fingerprint_payload(), sort_keys=True, separators=(",", ":")
        )
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()

    def _fingerprint_payload(self) -> dict:
        """Canonical JSON-able form of the config's energy-relevant content."""

        def cache_payload(cache: CacheConfig) -> list:
            return [cache.size_bytes, cache.ways, cache.line_bytes, cache.miss_penalty]

        return {
            "format": "repro-config-fingerprint/1",
            "clock_mhz": self.clock_mhz,
            "num_registers": self.num_registers,
            "icache": cache_payload(self.icache),
            "dcache": cache_payload(self.dcache),
            "timing": [
                self.timing.branch_taken_penalty,
                self.timing.interlock_stall,
                self.timing.uncached_fetch_penalty,
            ],
            "extensions": [_extension_payload(impl) for impl in self.extensions],
        }

    def describe(self) -> str:
        """One-paragraph human-readable summary."""
        lines = [
            f"processor {self.name}: {self.clock_mhz:g} MHz, "
            f"{self.num_registers}x32 GPR, "
            f"I$ {self.icache.size_bytes // 1024}KB/{self.icache.ways}-way, "
            f"D$ {self.dcache.size_bytes // 1024}KB/{self.dcache.ways}-way",
        ]
        for impl in self.extensions:
            lines.append(
                f"  custom {impl.mnemonic} ({impl.spec.fmt}, {impl.latency} cycle(s)): "
                f"{impl.spec.description or 'no description'}"
            )
        return "\n".join(lines)


def _extension_payload(impl: TieImplementation) -> dict:
    """JSON-able content of one compiled custom instruction.

    The spec's dataflow graph fully determines the instruction's semantics
    and the compiled hardware/schedule determines its energy behavior, so
    both go into the fingerprint; cosmetic fields (descriptions) do not.
    """
    spec = impl.spec
    nodes = []
    for node in spec.nodes:
        payload = node.payload
        if isinstance(payload, tuple):
            payload = list(payload)
        nodes.append(
            [
                node.nid,
                node.kind,
                node.width,
                node.op,
                node.category.name if node.category is not None else None,
                [inp.nid for inp in node.inputs],
                payload,
            ]
        )
    return {
        "mnemonic": spec.mnemonic,
        "fmt": spec.fmt,
        "nodes": nodes,
        "states": sorted(
            [state.name, state.width, state.init] for state in spec.states.values()
        ),
        "state_writes": [
            [state.name, node.nid] for state, node in spec.state_writes
        ],
        "result": spec.result_node.nid if spec.result_node is not None else None,
        "latency": impl.latency,
        "instances": sorted(
            [inst.name, inst.category.name, inst.width, inst.entries]
            for inst in impl.instances
        ),
        "active_cycles": sorted(
            [name, list(cycles)] for name, cycles in impl.active_cycles.items()
        ),
        "bus_tapped": sorted(impl.bus_tapped),
    }


def build_processor(
    name: str = "xt1040",
    specs: Iterable[TieSpec] = (),
    base: Optional[ProcessorConfig] = None,
) -> ProcessorConfig:
    """Create a processor config, compiling ``specs`` as its extension."""
    base_config = base if base is not None else ProcessorConfig()
    specs = list(specs)
    if not specs:
        return dataclasses.replace(base_config, name=name)
    return base_config.with_extensions(name, specs)
