"""Program compilation: lowering a :class:`Program` to dispatchable micro-ops.

The interpreter used to re-resolve everything per retired instruction —
semantics lookup, ``source_registers``/``dest_registers`` construction,
the branch/jump class-and-latency decision tree, the uncached-range scan
— and re-decode the whole program on every :class:`Simulator`
construction.  This module hoists all of that to **compile time**:

* :func:`compile_program` lowers a ``(ProcessorConfig, Program)`` pair
  into an :class:`ExecutableProgram` — a dense, index-addressed tuple of
  fused micro-op records with the semantics callable, operand register
  tuples, resolved-or-BRANCH instruction class, issue latencies for both
  control outcomes, uncached flag and fall-through successor index all
  pre-bound;
* :class:`CompilationCache` memoizes those lowerings across runs, keyed
  by ``(Program.digest(), ProcessorConfig.fingerprint())`` — content
  hashes, so equal-content programs/configs share one compilation no
  matter how many objects or processes spell them;
* :func:`describe_invalid_pc` turns a wild program counter into an
  actionable diagnostic (nearest preceding symbol, last retired address).

The dispatch loops that consume this IR live in :mod:`repro.xtcore.iss`.
"""

from __future__ import annotations

import dataclasses
import threading
from bisect import bisect_right
from collections import OrderedDict
from typing import TYPE_CHECKING, Optional

from ..isa import INSTRUCTION_BYTES, InstructionClass
from ..isa.bits import (
    byte_swap,
    count_leading_zeros,
    count_trailing_zeros,
    popcount,
    rotate_left,
    rotate_right,
    sign_extend,
)
from ..isa.classes import BASE_ENERGY_CLASSES
from ..isa.state import SparseMemory
from .errors import SimulationError

if TYPE_CHECKING:  # pragma: no cover
    from ..asm import Program
    from .config import ProcessorConfig

#: Field indices of one micro-op record (a plain tuple, unpacked by the
#: dispatch loops).  Kept flat and positional on purpose: attribute access
#: on a dataclass costs a dict probe per field per retire, tuple unpacking
#: is a single bytecode.
OP_SEM = 0  #: semantics callable
OP_INS = 1  #: the decoded :class:`Instruction`
OP_SRCS = 2  #: source-register tuple (pre-resolved)
OP_SRC0 = 3  #: first source register, or -1 (memory base / result fast path)
OP_IMM = 4  #: ``ins.imm or 0`` (memory-address offset)
OP_MEM = 5  #: True when the op is a LOAD or STORE
OP_CACHED = 6  #: True when fetched through the I-cache (not an uncached range)
OP_BRANCH = 7  #: True when the static class is BRANCH (outcome-resolved)
OP_LOAD_DESTS = 8  #: dest-register tuple when LOAD (interlock source), else ()
OP_FALL_IDX = 9  #: index of the fall-through successor, or -1
OP_ADDR = 10  #: byte address of the instruction
OP_MNEMONIC = 11  #: mnemonic string
OP_CLASS_UNTAKEN = 12  #: retire class when the pc is not redirected
OP_CLASS_TAKEN = 13  #: retire class when the pc is redirected
OP_ISSUE_UNTAKEN = 14  #: issue cycles, untaken outcome
OP_ISSUE_TAKEN = 15  #: issue cycles, taken outcome (jump penalty folded in)
OP_DEST0 = 16  #: first destination register, or -1
OP_CUSTOM_KIND = 17  #: 0 = base op, 1 = custom, 2 = custom accessing the GPR file
OP_HAS_SRCS = 18  #: bool(srcs) — drives base-bus-cycle attribution
OP_BASE_CLASS = 19  #: untaken class is one of the six base energy classes


@dataclasses.dataclass(frozen=True)
class ExecutableProgram:
    """A :class:`Program` lowered against one :class:`ProcessorConfig`.

    Index-addressed: ``ops[i]`` executes the instruction at ``addrs[i]``,
    and sequential fall-through is ``ops[i][OP_FALL_IDX]`` instead of a
    dict probe on the next byte address.  Immutable once built, so one
    instance is safely shared across runs, sessions and forked workers.
    """

    program_name: str
    config_name: str
    program_digest: str
    config_fingerprint: str
    entry: int
    ops: tuple[tuple, ...]
    addrs: tuple[int, ...]
    pc_to_index: dict[int, int]
    #: ``(addr, name)`` pairs sorted by address — diagnostics only.
    symbols_by_addr: tuple[tuple[int, str], ...]
    #: every source/dest register of every op is < num_registers, so the
    #: dispatch loops may read the register file without bounds checks.
    regs_in_range: bool = True

    def __len__(self) -> int:
        return len(self.ops)

    def index_of(self, pc: int) -> int:
        """Micro-op index for ``pc``, or -1 when no instruction lives there."""
        return self.pc_to_index.get(pc, -1)

    def nearest_symbol(self, pc: int) -> Optional[tuple[str, int]]:
        """``(name, offset)`` of the closest symbol at or before ``pc``."""
        table = self.symbols_by_addr
        pos = bisect_right(table, (pc, "￿")) - 1
        if pos < 0:
            return None
        addr, name = table[pos]
        return name, pc - addr

    def __repr__(self) -> str:
        return (
            f"ExecutableProgram({self.program_name} on {self.config_name}: "
            f"{len(self.ops)} ops, key {self.program_digest[:8]}/"
            f"{self.config_fingerprint[:8]})"
        )


# ---------------------------------------------------------------------------
# Compile-time semantics specialization
# ---------------------------------------------------------------------------
#
# The generic semantics callables go through ``ctx.get``/``ctx.set`` (a
# bounds check + method call per register touch), re-probe ``ins``
# attributes per retire, and call ``truncate``/``to_signed`` helpers.
# All of that is static once the instruction is known: register indices
# can be bounds-checked *at compile time* (skipping specialization when
# one is out of range, so the generic runtime error is preserved),
# immediates can be pre-masked, and loads/stores can take a single-page
# fast path through the sparse memory.  Each emitter below produces a
# closure that is observationally identical to the generic callable —
# same register/memory mutations, same return value — just with the
# per-retire overhead folded away.  The differential harness
# (tests/integration/test_dispatch_differential.py) pins that claim.
#
# Unspecialized mnemonics (TIE customs, divides, ``break``) fall back to
# ``definition.semantics`` unchanged.

_M = 0xFFFFFFFF
_SIGN_BIT = 0x80000000
_TWO32 = 0x100000000
_PAGE_BITS = SparseMemory.PAGE_BITS
_PAGE_SIZE = SparseMemory.PAGE_SIZE
_PAGE_MASK = _PAGE_SIZE - 1


def _regs_ok(num_regs: int, *regs: Optional[int]) -> bool:
    for reg in regs:
        if reg is None or reg < 0 or reg >= num_regs:
            return False
    return True


def _r3(fn):
    """rd <- fn(rs, rt) & M  (unsigned-operand R3 ops)."""

    def emit(ins, addr, num_regs):
        rd, rs, rt = ins.rd, ins.rs, ins.rt
        if not _regs_ok(num_regs, rd, rs, rt):
            return None

        def sem(state, _ins):
            regs = state.regs
            regs[rd] = fn(regs[rs], regs[rt]) & _M

        return sem

    return emit


def _r3_signed(fn):
    """rd <- fn(signed rs, signed rt) & M."""

    def emit(ins, addr, num_regs):
        rd, rs, rt = ins.rd, ins.rs, ins.rt
        if not _regs_ok(num_regs, rd, rs, rt):
            return None

        def sem(state, _ins):
            regs = state.regs
            a = regs[rs]
            b = regs[rt]
            if a & _SIGN_BIT:
                a -= _TWO32
            if b & _SIGN_BIT:
                b -= _TWO32
            regs[rd] = fn(a, b) & _M

        return sem

    return emit


def _r2(fn):
    """rd <- fn(rs) & M."""

    def emit(ins, addr, num_regs):
        rd, rs = ins.rd, ins.rs
        if not _regs_ok(num_regs, rd, rs):
            return None

        def sem(state, _ins):
            regs = state.regs
            regs[rd] = fn(regs[rs]) & _M

        return sem

    return emit


def _cond_move(test):
    """rd <- rs when test(rt-value) holds (MOVEQZ family)."""

    def emit(ins, addr, num_regs):
        rd, rs, rt = ins.rd, ins.rs, ins.rt
        if not _regs_ok(num_regs, rd, rs, rt):
            return None

        def sem(state, _ins):
            regs = state.regs
            if test(regs[rt]):
                regs[rd] = regs[rs]

        return sem

    return emit


def _imm_op(fold, fn):
    """rd <- fn(rs, fold(imm)) & M — immediate pre-masked at compile time."""

    def emit(ins, addr, num_regs):
        rd, rs = ins.rd, ins.rs
        if not _regs_ok(num_regs, rd, rs):
            return None
        k = fold(ins.imm)

        def sem(state, _ins):
            regs = state.regs
            regs[rd] = fn(regs[rs], k) & _M

        return sem

    return emit


def _load_emitter(size, signed):
    ext_bits = size * 8
    sign_bit = 1 << (ext_bits - 1)
    ext_mask = (_M >> ext_bits) << ext_bits  # high bits set on sign extension
    in_page_limit = _PAGE_SIZE - size

    def emit(ins, addr, num_regs):
        rt, rs = ins.rt, ins.rs
        if not _regs_ok(num_regs, rt, rs):
            return None
        imm = (ins.imm or 0) & _M

        def sem(state, _ins):
            regs = state.regs
            mem_addr = (regs[rs] + imm) & _M
            offset = mem_addr & _PAGE_MASK
            if offset <= in_page_limit:
                page = state.memory._pages.get(mem_addr >> _PAGE_BITS)
                value = (
                    0
                    if page is None
                    else int.from_bytes(page[offset : offset + size], "little")
                )
            else:  # straddles a page boundary: per-byte generic read
                value = state.memory.read(mem_addr, size)
            if signed and value & sign_bit:
                value |= ext_mask
            regs[rt] = value

        return sem

    return emit


def _store_emitter(size):
    in_page_limit = _PAGE_SIZE - size
    value_mask = (1 << (size * 8)) - 1

    def emit(ins, addr, num_regs):
        rt, rs = ins.rt, ins.rs
        if not _regs_ok(num_regs, rt, rs):
            return None
        imm = (ins.imm or 0) & _M

        def sem(state, _ins):
            regs = state.regs
            mem_addr = (regs[rs] + imm) & _M
            offset = mem_addr & _PAGE_MASK
            if offset <= in_page_limit:
                pages = state.memory._pages
                index = mem_addr >> _PAGE_BITS
                page = pages.get(index)
                if page is None:
                    page = bytearray(_PAGE_SIZE)
                    pages[index] = page
                page[offset : offset + size] = (regs[rt] & value_mask).to_bytes(
                    size, "little"
                )
            else:  # straddles a page boundary: per-byte generic write
                state.memory.write(mem_addr, regs[rt], size)

        return sem

    return emit


def _branch2(test):
    """Taken target (imm) when test(rs-value, rt-value) holds."""

    def emit(ins, addr, num_regs):
        rs, rt = ins.rs, ins.rt
        if not _regs_ok(num_regs, rs, rt):
            return None
        target = ins.imm

        def sem(state, _ins):
            regs = state.regs
            return target if test(regs[rs], regs[rt]) else None

        return sem

    return emit


def _branch2_signed(test):
    def emit(ins, addr, num_regs):
        rs, rt = ins.rs, ins.rt
        if not _regs_ok(num_regs, rs, rt):
            return None
        target = ins.imm

        def sem(state, _ins):
            regs = state.regs
            a = regs[rs]
            b = regs[rt]
            if a & _SIGN_BIT:
                a -= _TWO32
            if b & _SIGN_BIT:
                b -= _TWO32
            return target if test(a, b) else None

        return sem

    return emit


def _branch1(test):
    """Taken target when test(rs-value) holds (unsigned/sign-bit forms)."""

    def emit(ins, addr, num_regs):
        rs = ins.rs
        if not _regs_ok(num_regs, rs):
            return None
        target = ins.imm

        def sem(state, _ins):
            return target if test(state.regs[rs]) else None

        return sem

    return emit


def _branch_imm(test):
    """BI compares: rs against the signed immediate folded into ``rt``."""

    def emit(ins, addr, num_regs):
        rs = ins.rs
        if not _regs_ok(num_regs, rs):
            return None
        target = ins.imm
        b = ins.rt - _TWO32 if ins.rt & _SIGN_BIT else ins.rt

        def sem(state, _ins):
            a = state.regs[rs]
            if a & _SIGN_BIT:
                a -= _TWO32
            return target if test(a, b) else None

        return sem

    return emit


def _branch_bit(want_set):
    def emit(ins, addr, num_regs):
        rs = ins.rs
        if not _regs_ok(num_regs, rs):
            return None
        target = ins.imm
        shift = ins.rt & 31

        def sem(state, _ins):
            taken = ((state.regs[rs] >> shift) & 1) == want_set
            return target if taken else None

        return sem

    return emit


def _emit_movi(ins, addr, num_regs):
    rd = ins.rd
    if not _regs_ok(num_regs, rd):
        return None
    value = ins.imm & _M

    def sem(state, _ins):
        state.regs[rd] = value

    return sem


def _emit_movhi(ins, addr, num_regs):
    rd = ins.rd
    if not _regs_ok(num_regs, rd):
        return None
    value = ((ins.imm & 0x3FFFF) << 12) & _M

    def sem(state, _ins):
        state.regs[rd] = value

    return sem


def _emit_j(ins, addr, num_regs):
    target = ins.imm

    def sem(state, _ins):
        return target

    return sem


def _emit_jx(ins, addr, num_regs):
    rs = ins.rs
    if not _regs_ok(num_regs, rs):
        return None

    def sem(state, _ins):
        return state.regs[rs]

    return sem


def _emit_call(ins, addr, num_regs):
    # ``ctx.pc`` equals the instruction's own address when semantics run,
    # so the link value is a compile-time constant.
    target = ins.imm
    link = (addr + INSTRUCTION_BYTES) & _M

    def sem(state, _ins):
        state.regs[0] = link
        return target

    return sem


def _emit_callx(ins, addr, num_regs):
    rs = ins.rs
    if not _regs_ok(num_regs, rs):
        return None
    link = (addr + INSTRUCTION_BYTES) & _M

    def sem(state, _ins):
        target = state.regs[rs]  # read before the link write (rs may be a0)
        state.regs[0] = link
        return target

    return sem


def _emit_ret(ins, addr, num_regs):
    def sem(state, _ins):
        return state.regs[0]

    return sem


def _emit_nop(ins, addr, num_regs):
    def sem(state, _ins):
        return None

    return sem


def _emit_halt(ins, addr, num_regs):
    def sem(state, _ins):
        state.halted = True

    return sem


def _emit_mulh(signed):
    def emit(ins, addr, num_regs):
        rd, rs, rt = ins.rd, ins.rs, ins.rt
        if not _regs_ok(num_regs, rd, rs, rt):
            return None

        def sem(state, _ins):
            regs = state.regs
            a = regs[rs]
            b = regs[rt]
            if signed:
                if a & _SIGN_BIT:
                    a -= _TWO32
                if b & _SIGN_BIT:
                    b -= _TWO32
            regs[rd] = ((a * b) >> 32) & _M

        return sem

    return emit


def _emit_abs(ins, addr, num_regs):
    rd, rs = ins.rd, ins.rs
    if not _regs_ok(num_regs, rd, rs):
        return None

    def sem(state, _ins):
        regs = state.regs
        a = regs[rs]
        if a & _SIGN_BIT:
            a = _TWO32 - a  # |signed(a)| for the negative half, mod 2^32
        regs[rd] = a & _M

    return sem


def _emit_slti(ins, addr, num_regs):
    rd, rs = ins.rd, ins.rs
    if not _regs_ok(num_regs, rd, rs):
        return None
    k = ins.imm

    def sem(state, _ins):
        a = state.regs[rs]
        if a & _SIGN_BIT:
            a -= _TWO32
        state.regs[rd] = 1 if a < k else 0

    return sem


def _emit_sltiu(ins, addr, num_regs):
    rd, rs = ins.rd, ins.rs
    if not _regs_ok(num_regs, rd, rs):
        return None
    k = ins.imm & _M

    def sem(state, _ins):
        state.regs[rd] = 1 if state.regs[rs] < k else 0

    return sem


#: mnemonic -> emitter(ins, addr, num_regs) -> specialized callable or None.
_EMITTERS = {
    # R3 unsigned arithmetic/logic
    "add": _r3(lambda a, b: a + b),
    "sub": _r3(lambda a, b: a - b),
    "and": _r3(lambda a, b: a & b),
    "or": _r3(lambda a, b: a | b),
    "xor": _r3(lambda a, b: a ^ b),
    "nor": _r3(lambda a, b: ~(a | b)),
    "andn": _r3(lambda a, b: a & ~b),
    "orn": _r3(lambda a, b: a | ~b),
    "xnor": _r3(lambda a, b: ~(a ^ b)),
    "addx2": _r3(lambda a, b: (a << 1) + b),
    "addx4": _r3(lambda a, b: (a << 2) + b),
    "addx8": _r3(lambda a, b: (a << 3) + b),
    "subx2": _r3(lambda a, b: (a << 1) - b),
    "subx4": _r3(lambda a, b: (a << 2) - b),
    "sltu": _r3(lambda a, b: 1 if a < b else 0),
    "minu": _r3(min),
    "maxu": _r3(max),
    "mull": _r3(lambda a, b: a * b),
    # R3 signed
    "slt": _r3_signed(lambda a, b: 1 if a < b else 0),
    "min": _r3_signed(min),
    "max": _r3_signed(max),
    "mulh": _emit_mulh(signed=True),
    "mulhu": _emit_mulh(signed=False),
    # register shifts
    "sll": _r3(lambda a, b: a << (b & 31)),
    "srl": _r3(lambda a, b: a >> (b & 31)),
    "sra": _r3(lambda a, b: (a - _TWO32 if a & _SIGN_BIT else a) >> (b & 31)),
    "rotl": _r3(lambda a, b: rotate_left(a, b & 31)),
    "rotr": _r3(lambda a, b: rotate_right(a, b & 31)),
    # R2 unary
    "mov": _r2(lambda a: a),
    "neg": _r2(lambda a: -a),
    "not": _r2(lambda a: ~a),
    "abs": _emit_abs,
    "sext8": _r2(lambda a: sign_extend(a, 8)),
    "sext16": _r2(lambda a: sign_extend(a, 16)),
    "zext8": _r2(lambda a: a & 0xFF),
    "zext16": _r2(lambda a: a & 0xFFFF),
    "clz": _r2(count_leading_zeros),
    "ctz": _r2(count_trailing_zeros),
    "popc": _r2(popcount),
    "bswap": _r2(byte_swap),
    # conditional moves (rt tested as signed; sign bit is all that matters)
    "moveqz": _cond_move(lambda t: t == 0),
    "movnez": _cond_move(lambda t: t != 0),
    "movltz": _cond_move(lambda t: t & _SIGN_BIT != 0),
    "movgez": _cond_move(lambda t: t & _SIGN_BIT == 0),
    # immediates
    "addi": _imm_op(lambda i: i & _M, lambda a, k: a + k),
    "addmi": _imm_op(lambda i: (i & _M) << 8, lambda a, k: a + k),
    "andi": _imm_op(lambda i: i & 0xFFF, lambda a, k: a & k),
    "ori": _imm_op(lambda i: i & 0xFFF, lambda a, k: a | k),
    "xori": _imm_op(lambda i: i & 0xFFF, lambda a, k: a ^ k),
    "slti": _emit_slti,
    "sltiu": _emit_sltiu,
    "slli": _imm_op(lambda i: i & 31, lambda a, k: a << k),
    "srli": _imm_op(lambda i: i & 31, lambda a, k: a >> k),
    "srai": _imm_op(
        lambda i: i & 31, lambda a, k: (a - _TWO32 if a & _SIGN_BIT else a) >> k
    ),
    "roli": _imm_op(lambda i: i & 31, rotate_left),
    "rori": _imm_op(lambda i: i & 31, rotate_right),
    "movi": _emit_movi,
    "movhi": _emit_movhi,
    # memory
    "l32i": _load_emitter(4, signed=False),
    "l16ui": _load_emitter(2, signed=False),
    "l16si": _load_emitter(2, signed=True),
    "l8ui": _load_emitter(1, signed=False),
    "l8si": _load_emitter(1, signed=True),
    "s32i": _store_emitter(4),
    "s16i": _store_emitter(2),
    "s8i": _store_emitter(1),
    # jumps / calls
    "j": _emit_j,
    "jx": _emit_jx,
    "call": _emit_call,
    "callx": _emit_callx,
    "ret": _emit_ret,
    # branches
    "beq": _branch2(lambda a, b: a == b),
    "bne": _branch2(lambda a, b: a != b),
    "blt": _branch2_signed(lambda a, b: a < b),
    "bge": _branch2_signed(lambda a, b: a >= b),
    "bltu": _branch2(lambda a, b: a < b),
    "bgeu": _branch2(lambda a, b: a >= b),
    "beqz": _branch1(lambda a: a == 0),
    "bnez": _branch1(lambda a: a != 0),
    "bltz": _branch1(lambda a: a & _SIGN_BIT != 0),
    "bgez": _branch1(lambda a: a & _SIGN_BIT == 0),
    "beqi": _branch_imm(lambda a, b: a == b),
    "bnei": _branch_imm(lambda a, b: a != b),
    "blti": _branch_imm(lambda a, b: a < b),
    "bgei": _branch_imm(lambda a, b: a >= b),
    "bbs": _branch_bit(1),
    "bbc": _branch_bit(0),
    # system ("break" stays generic: it raises with runtime context)
    "nop": _emit_nop,
    "halt": _emit_halt,
}


def _specialize(definition, ins, addr: int, num_registers: int):
    """A specialized semantics closure for this op, or None to use the generic."""
    if definition.iclass is InstructionClass.CUSTOM:
        return None
    emitter = _EMITTERS.get(definition.mnemonic)
    if emitter is None:
        return None
    return emitter(ins, addr, num_registers)


def compile_program(config: "ProcessorConfig", program: "Program") -> ExecutableProgram:
    """Lower ``program`` against ``config`` into an :class:`ExecutableProgram`.

    Raises :class:`SimulationError` when the program uses a mnemonic that
    is not in the processor's ISA (same contract the per-run decoder had).
    """
    isa = config.isa
    penalty = config.timing.branch_taken_penalty
    gpr_mnemonics = frozenset(
        mnemonic
        for mnemonic, impl in config.extension_index.items()
        if impl.accesses_gpr
    )

    addrs = tuple(sorted(program.instructions))
    pc_to_index = {addr: index for index, addr in enumerate(addrs)}
    ops: list[tuple] = []
    num_registers = config.num_registers
    regs_in_range = True
    for addr in addrs:
        ins = program.instructions[addr]
        try:
            definition = isa.lookup(ins.mnemonic)
        except KeyError as exc:
            raise SimulationError(
                f"{program.name}: instruction {ins.mnemonic!r} at {addr:#x} "
                f"is not in processor {config.name}'s ISA"
            ) from exc
        srcs = definition.source_registers(ins)
        dests = definition.dest_registers(ins)
        if regs_in_range and any(
            reg < 0 or reg >= num_registers for reg in srcs + dests
        ):
            regs_in_range = False
        iclass = definition.iclass
        class_untaken, class_taken, issue_untaken, issue_taken = (
            definition.resolve_timing(penalty)
        )
        if iclass is InstructionClass.CUSTOM:
            custom_kind = 2 if ins.mnemonic in gpr_mnemonics else 1
        else:
            custom_kind = 0
        semantics = (
            _specialize(definition, ins, addr, num_registers)
            or definition.semantics
        )
        ops.append(
            (
                semantics,
                ins,
                srcs,
                srcs[0] if srcs else -1,
                ins.imm or 0,
                iclass in (InstructionClass.LOAD, InstructionClass.STORE),
                not program.is_uncached(addr),
                iclass is InstructionClass.BRANCH,
                dests if iclass is InstructionClass.LOAD else (),
                pc_to_index.get(addr + INSTRUCTION_BYTES, -1),
                addr,
                ins.mnemonic,
                class_untaken,
                class_taken,
                issue_untaken,
                issue_taken,
                dests[0] if dests else -1,
                custom_kind,
                bool(srcs),
                class_untaken in BASE_ENERGY_CLASSES,
            )
        )

    return ExecutableProgram(
        program_name=program.name,
        config_name=config.name,
        program_digest=program.digest(),
        config_fingerprint=config.fingerprint(),
        entry=program.entry,
        ops=tuple(ops),
        addrs=addrs,
        pc_to_index=pc_to_index,
        symbols_by_addr=tuple(
            sorted((addr, name) for name, addr in program.symbols.items())
        ),
        regs_in_range=regs_in_range,
    )


def describe_invalid_pc(
    program_name: str,
    pc: int,
    executable: Optional[ExecutableProgram] = None,
    last_retired_addr: Optional[int] = None,
) -> str:
    """Diagnostic for a pc with no instruction: where did the jump come from?

    Keeps the historical ``pc=... is not a valid instruction address``
    phrasing (matched by callers and tests) and appends the nearest
    preceding label/symbol plus the address of the last retired
    instruction, so wild jumps in user programs are debuggable.
    """
    message = f"{program_name}: pc={pc:#010x} is not a valid instruction address"
    context: list[str] = []
    if executable is not None:
        near = executable.nearest_symbol(pc)
        if near is not None:
            name, offset = near
            where = f"{name!r}" if offset == 0 else f"{name!r}+{offset:#x}"
            context.append(f"nearest preceding symbol: {where}")
        else:
            context.append("before the first symbol")
    if last_retired_addr is not None:
        context.append(f"last retired instruction at {last_retired_addr:#010x}")
    else:
        context.append("no instructions retired")
    return f"{message} ({'; '.join(context)})"


class CompilationCache:
    """LRU cache of :class:`ExecutableProgram` lowerings across runs.

    Keys are ``(program digest, config fingerprint)`` — pure content, so
    a re-assembled identical program or a re-built identical config hits.
    The counters are part of the public contract: design-space exploration
    asserts exactly one compilation per (program, config-content) pair via
    :attr:`compilations`.

    Thread-safe: the estimation service's worker pool resolves lowerings
    from concurrent threads, so every mutation of the LRU order and the
    counters happens under one lock.  ``get_or_compile`` holds the lock
    across the compilation itself — that serializes first-time lowerings
    of *different* pairs, but guarantees the one-compilation-per-pair
    invariant under races (and compilation is a one-time cost by design).
    """

    def __init__(self, maxsize: int = 256) -> None:
        if maxsize < 1:
            raise ValueError("compilation cache needs room for at least one entry")
        self.maxsize = maxsize
        self._entries: "OrderedDict[tuple[str, str], ExecutableProgram]" = OrderedDict()
        self._lock = threading.RLock()
        self.hits = 0
        self.misses = 0
        self.compilations = 0
        self.evictions = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def get_or_compile(
        self, config: "ProcessorConfig", program: "Program"
    ) -> ExecutableProgram:
        """Return the cached lowering for the pair, compiling on first use."""
        key = (program.digest(), config.fingerprint())
        with self._lock:
            cached = self._entries.get(key)
            if cached is not None:
                self._entries.move_to_end(key)
                self.hits += 1
                return cached
            self.misses += 1
            executable = compile_program(config, program)  # may raise; not cached
            self.compilations += 1
            self._entries[key] = executable
            if len(self._entries) > self.maxsize:
                self._entries.popitem(last=False)
                self.evictions += 1
            return executable

    def put(self, executable: ExecutableProgram) -> None:
        """Insert a pre-built lowering (e.g. compiled in a parent process)."""
        key = (executable.program_digest, executable.config_fingerprint)
        with self._lock:
            self._entries[key] = executable
            self._entries.move_to_end(key)
            if len(self._entries) > self.maxsize:
                self._entries.popitem(last=False)
                self.evictions += 1

    def clear(self) -> None:
        """Drop all entries and reset every counter."""
        with self._lock:
            self._entries.clear()
            self.hits = 0
            self.misses = 0
            self.compilations = 0
            self.evictions = 0

    def info(self) -> dict[str, int]:
        with self._lock:
            return {
                "entries": len(self._entries),
                "maxsize": self.maxsize,
                "hits": self.hits,
                "misses": self.misses,
                "compilations": self.compilations,
                "evictions": self.evictions,
            }

    def __repr__(self) -> str:
        info = self.info()
        return (
            f"CompilationCache({info['entries']}/{self.maxsize} entries, "
            f"{info['hits']} hits / {info['misses']} misses, "
            f"{info['compilations']} compilations)"
        )


#: Process-wide cache used by :class:`repro.xtcore.Simulator` (and thereby
#: ``run_session``).  Forked worker processes inherit the parent's entries
#: copy-on-write, which is how the DSE pool compiles once pre-fork.
_GLOBAL_CACHE = CompilationCache()


def compilation_cache() -> CompilationCache:
    """The process-wide compilation cache (counters included)."""
    return _GLOBAL_CACHE
