"""Program compilation: lowering a :class:`Program` to dispatchable micro-ops.

The interpreter used to re-resolve everything per retired instruction —
semantics lookup, ``source_registers``/``dest_registers`` construction,
the branch/jump class-and-latency decision tree, the uncached-range scan
— and re-decode the whole program on every :class:`Simulator`
construction.  This module hoists all of that to **compile time**:

* :func:`compile_program` lowers a ``(ProcessorConfig, Program)`` pair
  into an :class:`ExecutableProgram` — a dense, index-addressed tuple of
  fused micro-op records with the semantics callable, operand register
  tuples, resolved-or-BRANCH instruction class, issue latencies for both
  control outcomes, uncached flag and fall-through successor index all
  pre-bound;
* :class:`CompilationCache` memoizes those lowerings across runs, keyed
  by ``(Program.digest(), ProcessorConfig.fingerprint())`` — content
  hashes, so equal-content programs/configs share one compilation no
  matter how many objects or processes spell them;
* :func:`describe_invalid_pc` turns a wild program counter into an
  actionable diagnostic (nearest preceding symbol, last retired address).

The dispatch loops that consume this IR live in :mod:`repro.xtcore.iss`.
"""

from __future__ import annotations

import dataclasses
import threading
from bisect import bisect_right
from collections import OrderedDict
from typing import TYPE_CHECKING, Optional

from ..isa import INSTRUCTION_BYTES, InstructionClass
from ..isa.bits import (
    byte_swap,
    count_leading_zeros,
    count_trailing_zeros,
    popcount,
    rotate_left,
    rotate_right,
    sign_extend,
)
from ..isa.classes import BASE_ENERGY_CLASSES
from ..isa.state import SparseMemory
from .errors import SimulationError

if TYPE_CHECKING:  # pragma: no cover
    from ..asm import Program
    from .config import ProcessorConfig

#: Field indices of one micro-op record (a plain tuple, unpacked by the
#: dispatch loops).  Kept flat and positional on purpose: attribute access
#: on a dataclass costs a dict probe per field per retire, tuple unpacking
#: is a single bytecode.
OP_SEM = 0  #: semantics callable
OP_INS = 1  #: the decoded :class:`Instruction`
OP_SRCS = 2  #: source-register tuple (pre-resolved)
OP_SRC0 = 3  #: first source register, or -1 (memory base / result fast path)
OP_IMM = 4  #: ``ins.imm or 0`` (memory-address offset)
OP_MEM = 5  #: True when the op is a LOAD or STORE
OP_CACHED = 6  #: True when fetched through the I-cache (not an uncached range)
OP_BRANCH = 7  #: True when the static class is BRANCH (outcome-resolved)
OP_LOAD_DESTS = 8  #: dest-register tuple when LOAD (interlock source), else ()
OP_FALL_IDX = 9  #: index of the fall-through successor, or -1
OP_ADDR = 10  #: byte address of the instruction
OP_MNEMONIC = 11  #: mnemonic string
OP_CLASS_UNTAKEN = 12  #: retire class when the pc is not redirected
OP_CLASS_TAKEN = 13  #: retire class when the pc is redirected
OP_ISSUE_UNTAKEN = 14  #: issue cycles, untaken outcome
OP_ISSUE_TAKEN = 15  #: issue cycles, taken outcome (jump penalty folded in)
OP_DEST0 = 16  #: first destination register, or -1
OP_CUSTOM_KIND = 17  #: 0 = base op, 1 = custom, 2 = custom accessing the GPR file
OP_HAS_SRCS = 18  #: bool(srcs) — drives base-bus-cycle attribution
OP_BASE_CLASS = 19  #: untaken class is one of the six base energy classes
OP_INTERIOR = 20  #: eligible for fusion into a superop block interior

#: Generic (unspecialized) mnemonics proven safe as superop interiors:
#: their semantics never read ``ctx.pc``, never redirect control, never
#: halt, and touch only registers through the bounds-checked accessors —
#: so fusing them into a block is observationally identical to per-op
#: dispatch (a fault simply propagates out of the block).
_SAFE_GENERIC_INTERIOR = frozenset({"quos", "quou", "rems", "remu"})

#: Classes whose ops may be block interiors.  JUMP/BRANCH redirect the
#: pc and SYSTEM covers ``halt``/``break`` (run terminators) — those end
#: a block.  CUSTOM is handled separately: TIE-compiled semantics carry a
#: ``tie_straightline`` marker proving they are pure dataflow.
_INTERIOR_CLASSES = (
    InstructionClass.ARITH,
    InstructionClass.LOAD,
    InstructionClass.STORE,
)


@dataclasses.dataclass(frozen=True)
class ExecutableProgram:
    """A :class:`Program` lowered against one :class:`ProcessorConfig`.

    Index-addressed: ``ops[i]`` executes the instruction at ``addrs[i]``,
    and sequential fall-through is ``ops[i][OP_FALL_IDX]`` instead of a
    dict probe on the next byte address.  Immutable once built, so one
    instance is safely shared across runs, sessions and forked workers.
    """

    program_name: str
    config_name: str
    program_digest: str
    config_fingerprint: str
    entry: int
    ops: tuple[tuple, ...]
    addrs: tuple[int, ...]
    pc_to_index: dict[int, int]
    #: ``(addr, name)`` pairs sorted by address — diagnostics only.
    symbols_by_addr: tuple[tuple[int, str], ...]
    #: every source/dest register of every op is < num_registers, so the
    #: dispatch loops may read the register file without bounds checks.
    regs_in_range: bool = True

    def __len__(self) -> int:
        return len(self.ops)

    def index_of(self, pc: int) -> int:
        """Micro-op index for ``pc``, or -1 when no instruction lives there."""
        return self.pc_to_index.get(pc, -1)

    def nearest_symbol(self, pc: int) -> Optional[tuple[str, int]]:
        """``(name, offset)`` of the closest symbol at or before ``pc``."""
        table = self.symbols_by_addr
        pos = bisect_right(table, (pc, "￿")) - 1
        if pos < 0:
            return None
        addr, name = table[pos]
        return name, pc - addr

    def __repr__(self) -> str:
        return (
            f"ExecutableProgram({self.program_name} on {self.config_name}: "
            f"{len(self.ops)} ops, key {self.program_digest[:8]}/"
            f"{self.config_fingerprint[:8]})"
        )


# ---------------------------------------------------------------------------
# Compile-time semantics specialization
# ---------------------------------------------------------------------------
#
# The generic semantics callables go through ``ctx.get``/``ctx.set`` (a
# bounds check + method call per register touch), re-probe ``ins``
# attributes per retire, and call ``truncate``/``to_signed`` helpers.
# All of that is static once the instruction is known: register indices
# can be bounds-checked *at compile time* (skipping specialization when
# one is out of range, so the generic runtime error is preserved),
# immediates can be pre-masked, and loads/stores can take a single-page
# fast path through the sparse memory.  Each emitter below produces a
# closure that is observationally identical to the generic callable —
# same register/memory mutations, same return value — just with the
# per-retire overhead folded away.  The differential harness
# (tests/integration/test_dispatch_differential.py) pins that claim.
#
# Unspecialized mnemonics (TIE customs, divides, ``break``) fall back to
# ``definition.semantics`` unchanged.

_M = 0xFFFFFFFF
_SIGN_BIT = 0x80000000
_TWO32 = 0x100000000
_PAGE_BITS = SparseMemory.PAGE_BITS
_PAGE_SIZE = SparseMemory.PAGE_SIZE
_PAGE_MASK = _PAGE_SIZE - 1


def _regs_ok(num_regs: int, *regs: Optional[int]) -> bool:
    for reg in regs:
        if reg is None or reg < 0 or reg >= num_regs:
            return False
    return True


def _r3(fn):
    """rd <- fn(rs, rt) & M  (unsigned-operand R3 ops)."""

    def emit(ins, addr, num_regs):
        rd, rs, rt = ins.rd, ins.rs, ins.rt
        if not _regs_ok(num_regs, rd, rs, rt):
            return None

        def sem(state, _ins):
            regs = state.regs
            regs[rd] = fn(regs[rs], regs[rt]) & _M

        return sem

    return emit


def _r3_signed(fn):
    """rd <- fn(signed rs, signed rt) & M."""

    def emit(ins, addr, num_regs):
        rd, rs, rt = ins.rd, ins.rs, ins.rt
        if not _regs_ok(num_regs, rd, rs, rt):
            return None

        def sem(state, _ins):
            regs = state.regs
            a = regs[rs]
            b = regs[rt]
            if a & _SIGN_BIT:
                a -= _TWO32
            if b & _SIGN_BIT:
                b -= _TWO32
            regs[rd] = fn(a, b) & _M

        return sem

    return emit


def _r2(fn):
    """rd <- fn(rs) & M."""

    def emit(ins, addr, num_regs):
        rd, rs = ins.rd, ins.rs
        if not _regs_ok(num_regs, rd, rs):
            return None

        def sem(state, _ins):
            regs = state.regs
            regs[rd] = fn(regs[rs]) & _M

        return sem

    return emit


def _cond_move(test):
    """rd <- rs when test(rt-value) holds (MOVEQZ family)."""

    def emit(ins, addr, num_regs):
        rd, rs, rt = ins.rd, ins.rs, ins.rt
        if not _regs_ok(num_regs, rd, rs, rt):
            return None

        def sem(state, _ins):
            regs = state.regs
            if test(regs[rt]):
                regs[rd] = regs[rs]

        return sem

    return emit


def _imm_op(fold, fn):
    """rd <- fn(rs, fold(imm)) & M — immediate pre-masked at compile time."""

    def emit(ins, addr, num_regs):
        rd, rs = ins.rd, ins.rs
        if not _regs_ok(num_regs, rd, rs):
            return None
        k = fold(ins.imm)

        def sem(state, _ins):
            regs = state.regs
            regs[rd] = fn(regs[rs], k) & _M

        return sem

    return emit


def _load_emitter(size, signed):
    ext_bits = size * 8
    sign_bit = 1 << (ext_bits - 1)
    ext_mask = (_M >> ext_bits) << ext_bits  # high bits set on sign extension
    in_page_limit = _PAGE_SIZE - size

    def emit(ins, addr, num_regs):
        rt, rs = ins.rt, ins.rs
        if not _regs_ok(num_regs, rt, rs):
            return None
        imm = (ins.imm or 0) & _M

        def sem(state, _ins):
            regs = state.regs
            mem_addr = (regs[rs] + imm) & _M
            offset = mem_addr & _PAGE_MASK
            if offset <= in_page_limit:
                page = state.memory._pages.get(mem_addr >> _PAGE_BITS)
                value = (
                    0
                    if page is None
                    else int.from_bytes(page[offset : offset + size], "little")
                )
            else:  # straddles a page boundary: per-byte generic read
                value = state.memory.read(mem_addr, size)
            if signed and value & sign_bit:
                value |= ext_mask
            regs[rt] = value

        return sem

    return emit


def _store_emitter(size):
    in_page_limit = _PAGE_SIZE - size
    value_mask = (1 << (size * 8)) - 1

    def emit(ins, addr, num_regs):
        rt, rs = ins.rt, ins.rs
        if not _regs_ok(num_regs, rt, rs):
            return None
        imm = (ins.imm or 0) & _M

        def sem(state, _ins):
            regs = state.regs
            mem_addr = (regs[rs] + imm) & _M
            offset = mem_addr & _PAGE_MASK
            if offset <= in_page_limit:
                pages = state.memory._pages
                index = mem_addr >> _PAGE_BITS
                page = pages.get(index)
                if page is None:
                    page = bytearray(_PAGE_SIZE)
                    pages[index] = page
                page[offset : offset + size] = (regs[rt] & value_mask).to_bytes(
                    size, "little"
                )
            else:  # straddles a page boundary: per-byte generic write
                state.memory.write(mem_addr, regs[rt], size)

        return sem

    return emit


def _branch2(test):
    """Taken target (imm) when test(rs-value, rt-value) holds."""

    def emit(ins, addr, num_regs):
        rs, rt = ins.rs, ins.rt
        if not _regs_ok(num_regs, rs, rt):
            return None
        target = ins.imm

        def sem(state, _ins):
            regs = state.regs
            return target if test(regs[rs], regs[rt]) else None

        return sem

    return emit


def _branch2_signed(test):
    def emit(ins, addr, num_regs):
        rs, rt = ins.rs, ins.rt
        if not _regs_ok(num_regs, rs, rt):
            return None
        target = ins.imm

        def sem(state, _ins):
            regs = state.regs
            a = regs[rs]
            b = regs[rt]
            if a & _SIGN_BIT:
                a -= _TWO32
            if b & _SIGN_BIT:
                b -= _TWO32
            return target if test(a, b) else None

        return sem

    return emit


def _branch1(test):
    """Taken target when test(rs-value) holds (unsigned/sign-bit forms)."""

    def emit(ins, addr, num_regs):
        rs = ins.rs
        if not _regs_ok(num_regs, rs):
            return None
        target = ins.imm

        def sem(state, _ins):
            return target if test(state.regs[rs]) else None

        return sem

    return emit


def _branch_imm(test):
    """BI compares: rs against the signed immediate folded into ``rt``."""

    def emit(ins, addr, num_regs):
        rs = ins.rs
        if not _regs_ok(num_regs, rs):
            return None
        target = ins.imm
        b = ins.rt - _TWO32 if ins.rt & _SIGN_BIT else ins.rt

        def sem(state, _ins):
            a = state.regs[rs]
            if a & _SIGN_BIT:
                a -= _TWO32
            return target if test(a, b) else None

        return sem

    return emit


def _branch_bit(want_set):
    def emit(ins, addr, num_regs):
        rs = ins.rs
        if not _regs_ok(num_regs, rs):
            return None
        target = ins.imm
        shift = ins.rt & 31

        def sem(state, _ins):
            taken = ((state.regs[rs] >> shift) & 1) == want_set
            return target if taken else None

        return sem

    return emit


def _emit_movi(ins, addr, num_regs):
    rd = ins.rd
    if not _regs_ok(num_regs, rd):
        return None
    value = ins.imm & _M

    def sem(state, _ins):
        state.regs[rd] = value

    return sem


def _emit_movhi(ins, addr, num_regs):
    rd = ins.rd
    if not _regs_ok(num_regs, rd):
        return None
    value = ((ins.imm & 0x3FFFF) << 12) & _M

    def sem(state, _ins):
        state.regs[rd] = value

    return sem


def _emit_j(ins, addr, num_regs):
    target = ins.imm

    def sem(state, _ins):
        return target

    return sem


def _emit_jx(ins, addr, num_regs):
    rs = ins.rs
    if not _regs_ok(num_regs, rs):
        return None

    def sem(state, _ins):
        return state.regs[rs]

    return sem


def _emit_call(ins, addr, num_regs):
    # ``ctx.pc`` equals the instruction's own address when semantics run,
    # so the link value is a compile-time constant.
    target = ins.imm
    link = (addr + INSTRUCTION_BYTES) & _M

    def sem(state, _ins):
        state.regs[0] = link
        return target

    return sem


def _emit_callx(ins, addr, num_regs):
    rs = ins.rs
    if not _regs_ok(num_regs, rs):
        return None
    link = (addr + INSTRUCTION_BYTES) & _M

    def sem(state, _ins):
        target = state.regs[rs]  # read before the link write (rs may be a0)
        state.regs[0] = link
        return target

    return sem


def _emit_ret(ins, addr, num_regs):
    def sem(state, _ins):
        return state.regs[0]

    return sem


def _emit_nop(ins, addr, num_regs):
    def sem(state, _ins):
        return None

    return sem


def _emit_halt(ins, addr, num_regs):
    def sem(state, _ins):
        state.halted = True

    return sem


def _emit_mulh(signed):
    def emit(ins, addr, num_regs):
        rd, rs, rt = ins.rd, ins.rs, ins.rt
        if not _regs_ok(num_regs, rd, rs, rt):
            return None

        def sem(state, _ins):
            regs = state.regs
            a = regs[rs]
            b = regs[rt]
            if signed:
                if a & _SIGN_BIT:
                    a -= _TWO32
                if b & _SIGN_BIT:
                    b -= _TWO32
            regs[rd] = ((a * b) >> 32) & _M

        return sem

    return emit


def _emit_abs(ins, addr, num_regs):
    rd, rs = ins.rd, ins.rs
    if not _regs_ok(num_regs, rd, rs):
        return None

    def sem(state, _ins):
        regs = state.regs
        a = regs[rs]
        if a & _SIGN_BIT:
            a = _TWO32 - a  # |signed(a)| for the negative half, mod 2^32
        regs[rd] = a & _M

    return sem


def _emit_slti(ins, addr, num_regs):
    rd, rs = ins.rd, ins.rs
    if not _regs_ok(num_regs, rd, rs):
        return None
    k = ins.imm

    def sem(state, _ins):
        a = state.regs[rs]
        if a & _SIGN_BIT:
            a -= _TWO32
        state.regs[rd] = 1 if a < k else 0

    return sem


def _emit_sltiu(ins, addr, num_regs):
    rd, rs = ins.rd, ins.rs
    if not _regs_ok(num_regs, rd, rs):
        return None
    k = ins.imm & _M

    def sem(state, _ins):
        state.regs[rd] = 1 if state.regs[rs] < k else 0

    return sem


#: mnemonic -> emitter(ins, addr, num_regs) -> specialized callable or None.
_EMITTERS = {
    # R3 unsigned arithmetic/logic
    "add": _r3(lambda a, b: a + b),
    "sub": _r3(lambda a, b: a - b),
    "and": _r3(lambda a, b: a & b),
    "or": _r3(lambda a, b: a | b),
    "xor": _r3(lambda a, b: a ^ b),
    "nor": _r3(lambda a, b: ~(a | b)),
    "andn": _r3(lambda a, b: a & ~b),
    "orn": _r3(lambda a, b: a | ~b),
    "xnor": _r3(lambda a, b: ~(a ^ b)),
    "addx2": _r3(lambda a, b: (a << 1) + b),
    "addx4": _r3(lambda a, b: (a << 2) + b),
    "addx8": _r3(lambda a, b: (a << 3) + b),
    "subx2": _r3(lambda a, b: (a << 1) - b),
    "subx4": _r3(lambda a, b: (a << 2) - b),
    "sltu": _r3(lambda a, b: 1 if a < b else 0),
    "minu": _r3(min),
    "maxu": _r3(max),
    "mull": _r3(lambda a, b: a * b),
    # R3 signed
    "slt": _r3_signed(lambda a, b: 1 if a < b else 0),
    "min": _r3_signed(min),
    "max": _r3_signed(max),
    "mulh": _emit_mulh(signed=True),
    "mulhu": _emit_mulh(signed=False),
    # register shifts
    "sll": _r3(lambda a, b: a << (b & 31)),
    "srl": _r3(lambda a, b: a >> (b & 31)),
    "sra": _r3(lambda a, b: (a - _TWO32 if a & _SIGN_BIT else a) >> (b & 31)),
    "rotl": _r3(lambda a, b: rotate_left(a, b & 31)),
    "rotr": _r3(lambda a, b: rotate_right(a, b & 31)),
    # R2 unary
    "mov": _r2(lambda a: a),
    "neg": _r2(lambda a: -a),
    "not": _r2(lambda a: ~a),
    "abs": _emit_abs,
    "sext8": _r2(lambda a: sign_extend(a, 8)),
    "sext16": _r2(lambda a: sign_extend(a, 16)),
    "zext8": _r2(lambda a: a & 0xFF),
    "zext16": _r2(lambda a: a & 0xFFFF),
    "clz": _r2(count_leading_zeros),
    "ctz": _r2(count_trailing_zeros),
    "popc": _r2(popcount),
    "bswap": _r2(byte_swap),
    # conditional moves (rt tested as signed; sign bit is all that matters)
    "moveqz": _cond_move(lambda t: t == 0),
    "movnez": _cond_move(lambda t: t != 0),
    "movltz": _cond_move(lambda t: t & _SIGN_BIT != 0),
    "movgez": _cond_move(lambda t: t & _SIGN_BIT == 0),
    # immediates
    "addi": _imm_op(lambda i: i & _M, lambda a, k: a + k),
    "addmi": _imm_op(lambda i: (i & _M) << 8, lambda a, k: a + k),
    "andi": _imm_op(lambda i: i & 0xFFF, lambda a, k: a & k),
    "ori": _imm_op(lambda i: i & 0xFFF, lambda a, k: a | k),
    "xori": _imm_op(lambda i: i & 0xFFF, lambda a, k: a ^ k),
    "slti": _emit_slti,
    "sltiu": _emit_sltiu,
    "slli": _imm_op(lambda i: i & 31, lambda a, k: a << k),
    "srli": _imm_op(lambda i: i & 31, lambda a, k: a >> k),
    "srai": _imm_op(
        lambda i: i & 31, lambda a, k: (a - _TWO32 if a & _SIGN_BIT else a) >> k
    ),
    "roli": _imm_op(lambda i: i & 31, rotate_left),
    "rori": _imm_op(lambda i: i & 31, rotate_right),
    "movi": _emit_movi,
    "movhi": _emit_movhi,
    # memory
    "l32i": _load_emitter(4, signed=False),
    "l16ui": _load_emitter(2, signed=False),
    "l16si": _load_emitter(2, signed=True),
    "l8ui": _load_emitter(1, signed=False),
    "l8si": _load_emitter(1, signed=True),
    "s32i": _store_emitter(4),
    "s16i": _store_emitter(2),
    "s8i": _store_emitter(1),
    # jumps / calls
    "j": _emit_j,
    "jx": _emit_jx,
    "call": _emit_call,
    "callx": _emit_callx,
    "ret": _emit_ret,
    # branches
    "beq": _branch2(lambda a, b: a == b),
    "bne": _branch2(lambda a, b: a != b),
    "blt": _branch2_signed(lambda a, b: a < b),
    "bge": _branch2_signed(lambda a, b: a >= b),
    "bltu": _branch2(lambda a, b: a < b),
    "bgeu": _branch2(lambda a, b: a >= b),
    "beqz": _branch1(lambda a: a == 0),
    "bnez": _branch1(lambda a: a != 0),
    "bltz": _branch1(lambda a: a & _SIGN_BIT != 0),
    "bgez": _branch1(lambda a: a & _SIGN_BIT == 0),
    "beqi": _branch_imm(lambda a, b: a == b),
    "bnei": _branch_imm(lambda a, b: a != b),
    "blti": _branch_imm(lambda a, b: a < b),
    "bgei": _branch_imm(lambda a, b: a >= b),
    "bbs": _branch_bit(1),
    "bbc": _branch_bit(0),
    # system ("break" stays generic: it raises with runtime context)
    "nop": _emit_nop,
    "halt": _emit_halt,
}


def _specialize(definition, ins, addr: int, num_registers: int):
    """A specialized semantics closure for this op, or None to use the generic."""
    if definition.iclass is InstructionClass.CUSTOM:
        return None
    emitter = _EMITTERS.get(definition.mnemonic)
    if emitter is None:
        return None
    return emitter(ins, addr, num_registers)


def compile_program(config: "ProcessorConfig", program: "Program") -> ExecutableProgram:
    """Lower ``program`` against ``config`` into an :class:`ExecutableProgram`.

    Raises :class:`SimulationError` when the program uses a mnemonic that
    is not in the processor's ISA (same contract the per-run decoder had).
    """
    isa = config.isa
    penalty = config.timing.branch_taken_penalty
    gpr_mnemonics = frozenset(
        mnemonic
        for mnemonic, impl in config.extension_index.items()
        if impl.accesses_gpr
    )

    addrs = tuple(sorted(program.instructions))
    pc_to_index = {addr: index for index, addr in enumerate(addrs)}
    ops: list[tuple] = []
    num_registers = config.num_registers
    regs_in_range = True
    for addr in addrs:
        ins = program.instructions[addr]
        try:
            definition = isa.lookup(ins.mnemonic)
        except KeyError as exc:
            raise SimulationError(
                f"{program.name}: instruction {ins.mnemonic!r} at {addr:#x} "
                f"is not in processor {config.name}'s ISA"
            ) from exc
        srcs = definition.source_registers(ins)
        dests = definition.dest_registers(ins)
        if regs_in_range and any(
            reg < 0 or reg >= num_registers for reg in srcs + dests
        ):
            regs_in_range = False
        iclass = definition.iclass
        class_untaken, class_taken, issue_untaken, issue_taken = (
            definition.resolve_timing(penalty)
        )
        if iclass is InstructionClass.CUSTOM:
            custom_kind = 2 if ins.mnemonic in gpr_mnemonics else 1
        else:
            custom_kind = 0
        specialized = _specialize(definition, ins, addr, num_registers)
        semantics = specialized or definition.semantics
        # Interior ops are provably straight-line: they never redirect the
        # pc, never halt, and never read ``ctx.pc``, so a whole run of them
        # can execute as one fused superop call (see compile_superops).
        # Custom instructions qualify when the TIE compiler marked their
        # semantics straight-line (pure dataflow by construction).
        interior = (
            iclass in _INTERIOR_CLASSES
            and (specialized is not None or ins.mnemonic in _SAFE_GENERIC_INTERIOR)
        ) or (
            iclass is InstructionClass.CUSTOM
            and getattr(definition.semantics, "tie_straightline", False)
        )
        ops.append(
            (
                semantics,
                ins,
                srcs,
                srcs[0] if srcs else -1,
                ins.imm or 0,
                iclass in (InstructionClass.LOAD, InstructionClass.STORE),
                not program.is_uncached(addr),
                iclass is InstructionClass.BRANCH,
                dests if iclass is InstructionClass.LOAD else (),
                pc_to_index.get(addr + INSTRUCTION_BYTES, -1),
                addr,
                ins.mnemonic,
                class_untaken,
                class_taken,
                issue_untaken,
                issue_taken,
                dests[0] if dests else -1,
                custom_kind,
                bool(srcs),
                class_untaken in BASE_ENERGY_CLASSES,
                interior,
            )
        )

    return ExecutableProgram(
        program_name=program.name,
        config_name=config.name,
        program_digest=program.digest(),
        config_fingerprint=config.fingerprint(),
        entry=program.entry,
        ops=tuple(ops),
        addrs=addrs,
        pc_to_index=pc_to_index,
        symbols_by_addr=tuple(
            sorted((addr, name) for name, addr in program.symbols.items())
        ),
        regs_in_range=regs_in_range,
    )


# ---------------------------------------------------------------------------
# Superop lowering: fusing basic blocks into single-dispatch closures
# ---------------------------------------------------------------------------
#
# The compiled fast path still pays one Python dispatch iteration per
# retired instruction: budget check, op-tuple load, I-cache memo,
# interlock scan, pc bookkeeping, successor resolution.  For a run of
# *interior* ops (see OP_INTERIOR) every one of those outcomes is a
# compile-time constant: the run retires exactly ``length`` instructions,
# touches a fixed I-line sequence, stalls a fixed number of internal
# interlocks and falls through to a fixed successor.  compile_superops
# folds each maximal interior run into one block descriptor so the
# dispatch loop in :mod:`repro.xtcore.iss` pays the bookkeeping once per
# *block* instead of once per instruction — and anything that could make
# the folding observable (faults, budget expiry mid-block, observers)
# side-exits to the per-op path instead.

#: Field indices of one superop block descriptor (flat tuple, same
#: rationale as the OP_* layout above).
BLK_ID = 0  #: dense block index (keys the per-block execution counter)
BLK_START = 1  #: op index of the first instruction in the block
BLK_LEN = 2  #: number of instructions retired per block execution
BLK_STEPS = 3  #: fused execution steps (see compile_superops)
BLK_IFETCH = 4  #: ``(line, addr)`` per distinct I-line touched, in order
BLK_FIRST_SRCS = 5  #: source regs of the first op (incoming-interlock check)
BLK_INTERLOCKS = 6  #: load-use interlocks internal to the block (static)
BLK_LOAD_DESTS = 7  #: load dests of the last op (outgoing-interlock state)
BLK_NEXT_IDX = 8  #: op index the block falls through to, or -1
BLK_LAST_ADDR = 9  #: byte address of the last instruction (diagnostics)
BLK_FN = 10  #: fused closure ``fn(state, ic, dc, icache_access, dcache_access)``


@dataclasses.dataclass(frozen=True)
class SuperopProgram:
    """Block-level lowering of an :class:`ExecutableProgram`.

    ``block_at[i]`` is the block descriptor whose first op is ``ops[i]``
    (or None when op ``i`` does not lead a block), so the dispatch loop
    can probe block entry with one tuple index per control transfer.
    Derived purely from the executable plus the config's cache line
    sizes, all already pinned by the digest/fingerprint pair — immutable
    and safely shared across runs and forked workers.
    """

    program_digest: str
    config_fingerprint: str
    blocks: tuple[tuple, ...]
    block_at: tuple[Optional[tuple], ...]

    def __len__(self) -> int:
        return len(self.blocks)

    @property
    def fused_ops(self) -> int:
        """Static op count covered by blocks (fusion coverage metric)."""
        return sum(block[BLK_LEN] for block in self.blocks)

    def __repr__(self) -> str:
        return (
            f"SuperopProgram({len(self.blocks)} blocks over "
            f"{self.fused_ops}/{len(self.block_at)} ops, key "
            f"{self.program_digest[:8]}/{self.config_fingerprint[:8]})"
        )


# Inline source templates for the superop block codegen.  Each template
# reproduces its specializer closure's body exactly — same masks, same
# signedness windows, same single-page memory fast path — so a fused
# block is observationally identical to calling the per-op closures in
# sequence (pinned by tests/integration/test_dispatch_differential.py).
# Ops with no template (divides, TIE customs) stay as bound calls.

_FUSE_R3 = {
    "add": "regs[{s}] + regs[{t}]",
    "sub": "regs[{s}] - regs[{t}]",
    "and": "regs[{s}] & regs[{t}]",
    "or": "regs[{s}] | regs[{t}]",
    "xor": "regs[{s}] ^ regs[{t}]",
    "nor": "~(regs[{s}] | regs[{t}])",
    "andn": "regs[{s}] & ~regs[{t}]",
    "orn": "regs[{s}] | ~regs[{t}]",
    "xnor": "~(regs[{s}] ^ regs[{t}])",
    "addx2": "(regs[{s}] << 1) + regs[{t}]",
    "addx4": "(regs[{s}] << 2) + regs[{t}]",
    "addx8": "(regs[{s}] << 3) + regs[{t}]",
    "subx2": "(regs[{s}] << 1) - regs[{t}]",
    "subx4": "(regs[{s}] << 2) - regs[{t}]",
    "sltu": "1 if regs[{s}] < regs[{t}] else 0",
    "minu": "min(regs[{s}], regs[{t}])",
    "maxu": "max(regs[{s}], regs[{t}])",
    "mull": "regs[{s}] * regs[{t}]",
    "sll": "regs[{s}] << (regs[{t}] & 31)",
    "srl": "regs[{s}] >> (regs[{t}] & 31)",
    "rotl": "_rotl(regs[{s}], regs[{t}] & 31)",
    "rotr": "_rotr(regs[{s}], regs[{t}] & 31)",
}

_FUSE_R2 = {
    "mov": "regs[{s}]",
    "neg": "-regs[{s}]",
    "not": "~regs[{s}]",
    "zext8": "regs[{s}] & 255",
    "zext16": "regs[{s}] & 65535",
    "clz": "_clz(regs[{s}])",
    "ctz": "_ctz(regs[{s}])",
    "popc": "_popc(regs[{s}])",
    "bswap": "_bswap(regs[{s}])",
}

#: mnemonic -> (immediate fold, expression template) — folds match _EMITTERS.
_FUSE_IMM = {
    "addi": (lambda i: i & _M, "regs[{s}] + {k}"),
    "addmi": (lambda i: (i & _M) << 8, "regs[{s}] + {k}"),
    "andi": (lambda i: i & 0xFFF, "regs[{s}] & {k}"),
    "ori": (lambda i: i & 0xFFF, "regs[{s}] | {k}"),
    "xori": (lambda i: i & 0xFFF, "regs[{s}] ^ {k}"),
    "slli": (lambda i: i & 31, "regs[{s}] << {k}"),
    "srli": (lambda i: i & 31, "regs[{s}] >> {k}"),
    "roli": (lambda i: i & 31, "_rotl(regs[{s}], {k})"),
    "rori": (lambda i: i & 31, "_rotr(regs[{s}], {k})"),
}

#: signed compare/minmax forms: mnemonic -> result template over a/b temps.
_FUSE_SIGNED_R3 = {
    "slt": "1 if a{u} < b{u} else 0",
    "min": "min(a{u}, b{u}) & 4294967295",
    "max": "max(a{u}, b{u}) & 4294967295",
}

_FUSE_COND_MOVE = {
    "moveqz": "regs[{t}] == 0",
    "movnez": "regs[{t}] != 0",
    "movltz": "regs[{t}] & 2147483648",
    "movgez": "not regs[{t}] & 2147483648",
}

#: mnemonic -> (size, sign_extend, is_store) for the memory templates.
_FUSE_MEM = {
    "l32i": (4, False, False),
    "l16ui": (2, False, False),
    "l16si": (2, True, False),
    "l8ui": (1, False, False),
    "l8si": (1, True, False),
    "s32i": (4, False, True),
    "s16i": (2, False, True),
    "s8i": (1, False, True),
}


def _fuse_op_lines(op: tuple, dshift: int) -> Optional[list]:
    """Source statements executing this interior op inline, or None.

    ``None`` means "no inline form" — the block codegen then binds the
    op's (possibly specialized) semantics callable and emits a call.
    Memory templates append the D-cache replay with the line shift
    ``dshift`` folded in, mirroring the per-op dispatch order: address
    from pre-op registers, semantics, then the cache model.
    """
    mnemonic = op[OP_MNEMONIC]
    ins = op[OP_INS]
    u = op[OP_ADDR]  # unique per op: byte addresses never collide
    d, s, t = ins.rd, ins.rs, ins.rt

    mem = _FUSE_MEM.get(mnemonic)
    if mem is not None:
        size, signed, is_store = mem
        k = (ins.imm or 0) & _M
        limit = _PAGE_SIZE - size
        out = [
            f"a{u} = (regs[{s}] + {k}) & 4294967295",
            f"o{u} = a{u} & {_PAGE_MASK}",
        ]
        if is_store:
            value_mask = (1 << (size * 8)) - 1
            out += [
                f"if o{u} <= {limit}:",
                f"    p{u} = pages.get(a{u} >> {_PAGE_BITS})",
                f"    if p{u} is None:",
                f"        p{u} = bytearray({_PAGE_SIZE})",
                f"        pages[a{u} >> {_PAGE_BITS}] = p{u}",
                f"    p{u}[o{u}:o{u}+{size}] = "
                f"(regs[{t}] & {value_mask}).to_bytes({size}, 'little')",
                "else:",
                f"    state.memory.write(a{u}, regs[{t}], {size})",
            ]
        else:
            out += [
                f"if o{u} <= {limit}:",
                f"    p{u} = pages.get(a{u} >> {_PAGE_BITS})",
                f"    v{u} = 0 if p{u} is None else "
                f"int.from_bytes(p{u}[o{u}:o{u}+{size}], 'little')",
                "else:",
                f"    v{u} = state.memory.read(a{u}, {size})",
            ]
            if signed:
                sign_bit = 1 << (size * 8 - 1)
                ext_mask = (_M >> (size * 8)) << (size * 8)
                out.append(f"if v{u} & {sign_bit}: v{u} |= {ext_mask}")
            out.append(f"regs[{t}] = v{u}")
        out += [
            f"l{u} = a{u} >> {dshift}",
            f"if l{u} != dc[0]:",
            f"    dc[0] = l{u}",
            f"    if not dcache_access(a{u}):",
            "        dc[1] += 1",
        ]
        return out

    expr = _FUSE_R3.get(mnemonic)
    if expr is not None:
        return [f"regs[{d}] = ({expr.format(s=s, t=t)}) & 4294967295"]
    expr = _FUSE_R2.get(mnemonic)
    if expr is not None:
        return [f"regs[{d}] = ({expr.format(s=s)}) & 4294967295"]
    imm_form = _FUSE_IMM.get(mnemonic)
    if imm_form is not None:
        fold, expr = imm_form
        return [f"regs[{d}] = ({expr.format(s=s, k=fold(ins.imm))}) & 4294967295"]
    signed_form = _FUSE_SIGNED_R3.get(mnemonic)
    if signed_form is not None:
        return [
            f"a{u} = regs[{s}]",
            f"b{u} = regs[{t}]",
            f"if a{u} & 2147483648: a{u} -= 4294967296",
            f"if b{u} & 2147483648: b{u} -= 4294967296",
            f"regs[{d}] = {signed_form.format(u=u)}",
        ]
    cond = _FUSE_COND_MOVE.get(mnemonic)
    if cond is not None:
        return [f"if {cond.format(t=t)}: regs[{d}] = regs[{s}]"]
    if mnemonic == "sra":
        return [
            f"a{u} = regs[{s}]",
            f"if a{u} & 2147483648: a{u} -= 4294967296",
            f"regs[{d}] = (a{u} >> (regs[{t}] & 31)) & 4294967295",
        ]
    if mnemonic == "srai":
        return [
            f"a{u} = regs[{s}]",
            f"if a{u} & 2147483648: a{u} -= 4294967296",
            f"regs[{d}] = (a{u} >> {ins.imm & 31}) & 4294967295",
        ]
    if mnemonic in ("mulh", "mulhu"):
        out = [f"a{u} = regs[{s}]", f"b{u} = regs[{t}]"]
        if mnemonic == "mulh":
            out += [
                f"if a{u} & 2147483648: a{u} -= 4294967296",
                f"if b{u} & 2147483648: b{u} -= 4294967296",
            ]
        out.append(f"regs[{d}] = ((a{u} * b{u}) >> 32) & 4294967295")
        return out
    if mnemonic == "abs":
        return [
            f"a{u} = regs[{s}]",
            f"if a{u} & 2147483648: a{u} = 4294967296 - a{u}",
            f"regs[{d}] = a{u} & 4294967295",
        ]
    if mnemonic in ("sext8", "sext16"):
        bits = 8 if mnemonic == "sext8" else 16
        value_mask = (1 << bits) - 1
        sign_bit = 1 << (bits - 1)
        ext_mask = (_M >> bits) << bits
        return [
            f"v{u} = regs[{s}] & {value_mask}",
            f"regs[{d}] = (v{u} | {ext_mask}) if v{u} & {sign_bit} else v{u}",
        ]
    if mnemonic == "slti":
        return [
            f"a{u} = regs[{s}]",
            f"if a{u} & 2147483648: a{u} -= 4294967296",
            f"regs[{d}] = 1 if a{u} < {ins.imm} else 0",
        ]
    if mnemonic == "sltiu":
        return [f"regs[{d}] = 1 if regs[{s}] < {ins.imm & _M} else 0"]
    if mnemonic == "movi":
        return [f"regs[{d}] = {ins.imm & _M}"]
    if mnemonic == "movhi":
        return [f"regs[{d}] = {((ins.imm & 0x3FFFF) << 12) & _M}"]
    return None


def _fuse_block(
    ops: tuple, start: int, end: int, ifetch: list, dshift: int
):
    """Generate one fused closure executing ops ``start..end`` inline.

    Signature: ``fn(state, ic, dc, icache_access, dcache_access)`` where
    ``ic``/``dc`` are two-slot lists ``[last_line, misses]`` shared with
    the dispatch loop's per-op side-exit path, so the same-line memo
    carries seamlessly across fused and per-op execution.
    """
    namespace = {
        "_rotl": rotate_left,
        "_rotr": rotate_right,
        "_clz": count_leading_zeros,
        "_ctz": count_trailing_zeros,
        "_popc": popcount,
        "_bswap": byte_swap,
    }
    body = ["    regs = state.regs"]
    if any(ops[i][OP_MEM] for i in range(start, end + 1)):
        body.append("    pages = state.memory._pages")
    for line, fetch_addr in ifetch:
        body += [
            f"    if {line} != ic[0]:",
            f"        ic[0] = {line}",
            f"        if not icache_access({fetch_addr}):",
            "            ic[1] += 1",
        ]
    for i in range(start, end + 1):
        op = ops[i]
        lines = _fuse_op_lines(op, dshift)
        if lines is None:
            namespace[f"_c{i}"] = op[OP_SEM]
            namespace[f"_i{i}"] = op[OP_INS]
            lines = [f"_c{i}(state, _i{i})"]
        body += ["    " + stmt for stmt in lines]
    source = (
        "def _superop(state, ic, dc, icache_access, dcache_access):\n"
        + "\n".join(body)
    )
    exec(
        compile(source, f"<superop@{ops[start][OP_ADDR]:#x}>", "exec"),
        namespace,
    )
    return namespace["_superop"]


def compile_superops(
    executable: ExecutableProgram, config: "ProcessorConfig"
) -> SuperopProgram:
    """Fuse the executable's maximal interior runs into superop blocks.

    Block leaders are the static control-flow join points: the program
    entry, every static branch/jump/call target, and the op after every
    non-interior op.  Dynamic targets (``jx``/``callx``/``ret``) that
    land mid-block are handled by the dispatch loop, which walks per-op
    until it reaches the next leader.

    Each block folds, at compile time:

    * **steps** — the semantics calls, with straight ALU runs packed into
      one ``(0, ((sem, ins), ...))`` step and each memory op kept as a
      ``(1, sem, ins, base_reg, imm)`` step so the dispatch loop can read
      the base register before semantics clobber it and replay the
      D-cache access after, exactly as the per-op path does;
    * **ifetch** — the I-line transition sequence at this config's line
      granularity: intra-block fetch addresses are strictly increasing,
      so consecutive same-line fetches collapse exactly like the per-op
      same-line memo (uncached ops never touch the I-cache and are
      excluded; their fetch penalty is count-derived at aggregation);
    * **interlocks** — load-use stalls between ops inside the block,
      a static property of adjacent (load dests, source regs) pairs.
    """
    ops = executable.ops
    pc_map = executable.pc_to_index
    n = len(ops)
    ishift = config.icache.line_bytes.bit_length() - 1
    dshift = config.dcache.line_bytes.bit_length() - 1

    leaders = set()
    entry_idx = pc_map.get(executable.entry, -1)
    if entry_idx >= 0:
        leaders.add(entry_idx)
    if n:
        leaders.add(0)
    for i, op in enumerate(ops):
        if not op[OP_INTERIOR] and i + 1 < n:
            leaders.add(i + 1)
        if op[OP_BRANCH] or op[OP_MNEMONIC] in ("j", "call"):
            target_idx = pc_map.get(op[OP_INS].imm, -1)
            if target_idx >= 0:
                leaders.add(target_idx)

    blocks: list[tuple] = []
    block_at: list[Optional[tuple]] = [None] * n
    for start in sorted(leaders):
        if not ops[start][OP_INTERIOR]:
            continue
        end = start
        while True:
            fall = ops[end][OP_FALL_IDX]
            if fall < 0 or fall in leaders or not ops[fall][OP_INTERIOR]:
                break
            end = fall

        steps: list[tuple] = []
        run: list[tuple] = []
        interlocks = 0
        ifetch: list[tuple[int, int]] = []
        last_line = -1
        for i in range(start, end + 1):
            op = ops[i]
            if op[OP_CACHED]:
                line = op[OP_ADDR] >> ishift
                if line != last_line:
                    last_line = line
                    ifetch.append((line, op[OP_ADDR]))
            if i > start and ops[i - 1][OP_LOAD_DESTS]:
                dests = ops[i - 1][OP_LOAD_DESTS]
                if any(src in dests for src in op[OP_SRCS]):
                    interlocks += 1
            if op[OP_MEM]:
                if run:
                    steps.append((0, tuple(run)))
                    run = []
                steps.append((1, op[OP_SEM], op[OP_INS], op[OP_SRC0], op[OP_IMM]))
            else:
                run.append((op[OP_SEM], op[OP_INS]))
        if run:
            steps.append((0, tuple(run)))

        block = (
            len(blocks),
            start,
            end - start + 1,
            tuple(steps),
            tuple(ifetch),
            ops[start][OP_SRCS],
            interlocks,
            ops[end][OP_LOAD_DESTS],
            ops[end][OP_FALL_IDX],
            ops[end][OP_ADDR],
            _fuse_block(ops, start, end, ifetch, dshift),
        )
        blocks.append(block)
        block_at[start] = block

    return SuperopProgram(
        program_digest=executable.program_digest,
        config_fingerprint=executable.config_fingerprint,
        blocks=tuple(blocks),
        block_at=tuple(block_at),
    )


def describe_invalid_pc(
    program_name: str,
    pc: int,
    executable: Optional[ExecutableProgram] = None,
    last_retired_addr: Optional[int] = None,
) -> str:
    """Diagnostic for a pc with no instruction: where did the jump come from?

    Keeps the historical ``pc=... is not a valid instruction address``
    phrasing (matched by callers and tests) and appends the nearest
    preceding label/symbol plus the address of the last retired
    instruction, so wild jumps in user programs are debuggable.
    """
    message = f"{program_name}: pc={pc:#010x} is not a valid instruction address"
    context: list[str] = []
    if executable is not None:
        near = executable.nearest_symbol(pc)
        if near is not None:
            name, offset = near
            where = f"{name!r}" if offset == 0 else f"{name!r}+{offset:#x}"
            context.append(f"nearest preceding symbol: {where}")
        else:
            context.append("before the first symbol")
    if last_retired_addr is not None:
        context.append(f"last retired instruction at {last_retired_addr:#010x}")
    else:
        context.append("no instructions retired")
    return f"{message} ({'; '.join(context)})"


class CompilationCache:
    """LRU cache of :class:`ExecutableProgram` lowerings across runs.

    Keys are ``(program digest, config fingerprint)`` — pure content, so
    a re-assembled identical program or a re-built identical config hits.
    The counters are part of the public contract: design-space exploration
    asserts exactly one compilation per (program, config-content) pair via
    :attr:`compilations`.

    Thread-safe: the estimation service's worker pool resolves lowerings
    from concurrent threads, so every mutation of the LRU order and the
    counters happens under one lock.  ``get_or_compile`` holds the lock
    across the compilation itself — that serializes first-time lowerings
    of *different* pairs, but guarantees the one-compilation-per-pair
    invariant under races (and compilation is a one-time cost by design).
    """

    def __init__(self, maxsize: int = 256) -> None:
        if maxsize < 1:
            raise ValueError("compilation cache needs room for at least one entry")
        self.maxsize = maxsize
        self._entries: "OrderedDict[tuple[str, str], ExecutableProgram]" = OrderedDict()
        #: superop artifact tier: same key space, independent LRU order —
        #: a pair that only ever runs per-op never pays block lowering.
        self._superops: "OrderedDict[tuple[str, str], SuperopProgram]" = OrderedDict()
        self._lock = threading.RLock()
        self.hits = 0
        self.misses = 0
        self.compilations = 0
        self.evictions = 0
        self.superop_hits = 0
        self.superop_misses = 0
        self.superop_compilations = 0
        self.superop_evictions = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def get_or_compile(
        self, config: "ProcessorConfig", program: "Program"
    ) -> ExecutableProgram:
        """Return the cached lowering for the pair, compiling on first use."""
        key = (program.digest(), config.fingerprint())
        with self._lock:
            cached = self._entries.get(key)
            if cached is not None:
                self._entries.move_to_end(key)
                self.hits += 1
                return cached
            self.misses += 1
            executable = compile_program(config, program)  # may raise; not cached
            self.compilations += 1
            self._entries[key] = executable
            if len(self._entries) > self.maxsize:
                self._entries.popitem(last=False)
                self.evictions += 1
            return executable

    def get_or_compile_superops(
        self,
        config: "ProcessorConfig",
        program: "Program",
        executable: Optional[ExecutableProgram] = None,
    ) -> SuperopProgram:
        """Return the cached block lowering for the pair, fusing on first use.

        Pass ``executable`` when the per-op lowering is already in hand to
        skip the ops-tier probe; it must carry the same digest/fingerprint
        pair (the :class:`~repro.xtcore.iss.Simulator` constructor enforces
        that before calling here).
        """
        if executable is None:
            executable = self.get_or_compile(config, program)
        key = (executable.program_digest, executable.config_fingerprint)
        with self._lock:
            cached = self._superops.get(key)
            if cached is not None:
                self._superops.move_to_end(key)
                self.superop_hits += 1
                return cached
            self.superop_misses += 1
            superops = compile_superops(executable, config)
            self.superop_compilations += 1
            self._superops[key] = superops
            if len(self._superops) > self.maxsize:
                self._superops.popitem(last=False)
                self.superop_evictions += 1
            return superops

    def put(self, executable: ExecutableProgram) -> None:
        """Insert a pre-built lowering (e.g. compiled in a parent process)."""
        key = (executable.program_digest, executable.config_fingerprint)
        with self._lock:
            self._entries[key] = executable
            self._entries.move_to_end(key)
            if len(self._entries) > self.maxsize:
                self._entries.popitem(last=False)
                self.evictions += 1

    def clear(self) -> None:
        """Drop all entries and reset every counter."""
        with self._lock:
            self._entries.clear()
            self._superops.clear()
            self.hits = 0
            self.misses = 0
            self.compilations = 0
            self.evictions = 0
            self.superop_hits = 0
            self.superop_misses = 0
            self.superop_compilations = 0
            self.superop_evictions = 0

    def info(self) -> dict:
        """Counters, overall and per artifact tier.

        The top-level keys keep their historical meaning (the per-op
        ``ops`` tier, which every simulation resolves through); the
        ``tiers`` breakdown adds the superop block-artifact tier.
        """
        with self._lock:
            return {
                "entries": len(self._entries),
                "maxsize": self.maxsize,
                "hits": self.hits,
                "misses": self.misses,
                "compilations": self.compilations,
                "evictions": self.evictions,
                "tiers": {
                    "ops": {
                        "entries": len(self._entries),
                        "hits": self.hits,
                        "misses": self.misses,
                        "compilations": self.compilations,
                        "evictions": self.evictions,
                    },
                    "superop": {
                        "entries": len(self._superops),
                        "hits": self.superop_hits,
                        "misses": self.superop_misses,
                        "compilations": self.superop_compilations,
                        "evictions": self.superop_evictions,
                    },
                },
            }

    def __repr__(self) -> str:
        info = self.info()
        return (
            f"CompilationCache({info['entries']}/{self.maxsize} entries, "
            f"{info['hits']} hits / {info['misses']} misses, "
            f"{info['compilations']} compilations)"
        )


#: Process-wide cache used by :class:`repro.xtcore.Simulator` (and thereby
#: ``run_session``).  Forked worker processes inherit the parent's entries
#: copy-on-write, which is how the DSE pool compiles once pre-fork.
_GLOBAL_CACHE = CompilationCache()


def compilation_cache() -> CompilationCache:
    """The process-wide compilation cache (counters included)."""
    return _GLOBAL_CACHE
