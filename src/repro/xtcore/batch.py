"""Batched multi-config simulation: one program, N processors, one pass.

The dominant DSE/serving workload evaluates the *same* program across
many :class:`~repro.xtcore.config.ProcessorConfig` variants that differ
only in cache geometry, pipeline penalties, clock or energy-relevant
hardware — never in what the instructions *do*.  Within such a
**semantic partition** (equal :func:`semantic_fingerprint`) the dynamic
execution trajectory is config-independent: the same ops retire in the
same order with the same branch outcomes, memory addresses and
load-use interlocks, because register/memory contents only depend on
instruction semantics, the register-file size and custom-state init
values.  Timing and energy differ purely through the passive cache
models and the per-class cycle attribution.

:func:`run_batch` exploits that split:

1. **Record** — execute the program once (a fast-path dispatch loop with
   no cache models), capturing the per-op retire/taken counters, the
   interlock count, and the I-fetch / D-access address streams deduped
   at the *finest* line granularity present in the batch.  A coarser
   line cannot change where its own same-line transitions fall: equal
   fine lines imply equal coarse lines, so every coarse-grain transition
   is preserved in the fine-grain stream.
2. **Replay** — per config, push the recorded streams through that
   config's own :class:`~repro.xtcore.caches.SetAssociativeCache` pair
   (with the same same-line memo the dispatch loops use) to obtain its
   miss counts.
3. **Aggregate** — fold the shared counters plus the per-config miss
   counts through :func:`repro.xtcore.iss._aggregate_stats` against each
   config's own compiled lowering (issue latencies and branch penalties
   are per-config), yielding stats bitwise identical to running that
   config alone.

The returned results share one final :class:`~repro.isa.MachineState`
(the trajectory is shared, so the architectural outcome is too).
"""

from __future__ import annotations

import hashlib
import json
from typing import TYPE_CHECKING, Sequence

from ..isa import INSTRUCTION_BYTES
from .caches import SetAssociativeCache
from .compiled import compilation_cache, describe_invalid_pc
from .config import DEFAULT_MAX_INSTRUCTIONS, ProcessorConfig, _extension_payload
from .errors import SimulationError, SimulationLimitExceeded
from .iss import EXIT_ADDRESS, SimulationResult, Simulator, _aggregate_stats

if TYPE_CHECKING:  # pragma: no cover
    from ..asm import Program

__all__ = ["run_batch", "semantic_fingerprint"]

#: Fingerprint-payload keys that shape energy/timing but not execution:
#: a custom instruction's latency, hardware instances, schedule and bus
#: taps change what a retire *costs*, never what it *computes*.
_NON_SEMANTIC_EXTENSION_KEYS = ("latency", "instances", "active_cycles", "bus_tapped")


def semantic_fingerprint(config: ProcessorConfig) -> str:
    """Content hash of everything that shapes the execution *trajectory*.

    Two configs with equal semantic fingerprints run any program through
    the identical instruction sequence — same retires, branch outcomes,
    memory addresses, interlocks and final machine state — no matter how
    their caches, pipeline penalties, clock or custom-hardware costs
    differ.  That is the compatibility contract of :func:`run_batch`.
    """
    extensions = []
    for impl in config.extensions:
        payload = _extension_payload(impl)
        for key in _NON_SEMANTIC_EXTENSION_KEYS:
            payload.pop(key, None)
        extensions.append(payload)
    blob = json.dumps(
        {
            "format": "repro-semantic-fingerprint/1",
            "num_registers": config.num_registers,
            "extensions": extensions,
        },
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def _record_trajectory(
    simulator: Simulator,
    min_ishift: int,
    min_dshift: int,
    entry: int | None,
):
    """One fast-path execution with address-stream capture, no cache models.

    Returns ``(state, counts, taken_counts, interlocks, ifetch, daccess)``
    where the streams hold the first address of every same-line transition
    at the ``min_*shift`` granularity — the exact access sequence any
    batch member's cache model would see (coarser grains are subsequences
    recovered by the replay memo).
    """
    executable = simulator.executable
    ops = executable.ops
    pc_map = executable.pc_to_index
    counts = [0] * len(ops)
    taken_counts = [0] * len(ops)
    interlocks = 0
    ifetch: list[int] = []
    daccess: list[int] = []
    ilast = -1
    dlast = -1
    prev_load_dests: tuple[int, ...] = ()
    max_instructions = simulator.max_instructions
    state = simulator._reset()
    if entry is not None:
        state.pc = entry
    state_get = state.regs.__getitem__ if executable.regs_in_range else state.get
    executed = 0
    mem_base = 0

    pc = state.pc
    if pc != EXIT_ADDRESS:
        idx = pc_map.get(pc, -1)
        if idx < 0:
            raise SimulationError(
                describe_invalid_pc(executable.program_name, pc, executable, None)
            )
        while True:
            if executed >= max_instructions:
                raise SimulationLimitExceeded(
                    f"{executable.program_name}: "
                    f"exceeded {max_instructions} instructions"
                )
            executed += 1
            op = ops[idx]
            addr = op[10]
            if op[6]:  # cached fetch: record the line transition
                line = addr >> min_ishift
                if line != ilast:
                    ilast = line
                    ifetch.append(addr)
            if prev_load_dests:
                for src in op[2]:
                    if src in prev_load_dests:
                        interlocks += 1
                        break
            if op[5]:  # memory op: base register read precedes execution
                mem_base = state_get(op[3])
            state.pc = addr
            counts[idx] += 1
            next_pc = op[0](state, op[1])
            if op[5]:
                mem_addr = (mem_base + op[4]) & 0xFFFFFFFF
                line = mem_addr >> min_dshift
                if line != dlast:
                    dlast = line
                    daccess.append(mem_addr)
            prev_load_dests = op[8]
            if next_pc is None:
                if state.halted:
                    state.pc = addr + INSTRUCTION_BYTES
                    break
                idx = op[9]
                if idx >= 0:
                    continue
                pc = addr + INSTRUCTION_BYTES
            else:
                taken_counts[idx] += 1
                if state.halted:
                    state.pc = next_pc
                    break
                if next_pc == EXIT_ADDRESS:
                    state.pc = EXIT_ADDRESS
                    break
                idx = pc_map.get(next_pc, -1)
                if idx >= 0:
                    continue
                pc = next_pc
            state.pc = pc
            raise SimulationError(
                describe_invalid_pc(executable.program_name, pc, executable, addr)
            )

    return state, counts, taken_counts, interlocks, ifetch, daccess


def _replay_stream(stream: list[int], cache: SetAssociativeCache) -> int:
    """Misses when ``cache`` sees ``stream``, with the same-line memo applied."""
    access = cache.access
    shift = cache.offset_bits
    last = -1
    misses = 0
    for addr in stream:
        line = addr >> shift
        if line != last:
            last = line
            if not access(addr):
                misses += 1
    return misses


def run_batch(
    configs: Sequence[ProcessorConfig],
    program: "Program",
    *,
    max_instructions: int = DEFAULT_MAX_INSTRUCTIONS,
    entry: int | None = None,
) -> list[SimulationResult]:
    """Run ``program`` across ``configs`` in one execution pass.

    All configs must belong to one semantic partition (equal
    :func:`semantic_fingerprint`), or :class:`SimulationError` is raised
    before anything executes.  Results are ordered like ``configs`` and
    bitwise identical — stats and final state — to running each config
    individually through the fast dispatch path; the final
    :class:`~repro.isa.MachineState` object is shared across all results.
    Execution faults (wild jumps, budget expiry, semantics errors) are
    trajectory properties, so they raise once for the whole batch.
    """
    if not configs:
        return []
    partitions = {semantic_fingerprint(config) for config in configs}
    if len(partitions) != 1:
        raise SimulationError(
            f"batch of {len(configs)} configs spans {len(partitions)} semantic "
            f"partitions; run_batch requires one (group by semantic_fingerprint)"
        )
    cache = compilation_cache()
    lead = Simulator(
        configs[0], program, max_instructions=max_instructions, engine="compiled"
    )
    min_ishift = min(
        config.icache.line_bytes.bit_length() - 1 for config in configs
    )
    min_dshift = min(
        config.dcache.line_bytes.bit_length() - 1 for config in configs
    )
    state, counts, taken_counts, interlocks, ifetch, daccess = _record_trajectory(
        lead, min_ishift, min_dshift, entry
    )

    results: list[SimulationResult] = []
    for config in configs:
        executable = cache.get_or_compile(config, program)
        icache_misses = _replay_stream(ifetch, SetAssociativeCache(config.icache, "icache"))
        dcache_misses = _replay_stream(daccess, SetAssociativeCache(config.dcache, "dcache"))
        stats = _aggregate_stats(
            config,
            executable,
            counts,
            taken_counts,
            icache_misses,
            dcache_misses,
            interlocks,
        )
        results.append(
            SimulationResult(
                program=program,
                config=config,
                stats=stats,
                state=state,
                engine="batch",
            )
        )
    return results
