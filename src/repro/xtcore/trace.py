"""Historical home of the execution-record types (compatibility module).

:class:`ExecutionStats`, :class:`TraceRecord` and :func:`class_mix` moved
to :mod:`repro.obs.records` when the simulator was refactored onto the
streaming observer protocol — the stats accumulator and the trace
recorder are now two bundled observers (:mod:`repro.obs.bundled`) rather
than simulator special cases.  This module keeps every existing import
path (``repro.xtcore.trace`` and the ``repro.xtcore`` package namespace)
working.
"""

from __future__ import annotations

from ..obs.records import ExecutionStats, TraceRecord, class_mix

__all__ = ["ExecutionStats", "TraceRecord", "class_mix"]
