"""Binary object format for assembled programs ("XPF").

A simple, fully self-describing container so programs can be assembled
once and shipped/loaded without re-parsing assembly — and so the 32-bit
instruction encoding is exercised end-to-end (text is *encoded* on save
and *decoded* on load).

Layout (all integers little-endian):

======  =====================================================
offset  field
======  =====================================================
0       magic ``b"XPF1"``
4       entry point (u32)
8       section count (u32), symbol count (u32), range count (u32)
20      sections: addr u32, kind u8 (0=text, 1=data), size u32, payload
...     symbols: name-length u16, utf-8 name, value u32
...     uncached ranges: start u32, end u32
======  =====================================================

Text-section payloads are encoded instruction words; data sections are
raw bytes.  Loading decodes text words back into
:class:`~repro.isa.Instruction` objects against the provided ISA, so a
program saved under one processor configuration loads only under a
configuration whose ISA contains the same opcodes (enforced by opcode
stability of :class:`~repro.isa.InstructionSet`).
"""

from __future__ import annotations

import struct
from typing import Iterable

from ..isa import INSTRUCTION_BYTES, Instruction, InstructionSet, decode, encode
from .program import AddressRange, Program

MAGIC = b"XPF1"

_KIND_TEXT = 0
_KIND_DATA = 1


class ImageError(ValueError):
    """The byte stream is not a valid XPF image."""


def _contiguous_text_blobs(program: Program, isa: InstructionSet) -> Iterable[tuple[int, bytes]]:
    """Encode instruction runs into contiguous (addr, words) blobs."""
    for text_range in program.text_ranges():
        words = bytearray()
        for addr in range(text_range.start, text_range.end, INSTRUCTION_BYTES):
            ins = program.instructions[addr]
            word = encode(isa.lookup(ins.mnemonic), ins, isa)
            words += word.to_bytes(INSTRUCTION_BYTES, "little")
        yield text_range.start, bytes(words)


def write_image(program: Program, isa: InstructionSet) -> bytes:
    """Serialize ``program`` (text encoded, data raw) into XPF bytes."""
    sections: list[tuple[int, int, bytes]] = []
    for addr, blob in _contiguous_text_blobs(program, isa):
        sections.append((addr, _KIND_TEXT, blob))
    for addr, blob in sorted(program.data):
        sections.append((addr, _KIND_DATA, blob))

    out = bytearray()
    out += MAGIC
    out += struct.pack("<I", program.entry)
    out += struct.pack(
        "<III", len(sections), len(program.symbols), len(program.uncached_ranges)
    )
    for addr, kind, blob in sections:
        out += struct.pack("<IBI", addr, kind, len(blob))
        out += blob
    for name, value in sorted(program.symbols.items()):
        encoded = name.encode("utf-8")
        out += struct.pack("<H", len(encoded))
        out += encoded
        out += struct.pack("<I", value)
    for rng in program.uncached_ranges:
        out += struct.pack("<II", rng.start, rng.end)
    return bytes(out)


class _Reader:
    def __init__(self, data: bytes) -> None:
        self.data = data
        self.offset = 0

    def take(self, count: int) -> bytes:
        if self.offset + count > len(self.data):
            raise ImageError("truncated image")
        chunk = self.data[self.offset : self.offset + count]
        self.offset += count
        return chunk

    def unpack(self, fmt: str):
        return struct.unpack(fmt, self.take(struct.calcsize(fmt)))


def read_image(data: bytes, isa: InstructionSet, name: str = "image") -> Program:
    """Deserialize XPF bytes into a :class:`Program` (decoding text)."""
    reader = _Reader(data)
    if reader.take(4) != MAGIC:
        raise ImageError("bad magic (not an XPF image)")
    (entry,) = reader.unpack("<I")
    n_sections, n_symbols, n_ranges = reader.unpack("<III")

    instructions: dict[int, Instruction] = {}
    data_blobs: list[tuple[int, bytes]] = []
    for _ in range(n_sections):
        addr, kind, size = reader.unpack("<IBI")
        blob = reader.take(size)
        if kind == _KIND_TEXT:
            if size % INSTRUCTION_BYTES:
                raise ImageError(f"text section at {addr:#x} not word-sized")
            for offset in range(0, size, INSTRUCTION_BYTES):
                word = int.from_bytes(blob[offset : offset + 4], "little")
                ins_addr = addr + offset
                try:
                    instructions[ins_addr] = decode(word, ins_addr, isa)
                except KeyError as exc:
                    raise ImageError(
                        f"opcode at {ins_addr:#x} unknown to ISA {isa.name!r} "
                        "(was the image assembled for a different extension set?)"
                    ) from exc
        elif kind == _KIND_DATA:
            data_blobs.append((addr, blob))
        else:
            raise ImageError(f"unknown section kind {kind}")

    symbols: dict[str, int] = {}
    for _ in range(n_symbols):
        (name_len,) = reader.unpack("<H")
        symbol = reader.take(name_len).decode("utf-8")
        (value,) = reader.unpack("<I")
        symbols[symbol] = value

    ranges: list[AddressRange] = []
    for _ in range(n_ranges):
        start, end = reader.unpack("<II")
        ranges.append(AddressRange(start, end))

    return Program(
        name=name,
        instructions=instructions,
        data=data_blobs,
        symbols=symbols,
        entry=entry,
        uncached_ranges=ranges,
    )
