"""Disassembler: decoded instructions back to assembly text.

Primarily a debugging and round-trip-testing aid; the output re-assembles
to the identical instruction stream (label-free form, absolute branch
targets rendered as ``. + delta`` is avoided by emitting synthetic labels).
"""

from __future__ import annotations

from ..isa import Instruction, InstructionSet
from ..isa.instructions import BRANCHING_FORMATS, FORMAT_FIELDS
from .program import Program


def format_instruction(ins: Instruction, isa: InstructionSet, labels: dict[int, str] | None = None) -> str:
    """Render one instruction as assembly text.

    ``labels`` maps addresses to names for branch/jump targets; unknown
    targets are rendered as absolute hex (which the assembler does not
    re-accept — callers wanting round-trip text should use
    :func:`disassemble_program`, which synthesizes labels).
    """
    definition = isa.lookup(ins.mnemonic)
    fields = FORMAT_FIELDS[definition.fmt]
    parts: list[str] = []
    for field in fields:
        if field == "rd":
            parts.append(f"a{ins.rd}")
        elif field == "rs":
            parts.append(f"a{ins.rs}")
        elif field == "rt":
            parts.append(f"a{ins.rt}")
        elif field == "imm2":
            parts.append(str(ins.rt))
        elif field == "imm":
            if definition.fmt in BRANCHING_FORMATS:
                if labels and ins.imm in labels:
                    parts.append(labels[ins.imm])
                else:
                    parts.append(f"{ins.imm:#x}")
            else:
                parts.append(str(ins.imm))
    if parts:
        return f"{ins.mnemonic} " + ", ".join(parts)
    return ins.mnemonic


def disassemble_program(program: Program, isa: InstructionSet) -> str:
    """Render a whole program with synthetic labels at branch targets."""
    targets: set[int] = set()
    for ins in program.instructions.values():
        definition = isa.lookup(ins.mnemonic)
        if definition.fmt in BRANCHING_FORMATS and ins.imm is not None:
            targets.add(ins.imm)
    labels = {addr: f"L_{addr:06x}" for addr in sorted(targets)}

    lines: list[str] = []
    previous_end: int | None = None
    for addr in sorted(program.instructions):
        if previous_end is not None and addr != previous_end:
            lines.append(f"    .org {addr:#x}")
        elif previous_end is None:
            lines.append(f"    .text {addr:#x}" if addr else "    .text")
        if addr in labels:
            lines.append(f"{labels[addr]}:")
        ins = program.instructions[addr]
        lines.append("    " + format_instruction(ins, isa, labels))
        previous_end = addr + 4
    return "\n".join(lines) + "\n"
