"""``repro.asm`` — assembler, program representation and disassembler."""

from .assembler import (
    AsmError,
    Assembler,
    DATA_ORIGIN,
    TEXT_ORIGIN,
    UTEXT_ORIGIN,
    assemble,
)
from .disassembler import disassemble_program, format_instruction
from .image import ImageError, read_image, write_image
from .program import AddressRange, Program

__all__ = [
    "AddressRange",
    "AsmError",
    "Assembler",
    "DATA_ORIGIN",
    "Program",
    "TEXT_ORIGIN",
    "UTEXT_ORIGIN",
    "assemble",
    "disassemble_program",
    "format_instruction",
    "read_image",
    "write_image",
    "ImageError",
]
