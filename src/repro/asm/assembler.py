"""Two-pass assembler for the ``xtcore`` ISA.

The paper's characterization flow uses "arbitrary test programs" — one of
the selling points of regression macro-modeling is that no carefully
constructed isolated-instruction loops are needed.  Our benchmark and
characterization programs are written in a small assembly dialect that
this module translates into :class:`repro.asm.program.Program` objects.

Dialect summary::

    ; comment        # comment        // comment
    .text [org]      switch to (cached) code section
    .utext [org]     switch to UNCACHED code section (fetches bypass I$)
    .data [org]      switch to data section
    .org  ADDR       set location counter
    .align N         align location counter to N bytes
    .equ NAME, EXPR  bind a named constant (usable in any later expression)
    .entry LABEL     set the program entry point (default: `main`, else
                     the lowest text address)
    .word/.half/.byte E[, E...]   emit initialized data (E may ref labels)
    .space N[, FILL] emit N fill bytes
    .ascii "s"  /  .asciiz "s"    emit string data
    label:           bind `label` to the current location
    mnemonic ops     any base-ISA or custom-extension instruction

Pseudo-instructions: ``la rd, sym[+off]`` (movhi+ori), ``li rd, imm``
(movi, or movhi+ori when out of 12-bit range), ``mv``, and the swapped
branches ``bgt/ble/bgtu/bleu``.

Expressions are ``term (+|- term)*`` where a term is an integer literal
(decimal, hex, binary or a character constant) or a label.
"""

from __future__ import annotations

import dataclasses
import re
from typing import Callable, Optional

from ..isa import (
    BASE_ISA,
    INSTRUCTION_BYTES,
    EncodingError,
    Instruction,
    InstructionSet,
    encode,
)
from ..isa.instructions import FORMAT_FIELDS
from .program import AddressRange, Program

#: Default section origins (byte addresses).
TEXT_ORIGIN = 0x0000_0000
DATA_ORIGIN = 0x0001_0000
UTEXT_ORIGIN = 0x0008_0000

_REGISTER_ALIASES = {"ra": 0, "sp": 1}
_LABEL_RE = re.compile(r"^[A-Za-z_.$][A-Za-z0-9_.$]*$")
_COMMENT_RE = re.compile(r";.*$|#.*$|//.*$")


class AsmError(ValueError):
    """An assembly-time error, annotated with program name and line number."""

    def __init__(self, program: str, line_no: int, message: str) -> None:
        super().__init__(f"{program}:{line_no}: {message}")
        self.program = program
        self.line_no = line_no


@dataclasses.dataclass
class _Expr:
    """A deferred integer expression: constant + sum of signed label refs."""

    constant: int = 0
    labels: tuple[tuple[str, int], ...] = ()

    def resolve(self, symbols: dict[str, int], err: Callable[[str], AsmError]) -> int:
        value = self.constant
        for name, sign in self.labels:
            if name not in symbols:
                raise err(f"undefined symbol {name!r}")
            value += sign * symbols[name]
        return value

    @property
    def is_constant(self) -> bool:
        return not self.labels


@dataclasses.dataclass
class _InsSlot:
    """A reserved instruction slot awaiting pass-2 operand resolution."""

    line_no: int
    addr: int
    mnemonic: str
    operands: list[object]  # int (register), _Expr (immediate/target)


@dataclasses.dataclass
class _DataSlot:
    """A reserved data slot awaiting pass-2 expression resolution."""

    line_no: int
    addr: int
    size_per_item: int
    exprs: list[_Expr]
    raw: bytes = b""


def _parse_int_literal(token: str) -> Optional[int]:
    token = token.strip()
    if len(token) >= 3 and token.startswith("'") and token.endswith("'"):
        body = token[1:-1]
        unescaped = body.encode().decode("unicode_escape")
        if len(unescaped) != 1:
            return None
        return ord(unescaped)
    try:
        return int(token, 0)
    except ValueError:
        return None


class Assembler:
    """Two-pass assembler over a fixed instruction set.

    The instruction set may include custom-extension definitions; the
    assembler is entirely table-driven off each definition's format, so
    TIE-substitute instructions assemble with no extra support code.
    """

    def __init__(self, isa: InstructionSet | None = None) -> None:
        self.isa = isa if isa is not None else BASE_ISA

    # -- public API ---------------------------------------------------------

    def assemble(self, source: str, name: str = "program") -> Program:
        """Assemble ``source`` text into a :class:`Program`."""
        state = _PassState(name)
        self._pass_one(source, state)
        return self._pass_two(source, state)

    # -- pass 1: layout -----------------------------------------------------

    def _pass_one(self, source: str, st: "_PassState") -> None:
        for line_no, raw_line in enumerate(source.splitlines(), start=1):
            line = _COMMENT_RE.sub("", raw_line).strip()
            if not line:
                continue
            # Labels (possibly several) at the start of the line.
            while True:
                match = re.match(r"^([A-Za-z_.$][A-Za-z0-9_.$]*)\s*:\s*", line)
                if not match:
                    break
                st.bind_label(match.group(1), line_no)
                line = line[match.end():]
            if not line:
                continue
            if line.startswith("."):
                self._directive(line, line_no, st)
            else:
                self._instruction_pass_one(line, line_no, st)

    def _directive(self, line: str, line_no: int, st: "_PassState") -> None:
        parts = line.split(None, 1)
        name = parts[0].lower()
        rest = parts[1] if len(parts) > 1 else ""
        err = st.error_factory(line_no)

        if name in (".text", ".data", ".utext"):
            origin = None
            if rest:
                origin = _parse_int_literal(rest)
                if origin is None:
                    raise err(f"bad section origin {rest!r}")
            st.switch_section(name[1:], origin)
        elif name == ".org":
            value = _parse_int_literal(rest)
            if value is None:
                raise err(f".org requires a constant address, got {rest!r}")
            st.set_location(value, err)
        elif name == ".align":
            value = _parse_int_literal(rest)
            if value is None or value <= 0 or value & (value - 1):
                raise err(f".align requires a positive power of two, got {rest!r}")
            st.align(value)
        elif name == ".equ":
            parts = _split_operands(rest)
            if len(parts) != 2:
                raise err(".equ requires `name, expression`")
            symbol = parts[0]
            if not _LABEL_RE.match(symbol):
                raise err(f"bad .equ name {symbol!r}")
            # resolved immediately: terms may reference constants and
            # labels defined *above* this line
            expr = self._parse_expr(parts[1], line_no, st)
            st.bind_constant(symbol, expr.resolve(st.symbols, err), line_no)
        elif name == ".entry":
            st.entry_label = rest.strip()
            if not _LABEL_RE.match(st.entry_label):
                raise err(f"bad entry label {rest!r}")
        elif name == ".global":
            pass  # accepted for compatibility; all labels are global
        elif name in (".word", ".half", ".byte"):
            size = {".word": 4, ".half": 2, ".byte": 1}[name]
            exprs = [self._parse_expr(tok, line_no, st) for tok in _split_operands(rest)]
            if not exprs:
                raise err(f"{name} requires at least one value")
            st.add_data(_DataSlot(line_no, st.location, size, exprs), size * len(exprs))
        elif name == ".space":
            args = _split_operands(rest)
            if not args:
                raise err(".space requires a size")
            count = _parse_int_literal(args[0])
            fill = _parse_int_literal(args[1]) if len(args) > 1 else 0
            if count is None or count < 0 or fill is None:
                raise err(f"bad .space arguments {rest!r}")
            st.add_data(
                _DataSlot(line_no, st.location, 1, [], raw=bytes([fill & 0xFF]) * count),
                count,
            )
        elif name in (".ascii", ".asciiz"):
            text = rest.strip()
            if len(text) < 2 or text[0] != '"' or text[-1] != '"':
                raise err(f"{name} requires a double-quoted string")
            data = text[1:-1].encode().decode("unicode_escape").encode("latin-1")
            if name == ".asciiz":
                data += b"\x00"
            st.add_data(_DataSlot(line_no, st.location, 1, [], raw=data), len(data))
        else:
            raise err(f"unknown directive {name!r}")

    def _instruction_pass_one(self, line: str, line_no: int, st: "_PassState") -> None:
        err = st.error_factory(line_no)
        if st.section == "data":
            raise err("instructions are not allowed in the data section")
        parts = line.split(None, 1)
        mnemonic = parts[0].lower()
        operand_text = parts[1] if len(parts) > 1 else ""
        tokens = _split_operands(operand_text)

        for expanded in self._expand_pseudo(mnemonic, tokens, line_no, st):
            exp_mnemonic, exp_tokens = expanded
            definition = self._lookup(exp_mnemonic, err)
            fields = FORMAT_FIELDS[definition.fmt]
            if len(exp_tokens) != len(fields):
                raise err(
                    f"{exp_mnemonic}: expected {len(fields)} operand(s) "
                    f"({', '.join(fields)}), got {len(exp_tokens)}"
                )
            operands: list[object] = []
            for field, token in zip(fields, exp_tokens):
                if field in ("rd", "rs", "rt"):
                    operands.append(self._parse_register(token, err))
                else:  # imm / imm2
                    operands.append(self._parse_expr(token, line_no, st))
            st.add_instruction(_InsSlot(line_no, st.location, exp_mnemonic, operands))

    def _expand_pseudo(
        self,
        mnemonic: str,
        tokens: list[str],
        line_no: int,
        st: "_PassState",
    ) -> list[tuple[str, list[str]]]:
        """Expand pseudo-instructions into real ones (size known in pass 1)."""
        err = st.error_factory(line_no)
        if mnemonic == "mv":
            return [("mov", tokens)]
        if mnemonic in ("bgt", "ble", "bgtu", "bleu"):
            if len(tokens) != 3:
                raise err(f"{mnemonic}: expected 3 operands")
            real = {"bgt": "blt", "ble": "bge", "bgtu": "bltu", "bleu": "bgeu"}[mnemonic]
            return [(real, [tokens[1], tokens[0], tokens[2]])]
        if mnemonic == "la":
            if len(tokens) != 2:
                raise err("la: expected `la rd, symbol[+offset]`")
            rd = tokens[0]
            # Always two instructions so pass-1 sizing is label-independent.
            return [
                ("movhi", [rd, f"%hi:{tokens[1]}"]),
                ("ori", [rd, rd, f"%lo:{tokens[1]}"]),
            ]
        if mnemonic == "li":
            if len(tokens) != 2:
                raise err("li: expected `li rd, constant`")
            value = _parse_int_literal(tokens[1])
            if value is None:
                raise err(f"li: operand {tokens[1]!r} must be a constant (use `la` for labels)")
            if -2048 <= value <= 2047:
                return [("movi", tokens)]
            if not 0 <= value <= 0x3FFF_FFFF:
                raise err(f"li: constant {value:#x} outside composable 30-bit range")
            rd = tokens[0]
            return [
                ("movhi", [rd, str(value >> 12)]),
                ("ori", [rd, rd, str(value & 0xFFF)]),
            ]
        return [(mnemonic, tokens)]

    # -- pass 2: resolution ---------------------------------------------------

    def _pass_two(self, source: str, st: "_PassState") -> Program:
        instructions: dict[int, Instruction] = {}
        for slot in st.instruction_slots:
            err = st.error_factory(slot.line_no)
            definition = self._lookup(slot.mnemonic, err)
            fields = FORMAT_FIELDS[definition.fmt]
            values: dict[str, int] = {}
            for field, operand in zip(fields, slot.operands):
                if isinstance(operand, _Expr):
                    values[field] = operand.resolve(st.symbols, err)
                else:
                    values[field] = operand
            ins = Instruction(
                mnemonic=slot.mnemonic,
                rd=values.get("rd"),
                rs=values.get("rs"),
                rt=values.get("imm2", values.get("rt")),
                imm=values.get("imm"),
                addr=slot.addr,
            )
            try:
                encode(definition, ins, self.isa)  # range validation
            except EncodingError as exc:
                raise err(str(exc)) from exc
            instructions[slot.addr] = ins

        data: list[tuple[int, bytes]] = []
        for dslot in st.data_slots:
            err = st.error_factory(dslot.line_no)
            if dslot.raw:
                data.append((dslot.addr, dslot.raw))
                continue
            blob = bytearray()
            for expr in dslot.exprs:
                value = expr.resolve(st.symbols, err) & ((1 << (8 * dslot.size_per_item)) - 1)
                blob += value.to_bytes(dslot.size_per_item, "little")
            data.append((dslot.addr, bytes(blob)))

        entry = self._resolve_entry(st, instructions)
        return Program(
            name=st.name,
            instructions=instructions,
            data=data,
            symbols=dict(st.symbols),
            entry=entry,
            uncached_ranges=st.uncached_ranges(),
            source=source,
        )

    def _resolve_entry(self, st: "_PassState", instructions: dict[int, Instruction]) -> int:
        if st.entry_label:
            if st.entry_label not in st.symbols:
                raise AsmError(st.name, 0, f"entry label {st.entry_label!r} undefined")
            return st.symbols[st.entry_label]
        if "main" in st.symbols:
            return st.symbols["main"]
        if not instructions:
            raise AsmError(st.name, 0, "program has no instructions")
        return min(instructions)

    # -- operand parsing ------------------------------------------------------

    def _lookup(self, mnemonic: str, err: Callable[[str], AsmError]):
        try:
            return self.isa.lookup(mnemonic)
        except KeyError:
            raise err(f"unknown instruction {mnemonic!r}") from None

    def _parse_register(self, token: str, err: Callable[[str], AsmError]) -> int:
        token = token.strip().lower()
        if token in _REGISTER_ALIASES:
            return _REGISTER_ALIASES[token]
        if token.startswith("a") and token[1:].isdigit():
            index = int(token[1:])
            if 0 <= index < 64:
                return index
        raise err(f"bad register {token!r} (expected a0..a63, sp or ra)")

    def _parse_expr(self, token: str, line_no: int, st: "_PassState") -> _Expr:
        err = st.error_factory(line_no)
        token = token.strip()
        transform = None
        if token.startswith("%hi:"):
            transform, token = "hi", token[4:]
        elif token.startswith("%lo:"):
            transform, token = "lo", token[4:]

        constant = 0
        labels: list[tuple[str, int]] = []
        terms = re.findall(r"([+-]?)\s*([A-Za-z0-9_.$'\\]+)", token)
        if not terms:
            raise err(f"empty or malformed operand expression {token!r}")
        for sign_str, term in terms:
            sign = -1 if sign_str == "-" else 1
            literal = _parse_int_literal(term)
            if literal is not None:
                constant += sign * literal
            elif _LABEL_RE.match(term):
                labels.append((term, sign))
            else:
                raise err(f"bad expression term {term!r}")
        expr = _Expr(constant=constant, labels=tuple(labels))
        if transform is None:
            return expr
        return _TransformedExpr(expr, transform)

    # ------------------------------------------------------------------------


class _TransformedExpr(_Expr):
    """An expression wrapped in a %hi/%lo relocation transform."""

    def __init__(self, inner: _Expr, kind: str) -> None:
        super().__init__(constant=inner.constant, labels=inner.labels)
        self.kind = kind

    def resolve(self, symbols: dict[str, int], err: Callable[[str], AsmError]) -> int:
        value = super().resolve(symbols, err)
        if not 0 <= value <= 0x3FFF_FFFF:
            raise err(f"%{self.kind} operand {value:#x} outside 30-bit range")
        if self.kind == "hi":
            return value >> 12
        return value & 0xFFF


class _PassState:
    """Mutable assembler state shared between the two passes."""

    _ORIGINS = {"text": TEXT_ORIGIN, "data": DATA_ORIGIN, "utext": UTEXT_ORIGIN}

    def __init__(self, name: str) -> None:
        self.name = name
        self.symbols: dict[str, int] = {}
        self.instruction_slots: list[_InsSlot] = []
        self.data_slots: list[_DataSlot] = []
        self.entry_label: str = ""
        self.section = "text"
        self._counters = dict(self._ORIGINS)
        self._utext_spans: list[tuple[int, int]] = []
        self._label_lines: dict[str, int] = {}

    # location management

    @property
    def location(self) -> int:
        return self._counters[self.section]

    def error_factory(self, line_no: int) -> Callable[[str], AsmError]:
        return lambda message: AsmError(self.name, line_no, message)

    def switch_section(self, section: str, origin: Optional[int]) -> None:
        self.section = section
        if origin is not None:
            self._counters[section] = origin

    def set_location(self, value: int, err: Callable[[str], AsmError]) -> None:
        if value < 0:
            raise err(f"negative .org address {value}")
        self._counters[self.section] = value

    def align(self, boundary: int) -> None:
        loc = self._counters[self.section]
        self._counters[self.section] = (loc + boundary - 1) & ~(boundary - 1)

    def bind_label(self, label: str, line_no: int) -> None:
        if label in self.symbols:
            raise AsmError(
                self.name,
                line_no,
                f"label {label!r} already defined at line {self._label_lines[label]}",
            )
        self.symbols[label] = self.location
        self._label_lines[label] = line_no

    def bind_constant(self, name: str, value: int, line_no: int) -> None:
        """Bind an ``.equ`` constant (same namespace as labels)."""
        if name in self.symbols:
            raise AsmError(
                self.name,
                line_no,
                f"symbol {name!r} already defined at line {self._label_lines[name]}",
            )
        self.symbols[name] = value
        self._label_lines[name] = line_no

    def add_instruction(self, slot: _InsSlot) -> None:
        self.instruction_slots.append(slot)
        if self.section == "utext":
            self._utext_spans.append((slot.addr, slot.addr + INSTRUCTION_BYTES))
        self._counters[self.section] += INSTRUCTION_BYTES

    def add_data(self, slot: _DataSlot, size: int) -> None:
        self.data_slots.append(slot)
        self._counters[self.section] += size

    def uncached_ranges(self) -> list[AddressRange]:
        """Coalesce uncached-text spans into address ranges."""
        ranges: list[AddressRange] = []
        for start, end in sorted(self._utext_spans):
            if ranges and ranges[-1].end == start:
                ranges[-1] = AddressRange(ranges[-1].start, end)
            else:
                ranges.append(AddressRange(start, end))
        return ranges


def _split_operands(text: str) -> list[str]:
    """Split an operand list on commas, respecting quoted strings."""
    text = text.strip()
    if not text:
        return []
    return [part.strip() for part in text.split(",")]


def assemble(source: str, name: str = "program", isa: InstructionSet | None = None) -> Program:
    """Convenience wrapper: assemble ``source`` with ``isa`` (default base)."""
    return Assembler(isa).assemble(source, name)
