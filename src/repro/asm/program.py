"""Assembled program representation.

A :class:`Program` is what the assembler produces and what the
instruction-set simulator, the reference RTL energy estimator and the
macro-model estimation flow all consume.  It carries:

* the instruction stream, keyed by byte address;
* initialized data blobs;
* the symbol table and entry point;
* uncached instruction-address ranges (for the ``N_uf`` uncached-fetch
  macro-model variable).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from typing import Iterator

from ..isa import INSTRUCTION_BYTES, Instruction, InstructionSet, encode


@dataclasses.dataclass(frozen=True)
class AddressRange:
    """A half-open byte-address interval ``[start, end)``."""

    start: int
    end: int

    def __post_init__(self) -> None:
        if self.end < self.start:
            raise ValueError(f"invalid address range [{self.start:#x}, {self.end:#x})")

    def __contains__(self, addr: int) -> bool:
        return self.start <= addr < self.end

    @property
    def size(self) -> int:
        return self.end - self.start


@dataclasses.dataclass
class Program:
    """A fully assembled program ready for simulation."""

    name: str
    instructions: dict[int, Instruction]
    data: list[tuple[int, bytes]]
    symbols: dict[str, int]
    entry: int
    uncached_ranges: list[AddressRange] = dataclasses.field(default_factory=list)
    source: str = ""

    def __post_init__(self) -> None:
        for addr in self.instructions:
            if addr % INSTRUCTION_BYTES:
                raise ValueError(f"misaligned instruction address {addr:#x}")

    def __len__(self) -> int:
        return len(self.instructions)

    def instruction_at(self, addr: int) -> Instruction:
        """Return the instruction at ``addr`` (KeyError if none)."""
        try:
            return self.instructions[addr]
        except KeyError:
            raise KeyError(
                f"{self.name}: no instruction at address {addr:#010x}"
            ) from None

    def is_uncached(self, addr: int) -> bool:
        """True if instruction fetches from ``addr`` bypass the I-cache."""
        return any(addr in r for r in self.uncached_ranges)

    def digest(self) -> str:
        """Stable content hash of everything that affects execution.

        Covers the instruction stream, data image, entry point, symbol
        table and uncached ranges — but not the cosmetic ``name`` or the
        original ``source`` text, so re-assembling identical source under
        a different program name digests identically.  Pairs with
        :meth:`repro.xtcore.ProcessorConfig.fingerprint` to key the
        cross-run compilation cache.
        """
        memo = self.__dict__.get("_digest_memo")
        if memo is not None:
            return memo
        payload = {
            "format": "repro-program-digest/1",
            "entry": self.entry,
            "instructions": [
                [addr, ins.mnemonic, ins.rd, ins.rs, ins.rt, ins.imm]
                for addr, ins in sorted(self.instructions.items())
            ],
            "data": [[addr, blob.hex()] for addr, blob in sorted(self.data)],
            "symbols": sorted(self.symbols.items()),
            "uncached": [[r.start, r.end] for r in self.uncached_ranges],
        }
        blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        memo = hashlib.sha256(blob.encode("utf-8")).hexdigest()
        self.__dict__["_digest_memo"] = memo
        return memo

    def symbol(self, name: str) -> int:
        """Return the address bound to label ``name``."""
        try:
            return self.symbols[name]
        except KeyError:
            raise KeyError(f"{self.name}: unknown symbol {name!r}") from None

    def iter_instructions(self) -> Iterator[Instruction]:
        """Instructions in ascending address order."""
        for addr in sorted(self.instructions):
            yield self.instructions[addr]

    def text_ranges(self) -> list[AddressRange]:
        """Contiguous instruction-address ranges, ascending."""
        ranges: list[AddressRange] = []
        for addr in sorted(self.instructions):
            if ranges and ranges[-1].end == addr:
                ranges[-1] = AddressRange(ranges[-1].start, addr + INSTRUCTION_BYTES)
            else:
                ranges.append(AddressRange(addr, addr + INSTRUCTION_BYTES))
        return ranges

    def static_mnemonic_histogram(self) -> dict[str, int]:
        """Static occurrence count per mnemonic (useful for suite coverage)."""
        histogram: dict[str, int] = {}
        for ins in self.instructions.values():
            histogram[ins.mnemonic] = histogram.get(ins.mnemonic, 0) + 1
        return histogram

    def encode_image(self, isa: InstructionSet) -> list[tuple[int, bytes]]:
        """Encode text + data into (address, bytes) blobs, ascending.

        Used for binary round-trip testing and to size memory images; the
        simulator itself interprets :attr:`instructions` directly.
        """
        blobs: list[tuple[int, bytes]] = []
        for addr in sorted(self.instructions):
            ins = self.instructions[addr]
            word = encode(isa.lookup(ins.mnemonic), ins, isa)
            blobs.append((addr, word.to_bytes(INSTRUCTION_BYTES, "little")))
        blobs.extend(sorted(self.data))
        return blobs
