"""TIE-substitute custom-instruction specifications.

A :class:`TieSpec` is the open equivalent of a Tensilica TIE description:
it declares a custom instruction's assembly format, its operands (GPR
fields, immediates, custom state registers) and its datapath as a
dataflow graph over the hardware component library.  The spec is purely
*descriptive*; :mod:`repro.tie.compiler` turns it into an executable,
schedulable implementation.

Example — an 8x8 multiply-accumulate into a 24-bit custom accumulator::

    spec = TieSpec("mac8", fmt="RS1", description="acc += low8(rs) * next8(rs)")
    acc = spec.state("mac8_acc", width=24)
    word = spec.source("rs")
    a = spec.slice(word, 0, 8)
    b = spec.slice(word, 8, 8)
    spec.write_state(acc, spec.tie_mac(a, b, spec.read_state(acc), width=24))
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..hwlib import ComponentCategory
from ..isa.bits import mask
from .nodes import (
    KIND_CONST,
    KIND_GPR,
    KIND_IMM,
    KIND_OP,
    KIND_STATE,
    KIND_TABLE,
    KIND_WIRE,
    OP_CATEGORY,
    WIRING_OPS,
    Node,
    TieState,
)

#: Formats a custom instruction may use, with (gpr sources, has rd, has imm).
_FORMAT_OPERANDS = {
    "R3": (("rs", "rt"), True, False),
    "R2": (("rs",), True, False),
    "RS1": (("rs",), False, False),
    "RD1": ((), True, False),
    "I": (("rs",), True, True),
    "N": ((), False, False),
}


class TieSpecError(ValueError):
    """A malformed custom-instruction specification.

    Carries machine-readable context so tooling (notably the candidate
    legalizer in :mod:`repro.discover`) can report *which* node broke
    *which* rule instead of surfacing a bare message: ``node`` is the id
    of the offending dataflow node when one exists, and ``category`` is a
    short classification (``format``, ``mnemonic``, ``operand``,
    ``width``, ``state``, ``table``, ``result``, ``datapath``).  Both are
    appended to the rendered message.
    """

    def __init__(
        self,
        message: str,
        *,
        node: Optional[int] = None,
        category: Optional[str] = None,
    ) -> None:
        details = []
        if node is not None:
            details.append(f"node {node}")
        if category is not None:
            details.append(f"category {category}")
        if details:
            message = f"{message} [{'; '.join(details)}]"
        super().__init__(message)
        self.node = node
        self.category = category


class TieSpec:
    """Builder for one custom instruction's dataflow-graph datapath."""

    def __init__(self, mnemonic: str, fmt: str = "R3", description: str = "") -> None:
        if fmt not in _FORMAT_OPERANDS:
            raise TieSpecError(
                f"{mnemonic}: format {fmt!r} not usable by custom instructions "
                f"(choose from {sorted(_FORMAT_OPERANDS)})",
                category="format",
            )
        if not mnemonic or not mnemonic.isidentifier():
            raise TieSpecError(f"bad custom mnemonic {mnemonic!r}", category="mnemonic")
        self.mnemonic = mnemonic
        self.fmt = fmt
        self.description = description
        self.nodes: list[Node] = []
        self.states: dict[str, TieState] = {}
        self.state_writes: list[tuple[TieState, Node]] = []
        self.result_node: Optional[Node] = None
        self._sources_used: set[str] = set()
        self._imm_used = False

    # -- leaf constructors ----------------------------------------------------

    def source(self, field: str = "rs", width: int = 32) -> Node:
        """Read a GPR operand field (``rs`` or ``rt``), truncated to ``width``.

        Reading a GPR is what creates the paper's *side effect on the base
        processor*: the custom instruction drives the generic register file
        and operand buses.
        """
        allowed, _, _ = _FORMAT_OPERANDS[self.fmt]
        if field not in allowed:
            raise TieSpecError(
                f"{self.mnemonic}: format {self.fmt} has no GPR source field {field!r}",
                category="operand",
            )
        if field in self._sources_used:
            raise TieSpecError(
                f"{self.mnemonic}: source field {field!r} read twice; reuse the node",
                category="operand",
            )
        self._sources_used.add(field)
        if not 1 <= width <= 32:
            raise TieSpecError(f"{self.mnemonic}: GPR source width must be 1..32", category="width")
        return self._add(Node(self._next_id(), KIND_GPR, width, payload=field))

    def immediate(self, width: int = 12) -> Node:
        """Read the instruction's immediate field (``I`` format only)."""
        _, _, has_imm = _FORMAT_OPERANDS[self.fmt]
        if not has_imm:
            raise TieSpecError(
                f"{self.mnemonic}: format {self.fmt} has no immediate field", category="operand"
            )
        if self._imm_used:
            raise TieSpecError(
                f"{self.mnemonic}: immediate field read twice; reuse the node", category="operand"
            )
        self._imm_used = True
        if not 1 <= width <= 12:
            raise TieSpecError(f"{self.mnemonic}: immediate width must be 1..12", category="width")
        return self._add(Node(self._next_id(), KIND_IMM, width))

    def const(self, value: int, width: int) -> Node:
        """A hard-wired constant (free: wiring, not hardware)."""
        if not 0 <= value <= mask(width):
            raise TieSpecError(
                f"{self.mnemonic}: constant {value} does not fit {width} bits", category="width"
            )
        return self._add(Node(self._next_id(), KIND_CONST, width, payload=value))

    def state(self, name: str, width: int, init: int = 0) -> TieState:
        """Declare (or re-declare, identically) a custom state register."""
        candidate = TieState(name, width, init)
        existing = self.states.get(name)
        if existing is not None and existing != candidate:
            raise TieSpecError(
                f"{self.mnemonic}: state {name!r} redeclared with different shape",
                category="state",
            )
        self.states[name] = candidate
        return candidate

    def use_state(self, state: TieState) -> TieState:
        """Attach an externally created (possibly shared) state register."""
        existing = self.states.get(state.name)
        if existing is not None and existing != state:
            raise TieSpecError(
                f"{self.mnemonic}: state {state.name!r} conflicts with existing declaration",
                category="state",
            )
        self.states[state.name] = state
        return state

    def read_state(self, state: TieState) -> Node:
        """Read a custom state register into the datapath."""
        self.use_state(state)
        return self._add(Node(self._next_id(), KIND_STATE, state.width, payload=state.name))

    # -- operator constructors --------------------------------------------

    def _widths(self, op: str, *nodes: object) -> list[int]:
        """Validate operand nodes early and return their widths."""
        for node in nodes:
            if not isinstance(node, Node):
                raise TieSpecError(
                    f"{self.mnemonic}: {op} input {node!r} is not a Node", category="operand"
                )
        return [node.width for node in nodes]  # type: ignore[union-attr]

    def _op(self, op: str, inputs: Sequence[Node], width: int, payload: object = None) -> Node:
        for node in inputs:
            if not isinstance(node, Node):
                raise TieSpecError(
                    f"{self.mnemonic}: {op} input {node!r} is not a Node", category="operand"
                )
        kind = KIND_WIRE if op in WIRING_OPS else KIND_OP
        category = OP_CATEGORY.get(op)
        return self._add(
            Node(self._next_id(), kind, width, op=op, category=category, inputs=inputs, payload=payload)
        )

    def add(self, a: Node, b: Node, width: Optional[int] = None) -> Node:
        return self._op("add", (a, b), width or max(self._widths("add", a, b)))

    def sub(self, a: Node, b: Node, width: Optional[int] = None) -> Node:
        return self._op("sub", (a, b), width or max(self._widths("sub", a, b)))

    def compare(self, kind: str, a: Node, b: Node) -> Node:
        """1-bit comparison: kind in eq/ne/lt_s/lt_u/ge_s/ge_u."""
        if kind not in ("eq", "ne", "lt_s", "lt_u", "ge_s", "ge_u"):
            raise TieSpecError(f"{self.mnemonic}: unknown comparison {kind!r}", category="operand")
        return self._op(kind, (a, b), 1)

    def minimum(self, a: Node, b: Node, signed: bool = False) -> Node:
        return self._op("min_s" if signed else "min_u", (a, b), max(self._widths("min", a, b)))

    def maximum(self, a: Node, b: Node, signed: bool = False) -> Node:
        return self._op("max_s" if signed else "max_u", (a, b), max(self._widths("max", a, b)))

    def bit_and(self, a: Node, b: Node) -> Node:
        return self._op("and", (a, b), max(self._widths("and", a, b)))

    def bit_or(self, a: Node, b: Node) -> Node:
        return self._op("or", (a, b), max(self._widths("or", a, b)))

    def bit_xor(self, a: Node, b: Node) -> Node:
        return self._op("xor", (a, b), max(self._widths("xor", a, b)))

    def bit_not(self, a: Node) -> Node:
        return self._op("not", (a,), self._widths("not", a)[0])

    def mux(self, sel: Node, if_true: Node, if_false: Node) -> Node:
        return self._op("mux", (sel, if_true, if_false), max(self._widths("mux", sel, if_true, if_false)[1:]))

    def reduce_or(self, a: Node) -> Node:
        return self._op("red_or", (a,), 1)

    def reduce_and(self, a: Node) -> Node:
        return self._op("red_and", (a,), 1)

    def reduce_xor(self, a: Node) -> Node:
        return self._op("red_xor", (a,), 1)

    def shift_left(self, a: Node, amount: Node, width: Optional[int] = None) -> Node:
        return self._op("shl", (a, amount), width or self._widths("shl", a, amount)[0])

    def shift_right(self, a: Node, amount: Node, width: Optional[int] = None) -> Node:
        return self._op("shr", (a, amount), width or self._widths("shr", a, amount)[0])

    def shift_right_arith(self, a: Node, amount: Node, width: Optional[int] = None) -> Node:
        return self._op("sar", (a, amount), width or self._widths("sar", a, amount)[0])

    def mul(self, a: Node, b: Node, width: Optional[int] = None) -> Node:
        """General multiplier (category 1)."""
        return self._op("mul", (a, b), width or sum(self._widths("mul", a, b)))

    def tie_mult(self, a: Node, b: Node, width: Optional[int] = None) -> Node:
        """Specialized TIE multiplier module (category 6)."""
        return self._op("tie_mult", (a, b), width or sum(self._widths("tie_mult", a, b)))

    def tie_mac(self, a: Node, b: Node, c: Node, width: Optional[int] = None) -> Node:
        """Fused multiply-accumulate module (category 7): a*b + c."""
        return self._op("tie_mac", (a, b, c), width or max(sum(self._widths("tie_mac", a, b)), c.width) + 1)

    def tie_add(self, *terms: Node, width: Optional[int] = None) -> Node:
        """Multi-operand adder module (category 8)."""
        if len(terms) < 2:
            raise TieSpecError(f"{self.mnemonic}: tie_add needs at least two terms", category="operand")
        return self._op("tie_add", terms, width or max(self._widths("tie_add", *terms)) + len(terms).bit_length())

    def csa(self, a: Node, b: Node, c: Node, width: Optional[int] = None) -> tuple[Node, Node]:
        """Carry-save adder (category 9): returns the (sum, carry) pair."""
        out_width = width or max(self._widths("csa", a, b, c)) + 1
        s = self._op("csa_sum", (a, b, c), out_width)
        carry = self._op("csa_carry", (a, b, c), out_width)
        return s, carry

    def table(self, name: str, data: Sequence[int], index: Node, out_width: int) -> Node:
        """Lookup table (category 10).  ``len(data)`` must be a power of two."""
        entries = len(data)
        if entries == 0 or entries & (entries - 1):
            raise TieSpecError(
                f"{self.mnemonic}: table {name!r} needs a power-of-two entry count",
                node=index.nid,
                category="table",
            )
        limit = mask(out_width)
        for i, value in enumerate(data):
            if not 0 <= value <= limit:
                raise TieSpecError(
                    f"{self.mnemonic}: table {name!r} entry {i} = {value} exceeds {out_width} bits",
                    node=index.nid,
                    category="table",
                )
        node = Node(
            self._next_id(),
            KIND_TABLE,
            out_width,
            op="table",
            category=ComponentCategory.TABLE,
            inputs=(index,),
            payload=tuple(data),
        )
        node_named = node
        self._add(node_named)
        return node_named

    # -- wiring (free) ------------------------------------------------------

    def slice(self, a: Node, low: int, width: int) -> Node:
        """Extract ``width`` bits of ``a`` starting at bit ``low`` (free wiring)."""
        if low < 0 or width <= 0 or low + width > a.width:
            raise TieSpecError(
                f"{self.mnemonic}: slice [{low}+:{width}] out of range for {a.width}-bit value",
                node=a.nid,
                category="width",
            )
        return self._op("slice", (a,), width, payload=low)

    def concat(self, hi: Node, lo: Node) -> Node:
        """Concatenate two values, ``hi`` in the upper bits (free wiring)."""
        return self._op("concat", (hi, lo), sum(self._widths("concat", hi, lo)))

    def sign_extend(self, a: Node, width: int) -> Node:
        if width < a.width:
            raise TieSpecError(
                f"{self.mnemonic}: sign_extend target narrower than source",
                node=a.nid,
                category="width",
            )
        return self._op("sext", (a,), width)

    def zero_extend(self, a: Node, width: int) -> Node:
        if width < a.width:
            raise TieSpecError(
                f"{self.mnemonic}: zero_extend target narrower than source",
                node=a.nid,
                category="width",
            )
        return self._op("zext", (a,), width)

    # -- outputs -------------------------------------------------------------

    def result(self, node: Node) -> None:
        """Route ``node`` to the instruction's GPR result (rd)."""
        _, has_rd, _ = _FORMAT_OPERANDS[self.fmt]
        if not has_rd:
            raise TieSpecError(
                f"{self.mnemonic}: format {self.fmt} has no result field",
                node=node.nid,
                category="result",
            )
        if self.result_node is not None:
            raise TieSpecError(
                f"{self.mnemonic}: result assigned twice", node=node.nid, category="result"
            )
        self.result_node = node

    def write_state(self, state: TieState, node: Node) -> None:
        """Latch ``node`` into custom register ``state`` at instruction end."""
        self.use_state(state)
        if any(s.name == state.name for s, _ in self.state_writes):
            raise TieSpecError(
                f"{self.mnemonic}: state {state.name!r} written twice",
                node=node.nid,
                category="state",
            )
        self.state_writes.append((state, node))

    # -- introspection ---------------------------------------------------------

    @property
    def reads_gpr(self) -> bool:
        """True when the datapath reads the generic register file."""
        return bool(self._sources_used)

    @property
    def writes_gpr(self) -> bool:
        return self.result_node is not None

    @property
    def accesses_gpr(self) -> bool:
        """True when the instruction touches the base register file at all
        (the condition for the paper's ``N_sd`` side-effect variable)."""
        return self.reads_gpr or self.writes_gpr

    def validate(self) -> None:
        """Check the spec is complete and well-formed (raises TieSpecError)."""
        _, has_rd, _ = _FORMAT_OPERANDS[self.fmt]
        if has_rd and self.result_node is None:
            raise TieSpecError(
                f"{self.mnemonic}: format {self.fmt} requires a result()", category="result"
            )
        if not has_rd and not self.state_writes:
            raise TieSpecError(
                f"{self.mnemonic}: instruction has no architectural effect", category="result"
            )
        if not self.nodes:
            raise TieSpecError(f"{self.mnemonic}: empty datapath", category="datapath")
        written = {s.name for s, _ in self.state_writes}
        read = {n.payload for n in self.nodes if n.kind == KIND_STATE}
        unused = set(self.states) - written - read
        if unused:
            raise TieSpecError(
                f"{self.mnemonic}: declared but unused state registers {sorted(unused)}",
                category="state",
            )

    # -- internals -----------------------------------------------------------

    def _next_id(self) -> int:
        return len(self.nodes)

    def _add(self, node: Node) -> Node:
        self.nodes.append(node)
        return node
