"""The TIE-substitute compiler: specs → executable, schedulable hardware.

Mirrors the role of the Tensilica TIE compiler in the paper's flow: from a
custom-instruction specification it derives

* the **schedule** — each operator node is placed in a pipeline cycle
  (``LEVELS_PER_CYCLE`` chained library operators per cycle), giving the
  instruction's issue latency;
* the **hardware instances** — one library component per operator node
  plus one custom register per state (shared across instructions by
  name), which the processor generator later drops into the netlist;
* the **activation profile** — which component is active in which cycle
  of an execution, the raw material of the structural macro-model
  variables;
* the **operand-bus taps** — components fed directly (through wiring
  only) by GPR operands.  These are spuriously activated by *base*
  instructions that drive the shared operand buses (paper Example 1);
* the executable :class:`~repro.isa.instructions.InstructionDef` used by
  the assembler and the instruction-set simulator.
"""

from __future__ import annotations

import dataclasses
from typing import Mapping

from ..hwlib import ComponentCategory, ComponentInstance
from ..isa.bits import mask
from ..isa.classes import InstructionClass
from ..isa.instructions import ExecContext, Instruction, InstructionDef
from .nodes import (
    KIND_CONST,
    KIND_GPR,
    KIND_IMM,
    KIND_STATE,
    Node,
    TieState,
    evaluate_node,
)
from .spec import TieSpec, TieSpecError

#: How many chained library operators fit in one pipeline cycle.  Six
#: levels per cycle makes typical TIE datapaths single-cycle — matching
#: real TIE practice, where most custom instructions fit the processor's
#: execute stage — while genuinely deep graphs (e.g. chained table-lookup
#: pipelines) still schedule over multiple cycles.
LEVELS_PER_CYCLE = 6


@dataclasses.dataclass(frozen=True)
class TieImplementation:
    """Everything the rest of the system needs to know about one custom
    instruction: its timing, hardware, activation profile and semantics."""

    spec: TieSpec
    latency: int
    instances: tuple[ComponentInstance, ...]
    #: instance name -> cycles (within one execution) in which it is active
    active_cycles: Mapping[str, tuple[int, ...]]
    #: category -> sum over instances of complexity x active-cycle count,
    #: per execution.  This is the structural-variable increment that one
    #: dynamic execution of the instruction contributes.
    per_exec_activity: Mapping[ComponentCategory, float]
    #: category -> raw instance-cycle count per execution (no complexity
    #: weighting) — used by the bit-width-law ablation study.
    per_exec_counts: Mapping[ComponentCategory, int]
    #: instance names whose inputs tap the shared GPR operand buses
    bus_tapped: tuple[str, ...]
    #: category -> summed complexity of bus-tapped instances (for the
    #: spurious-activation term of the structural variables)
    bus_tap_complexity: Mapping[ComponentCategory, float]
    #: category -> bus-tapped instance count (unweighted, for the ablation)
    bus_tap_counts: Mapping[ComponentCategory, int]
    instruction: InstructionDef

    @property
    def mnemonic(self) -> str:
        return self.spec.mnemonic

    @property
    def accesses_gpr(self) -> bool:
        return self.spec.accesses_gpr

    def instance_by_name(self, name: str) -> ComponentInstance:
        for instance in self.instances:
            if instance.name == name:
                return instance
        raise KeyError(f"{self.mnemonic}: no hardware instance named {name!r}")


def _node_levels(spec: TieSpec) -> dict[int, int]:
    """Logic level per node: leaves 0, wires transparent, ops +1."""
    levels: dict[int, int] = {}
    for node in spec.nodes:
        if node.kind in (KIND_GPR, KIND_IMM, KIND_STATE, KIND_CONST):
            levels[node.nid] = 0
        else:
            input_level = max((levels[i.nid] for i in node.inputs), default=0)
            levels[node.nid] = input_level if not node.is_hardware else input_level + 1
    return levels


def _bus_tapped_nodes(spec: TieSpec) -> set[int]:
    """Hardware nodes whose inputs reach a GPR leaf through wiring only."""
    sees_bus: dict[int, bool] = {}
    tapped: set[int] = set()
    for node in spec.nodes:
        if node.kind == KIND_GPR:
            sees_bus[node.nid] = True
        elif node.kind in (KIND_IMM, KIND_STATE, KIND_CONST):
            sees_bus[node.nid] = False
        elif node.is_hardware:
            if any(sees_bus[i.nid] for i in node.inputs):
                tapped.add(node.nid)
            sees_bus[node.nid] = False  # the component's output is behind logic
        else:  # wiring: transparent to the bus
            sees_bus[node.nid] = any(sees_bus[i.nid] for i in node.inputs)
    return tapped


def _instance_name(spec: TieSpec, node: Node) -> str:
    return f"{spec.mnemonic}/{node.op}{node.nid}"


def _state_instance_name(state: TieState) -> str:
    # State registers are shared across instructions by name, so their
    # instance name must not embed the owning spec.
    return f"state/{state.name}"


def _codegen_node(node: Node, v) -> "str | None":
    """Python expression for one operator node, or None when not handled.

    Mirrors :func:`repro.tie.nodes.evaluate_node` exactly — same masking,
    same signedness windows, same shift-amount modulus — with every width
    constant folded into the source.
    """

    def signed(expr: str, width: int) -> str:
        # inputs are already masked to their widths, so to_signed's
        # truncation is the identity here
        return f"({expr} - {1 << width} if {expr} & {1 << (width - 1)} else {expr})"

    m = mask(node.width)
    op = node.op
    ins = node.inputs
    a = v[ins[0].nid] if ins else ""
    b = v[ins[1].nid] if len(ins) > 1 else ""
    if op == "add":
        return f"({a} + {b}) & {m}"
    if op == "sub":
        return f"({a} - {b}) & {m}"
    if op in ("and", "or", "xor"):
        sym = {"and": "&", "or": "|", "xor": "^"}[op]
        return f"({a} {sym} {b}) & {m}"
    if op == "not":
        return f"(~{a}) & {m}"
    if op == "mux":
        sel, x, y = (v[i.nid] for i in ins)
        return f"(({x} if {sel} else {y})) & {m}"
    if op in ("eq", "ne", "lt_s", "lt_u", "ge_s", "ge_u"):
        if op.endswith("_s"):
            a = signed(a, ins[0].width)
            b = signed(b, ins[1].width)
        sym = {"eq": "==", "ne": "!=", "lt": "<", "ge": ">="}[op[:2]]
        return f"(1 if {a} {sym} {b} else 0)"
    if op in ("min_s", "min_u", "max_s", "max_u"):
        fn = op[:3]
        if op.endswith("_s"):
            a = signed(a, ins[0].width)
            b = signed(b, ins[1].width)
        return f"{fn}({a}, {b}) & {m}"
    if op in ("red_or", "red_and", "red_xor"):
        if op == "red_or":
            return f"(1 if {a} else 0)"
        if op == "red_and":
            return f"(1 if {a} == {mask(ins[0].width)} else 0)"
        return f"({a}).bit_count() & 1"
    if op in ("shl", "shr", "sar"):
        amount = f"({b} % {node.width})"
        if op == "shl":
            return f"({a} << {amount}) & {m}"
        if op == "shr":
            return f"({a} >> {amount}) & {m}"
        return f"({signed(a, ins[0].width)} >> {amount}) & {m}"
    if op in ("mul", "tie_mult"):
        return f"({a} * {b}) & {m}"
    if op == "tie_mac":
        return f"({a} * {b} + {v[ins[2].nid]}) & {m}"
    if op == "tie_add":
        return f"({' + '.join(v[i.nid] for i in ins)}) & {m}"
    if op == "csa_sum":
        c = v[ins[2].nid]
        return f"({a} ^ {b} ^ {c}) & {m}"
    if op == "csa_carry":
        c = v[ins[2].nid]
        return f"((({a} & {b}) | ({b} & {c}) | ({a} & {c})) << 1) & {m}"
    if op == "table":
        return f"_table_{node.nid}[{a} & {len(node.payload) - 1}] & {m}"
    if op == "concat":
        return f"(({a} << {ins[1].width}) | {b}) & {m}"
    if op == "slice":
        return f"({a} >> {node.payload}) & {m}"
    if op == "sext":
        return f"{signed(a, ins[0].width)} & {m}"
    if op == "zext":
        return f"{a} & {m}"
    return None


def _codegen_semantics(spec: TieSpec, state_inits: Mapping[str, int]):
    """Compile the dataflow graph to one flat Python closure, or None.

    The node-walking interpreter in :func:`_make_semantics` pays a kind
    dispatch, an input-list build and an evaluator call per node per
    retire; for the DSE/serving hot path that interpretive overhead
    dominates custom-heavy programs.  Nodes arrive in topological order
    (builders only reference already-added nodes), so the graph unrolls
    into straight-line assignments with all width masks pre-folded.
    """
    v = {node.nid: f"v{node.nid}" for node in spec.nodes}
    lines = ["def semantics(ctx, ins):", "    tie_state = ctx.tie_state"]
    namespace: dict = {"min": min, "max": max}
    for node in spec.nodes:
        if node.kind == KIND_GPR:
            field = "rs" if node.payload == "rs" else "rt"
            expr = f"ctx.get(ins.{field}) & {mask(node.width)}"
        elif node.kind == KIND_IMM:
            expr = f"(ins.imm or 0) & {mask(node.width)}"
        elif node.kind == KIND_STATE:
            expr = f"tie_state.get({node.payload!r}, {state_inits[node.payload]})"
        elif node.kind == KIND_CONST:
            expr = repr(node.payload & mask(node.width))
        else:
            expr = _codegen_node(node, v)
            if expr is None:
                return None
            if node.op == "table":
                namespace[f"_table_{node.nid}"] = tuple(node.payload)
        lines.append(f"    {v[node.nid]} = {expr}")
    # All reads above observe pre-instruction state; the write-back below
    # only uses the computed v-locals, so commits are effectively atomic.
    for state, node in spec.state_writes:
        lines.append(
            f"    tie_state[{state.name!r}] = {v[node.nid]} & {mask(spec.states[state.name].width)}"
        )
    if spec.result_node is not None:
        lines.append(f"    ctx.set(ins.rd, {v[spec.result_node.nid]} & 0xFFFFFFFF)")
    source = "\n".join(lines)
    exec(compile(source, f"<tie:{spec.mnemonic}>", "exec"), namespace)
    return namespace["semantics"]


def _make_semantics(spec: TieSpec, state_inits: Mapping[str, int]):
    """Build the executable semantics closure for a compiled spec.

    Prefers the flat generated form (:func:`_codegen_semantics`); the
    node-walking interpreter below remains the reference fallback for any
    graph the generator cannot express.
    """
    generated = _codegen_semantics(spec, state_inits)
    if generated is not None:
        generated.tie_straightline = True
        return generated
    nodes = tuple(spec.nodes)
    writes = tuple((state.name, node.nid) for state, node in spec.state_writes)
    result_nid = spec.result_node.nid if spec.result_node is not None else None

    def semantics(ctx: ExecContext, ins: Instruction) -> None:
        values: list[int] = [0] * len(nodes)
        tie_state = ctx.tie_state  # type: ignore[attr-defined]
        for node in nodes:
            if node.kind == KIND_GPR:
                reg = ins.rs if node.payload == "rs" else ins.rt
                values[node.nid] = ctx.get(reg) & mask(node.width)
            elif node.kind == KIND_IMM:
                values[node.nid] = (ins.imm or 0) & mask(node.width)
            elif node.kind == KIND_STATE:
                values[node.nid] = tie_state.get(node.payload, state_inits[node.payload])
            elif node.kind == KIND_CONST:
                values[node.nid] = node.payload
            else:
                values[node.nid] = evaluate_node(
                    node, [values[i.nid] for i in node.inputs]
                )
        # All reads observe pre-instruction state; writes commit together.
        pending = {name: values[nid] & mask(spec.states[name].width) for name, nid in writes}
        tie_state.update(pending)
        if result_nid is not None:
            ctx.set(ins.rd, values[result_nid] & 0xFFFFFFFF)

    # Straight-line contract marker: this closure never reads ``ctx.pc``,
    # never redirects control and never halts, so the superop compiler
    # (repro.xtcore.compiled) may fuse it into a block interior.  Hand
    # built custom semantics lack the marker and stay on the per-op path.
    semantics.tie_straightline = True
    return semantics


def compile_spec(spec: TieSpec) -> TieImplementation:
    """Compile a validated spec into a :class:`TieImplementation`."""
    spec.validate()
    levels = _node_levels(spec)
    max_level = max(levels.values(), default=0)
    latency = max(1, -(-max_level // LEVELS_PER_CYCLE))  # ceil division

    instances: list[ComponentInstance] = []
    active_cycles: dict[str, tuple[int, ...]] = {}

    for node in spec.nodes:
        if not node.is_hardware:
            continue
        name = _instance_name(spec, node)
        entries = len(node.payload) if node.op == "table" else 0
        instances.append(
            ComponentInstance(name=name, category=node.category, width=node.width, entries=entries)
        )
        cycle = (levels[node.nid] - 1) // LEVELS_PER_CYCLE
        active_cycles[name] = (cycle,)

    for state in spec.states.values():
        name = _state_instance_name(state)
        instances.append(
            ComponentInstance(name=name, category=ComponentCategory.CUSTOM_REG, width=state.width)
        )
        cycles: set[int] = set()
        if any(n.kind == KIND_STATE and n.payload == state.name for n in spec.nodes):
            cycles.add(0)  # read in the first execute cycle
        if any(s.name == state.name for s, _ in spec.state_writes):
            cycles.add(latency - 1)  # written in the last cycle
        active_cycles[name] = tuple(sorted(cycles))

    per_exec: dict[ComponentCategory, float] = {}
    per_exec_counts: dict[ComponentCategory, int] = {}
    for instance in instances:
        n_active = len(active_cycles[instance.name])
        weight = instance.complexity * n_active
        per_exec[instance.category] = per_exec.get(instance.category, 0.0) + weight
        per_exec_counts[instance.category] = per_exec_counts.get(instance.category, 0) + n_active

    tapped_nids = _bus_tapped_nodes(spec)
    tapped_names = tuple(
        _instance_name(spec, node) for node in spec.nodes if node.nid in tapped_nids
    )
    bus_tap: dict[ComponentCategory, float] = {}
    bus_tap_counts: dict[ComponentCategory, int] = {}
    by_name = {inst.name: inst for inst in instances}
    for name in tapped_names:
        instance = by_name[name]
        bus_tap[instance.category] = bus_tap.get(instance.category, 0.0) + instance.complexity
        bus_tap_counts[instance.category] = bus_tap_counts.get(instance.category, 0) + 1

    state_inits = {name: state.init for name, state in spec.states.items()}
    instruction = InstructionDef(
        mnemonic=spec.mnemonic,
        fmt=spec.fmt,
        iclass=InstructionClass.CUSTOM,
        semantics=_make_semantics(spec, state_inits),
        latency=latency,
        description=spec.description or f"custom instruction {spec.mnemonic}",
    )

    return TieImplementation(
        spec=spec,
        latency=latency,
        instances=tuple(instances),
        active_cycles=active_cycles,
        per_exec_activity=per_exec,
        per_exec_counts=per_exec_counts,
        bus_tapped=tapped_names,
        bus_tap_complexity=bus_tap,
        bus_tap_counts=bus_tap_counts,
        instruction=instruction,
    )


def compile_extension(specs: list[TieSpec]) -> list[TieImplementation]:
    """Compile a whole extension; checks cross-spec consistency.

    Shared state registers must be declared identically everywhere; custom
    mnemonics must be unique.
    """
    seen_mnemonics: set[str] = set()
    seen_states: dict[str, TieState] = {}
    implementations: list[TieImplementation] = []
    for spec in specs:
        if spec.mnemonic in seen_mnemonics:
            raise TieSpecError(
                f"duplicate custom mnemonic {spec.mnemonic!r} in extension", category="mnemonic"
            )
        seen_mnemonics.add(spec.mnemonic)
        for name, state in spec.states.items():
            existing = seen_states.get(name)
            if existing is not None and existing != state:
                raise TieSpecError(
                    f"state register {name!r} declared inconsistently across the extension",
                    category="state",
                )
            seen_states[name] = state
        implementations.append(compile_spec(spec))
    return implementations
