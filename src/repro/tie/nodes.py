"""Dataflow-graph nodes for custom-instruction (TIE-substitute) datapaths.

A custom instruction's behaviour is a directed acyclic graph of nodes.
Leaf nodes read instruction operands (GPR fields, immediates), custom
state registers, or constants; interior nodes are operators drawn from
the hardware component library (:mod:`repro.hwlib`); *wiring* nodes
(concatenation, slicing, extension) cost no hardware and no logic level.

Every node carries an explicit bit-width; evaluation works on unsigned
bit patterns, masking each result to the node width, so graph semantics
match what synthesized hardware of those widths would compute.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Optional, Sequence

from ..hwlib import ComponentCategory
from ..isa.bits import mask, to_signed, to_unsigned

#: node kinds
KIND_GPR = "gpr_in"
KIND_IMM = "imm_in"
KIND_STATE = "state_in"
KIND_CONST = "const"
KIND_OP = "op"
KIND_TABLE = "table"
KIND_WIRE = "wire"


@dataclasses.dataclass(frozen=True)
class TieState:
    """A custom register (paper category 5) shared by one or more specs.

    Instances compare by identity of ``name``; two specs that pass the
    same :class:`TieState` object (or equal-named ones) share the same
    physical register and simulation state.
    """

    name: str
    width: int
    init: int = 0

    def __post_init__(self) -> None:
        if self.width <= 0:
            raise ValueError(f"state register {self.name!r}: width must be positive")
        if not 0 <= self.init <= mask(self.width):
            raise ValueError(f"state register {self.name!r}: init value out of range")


class Node:
    """One vertex of a custom-instruction dataflow graph."""

    __slots__ = ("nid", "kind", "width", "op", "category", "inputs", "payload")

    def __init__(
        self,
        nid: int,
        kind: str,
        width: int,
        op: str = "",
        category: Optional[ComponentCategory] = None,
        inputs: Sequence["Node"] = (),
        payload: object = None,
    ) -> None:
        if width <= 0:
            raise ValueError(f"node {nid} ({op or kind}): width must be positive")
        self.nid = nid
        self.kind = kind
        self.width = width
        self.op = op
        self.category = category
        self.inputs = tuple(inputs)
        self.payload = payload

    @property
    def is_hardware(self) -> bool:
        """True when this node maps to a physical library component."""
        return self.category is not None

    def __repr__(self) -> str:
        label = self.op or self.kind
        return f"Node({self.nid}, {label}, w={self.width})"


# ---------------------------------------------------------------------------
# Operator evaluation.  Each entry maps an op name to
# fn(input_values, node) -> unsigned result (later masked to node.width).
# ---------------------------------------------------------------------------


def _signed(value: int, width: int) -> int:
    return to_signed(value, width)


def _eval_mux(vals: Sequence[int], node: Node) -> int:
    sel, a, b = vals
    return a if sel else b


def _eval_slice(vals: Sequence[int], node: Node) -> int:
    low = node.payload
    return vals[0] >> low


def _eval_concat(vals: Sequence[int], node: Node) -> int:
    hi, lo = vals
    lo_width = node.inputs[1].width
    return (hi << lo_width) | lo


def _eval_sext(vals: Sequence[int], node: Node) -> int:
    src_width = node.inputs[0].width
    return to_unsigned(to_signed(vals[0], src_width), node.width)


def _eval_table(vals: Sequence[int], node: Node) -> int:
    data: tuple[int, ...] = node.payload
    return data[vals[0] & (len(data) - 1)]


def _eval_shift(kind: str) -> Callable[[Sequence[int], Node], int]:
    def evaluate(vals: Sequence[int], node: Node) -> int:
        value, amount = vals[0], vals[1] % node.width
        if kind == "shl":
            return value << amount
        if kind == "shr":
            return value >> amount
        # arithmetic right shift over the *input* width
        return to_unsigned(to_signed(value, node.inputs[0].width) >> amount, node.width)

    return evaluate


def _cmp(kind: str) -> Callable[[Sequence[int], Node], int]:
    def evaluate(vals: Sequence[int], node: Node) -> int:
        w = node.inputs[0].width
        a, b = vals
        if kind.endswith("_s"):
            a, b = _signed(a, w), _signed(b, node.inputs[1].width)
        if kind.startswith("eq"):
            return int(a == b)
        if kind.startswith("ne"):
            return int(a != b)
        if kind.startswith("lt"):
            return int(a < b)
        return int(a >= b)

    return evaluate


def _minmax(kind: str) -> Callable[[Sequence[int], Node], int]:
    def evaluate(vals: Sequence[int], node: Node) -> int:
        a, b = vals
        if kind.endswith("_s"):
            sa = _signed(a, node.inputs[0].width)
            sb = _signed(b, node.inputs[1].width)
            chosen = min(sa, sb) if kind.startswith("min") else max(sa, sb)
            return to_unsigned(chosen, node.width)
        return min(a, b) if kind.startswith("min") else max(a, b)

    return evaluate


def _reduce(kind: str) -> Callable[[Sequence[int], Node], int]:
    def evaluate(vals: Sequence[int], node: Node) -> int:
        value = vals[0]
        width = node.inputs[0].width
        if kind == "red_or":
            return int(value != 0)
        if kind == "red_and":
            return int(value == mask(width))
        return value.bit_count() & 1  # red_xor: parity

    return evaluate


EVALUATORS: dict[str, Callable[[Sequence[int], Node], int]] = {
    # category ADD_SUB_CMP
    "add": lambda v, n: v[0] + v[1],
    "sub": lambda v, n: v[0] - v[1],
    "eq": _cmp("eq"),
    "ne": _cmp("ne"),
    "lt_s": _cmp("lt_s"),
    "lt_u": _cmp("lt_u"),
    "ge_s": _cmp("ge_s"),
    "ge_u": _cmp("ge_u"),
    "min_s": _minmax("min_s"),
    "min_u": _minmax("min_u"),
    "max_s": _minmax("max_s"),
    "max_u": _minmax("max_u"),
    # category LOGIC_RED_MUX
    "and": lambda v, n: v[0] & v[1],
    "or": lambda v, n: v[0] | v[1],
    "xor": lambda v, n: v[0] ^ v[1],
    "not": lambda v, n: ~v[0],
    "mux": _eval_mux,
    "red_or": _reduce("red_or"),
    "red_and": _reduce("red_and"),
    "red_xor": _reduce("red_xor"),
    # category SHIFTER
    "shl": _eval_shift("shl"),
    "shr": _eval_shift("shr"),
    "sar": _eval_shift("sar"),
    # category MULT / specialized TIE modules
    "mul": lambda v, n: v[0] * v[1],
    "tie_mult": lambda v, n: v[0] * v[1],
    "tie_mac": lambda v, n: v[0] * v[1] + v[2],
    "tie_add": lambda v, n: sum(v),
    "csa_sum": lambda v, n: v[0] ^ v[1] ^ v[2],
    "csa_carry": lambda v, n: ((v[0] & v[1]) | (v[1] & v[2]) | (v[0] & v[2])) << 1,
    # category TABLE
    "table": _eval_table,
    # zero-cost wiring
    "concat": _eval_concat,
    "slice": _eval_slice,
    "sext": _eval_sext,
    "zext": lambda v, n: v[0],
}

#: op name -> component category (wiring ops are absent: no hardware).
OP_CATEGORY: dict[str, ComponentCategory] = {
    "add": ComponentCategory.ADD_SUB_CMP,
    "sub": ComponentCategory.ADD_SUB_CMP,
    "eq": ComponentCategory.ADD_SUB_CMP,
    "ne": ComponentCategory.ADD_SUB_CMP,
    "lt_s": ComponentCategory.ADD_SUB_CMP,
    "lt_u": ComponentCategory.ADD_SUB_CMP,
    "ge_s": ComponentCategory.ADD_SUB_CMP,
    "ge_u": ComponentCategory.ADD_SUB_CMP,
    "min_s": ComponentCategory.ADD_SUB_CMP,
    "min_u": ComponentCategory.ADD_SUB_CMP,
    "max_s": ComponentCategory.ADD_SUB_CMP,
    "max_u": ComponentCategory.ADD_SUB_CMP,
    "and": ComponentCategory.LOGIC_RED_MUX,
    "or": ComponentCategory.LOGIC_RED_MUX,
    "xor": ComponentCategory.LOGIC_RED_MUX,
    "not": ComponentCategory.LOGIC_RED_MUX,
    "mux": ComponentCategory.LOGIC_RED_MUX,
    "red_or": ComponentCategory.LOGIC_RED_MUX,
    "red_and": ComponentCategory.LOGIC_RED_MUX,
    "red_xor": ComponentCategory.LOGIC_RED_MUX,
    "shl": ComponentCategory.SHIFTER,
    "shr": ComponentCategory.SHIFTER,
    "sar": ComponentCategory.SHIFTER,
    "mul": ComponentCategory.MULT,
    "tie_mult": ComponentCategory.TIE_MULT,
    "tie_mac": ComponentCategory.TIE_MAC,
    "tie_add": ComponentCategory.TIE_ADD,
    "csa_sum": ComponentCategory.TIE_CSA,
    "csa_carry": ComponentCategory.TIE_CSA,
    "table": ComponentCategory.TABLE,
}

#: ops that are pure wiring: no hardware instance, no logic level.
WIRING_OPS = frozenset({"concat", "slice", "sext", "zext"})


def evaluate_node(node: Node, values: Sequence[int]) -> int:
    """Evaluate one operator/wire node given its input values."""
    evaluator = EVALUATORS.get(node.op)
    if evaluator is None:
        raise KeyError(f"no evaluator for op {node.op!r}")
    return evaluator(values, node) & mask(node.width)
