"""``repro.tie`` — TIE-substitute custom instruction framework.

Define a custom instruction with :class:`TieSpec`, compile it with
:func:`compile_spec` (or a whole extension with :func:`compile_extension`)
and hand the result to :class:`repro.xtcore.ProcessorConfig`.
"""

from .compiler import (
    LEVELS_PER_CYCLE,
    TieImplementation,
    compile_extension,
    compile_spec,
)
from .nodes import Node, TieState, evaluate_node
from .spec import TieSpec, TieSpecError

__all__ = [
    "LEVELS_PER_CYCLE",
    "Node",
    "TieImplementation",
    "TieSpec",
    "TieSpecError",
    "TieState",
    "compile_extension",
    "compile_spec",
    "evaluate_node",
]
