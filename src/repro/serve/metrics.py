"""Service observability: counters, latency percentiles, cache rates.

Three layers feed ``GET /metrics``:

* **request accounting** in the event loop — totals per endpoint and
  outcome, duplicate suppression (coalesced vs. memo), backpressure
  rejections, timeouts, queue depth;
* **latency windows** — bounded reservoirs of recent request latencies
  per endpoint, reduced to p50/p95/mean on demand;
* **simulation tallies** — a :class:`ServiceMetricsObserver` (the
  :mod:`repro.obs` protocol's :class:`~repro.obs.tally.RunTallyObserver`
  plus nothing service-specific yet) rides along every worker-side
  ``run_session``; workers ship its ``snapshot()`` back with their
  results and the parent merges them, so instruction/cycle throughput is
  exact even though simulations happen in forked children.

Everything renders twice: a JSON payload (the default, what smoke tests
assert against) and a Prometheus text exposition (``?format=prom``).
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Optional

from ..obs.tally import RunTallyObserver


class ServiceMetricsObserver(RunTallyObserver):
    """Per-worker simulation tally shipped back to the service frontend.

    Subscribes to the simulator's event stream via the
    :class:`~repro.obs.protocol.SimObserver` protocol with the per-retire
    stream switched off, so instrumenting every service request costs two
    callbacks per run regardless of run length.
    """


class LatencyWindow:
    """A bounded reservoir of recent latencies with percentile reduction."""

    def __init__(self, maxlen: int = 2048) -> None:
        self._samples: deque[float] = deque(maxlen=maxlen)
        self.count = 0

    def record(self, seconds: float) -> None:
        self._samples.append(seconds)
        self.count += 1

    def percentile(self, p: float) -> float:
        """Nearest-rank percentile (``p`` in [0, 100]) over the window."""
        if not self._samples:
            return 0.0
        ordered = sorted(self._samples)
        rank = max(0, min(len(ordered) - 1, round(p / 100.0 * (len(ordered) - 1))))
        return ordered[rank]

    def snapshot(self) -> dict:
        samples = list(self._samples)
        mean = sum(samples) / len(samples) if samples else 0.0
        return {
            "count": self.count,
            "window": len(samples),
            "mean_ms": mean * 1e3,
            "p50_ms": self.percentile(50) * 1e3,
            "p95_ms": self.percentile(95) * 1e3,
        }


class ServiceMetrics:
    """The service-wide metrics registry behind ``/healthz`` and ``/metrics``."""

    COUNTERS = (
        "requests_total",
        "estimate_requests",
        "explore_requests",
        "responses_ok",
        "responses_error",
        "coalesced_total",
        "memo_hits_total",
        "disk_cache_hits_total",
        "rejected_total",
        "timeouts_total",
        "retries_total",
        "batches_dispatched",
        "batched_requests",
        "failures_total",
        # -- supervision / self-healing (see repro.serve.supervise) --------
        "pool_restarts_total",
        "worker_crashes_total",
        "worker_hangs_total",
        "quarantined_total",
        "quarantine_rejections_total",
        "deadline_shed_total",
        "breaker_trips_total",
        "degraded_batches_total",
        "drain_rejected_total",
        "chaos_injected_total",
    )

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.started_at = time.time()
        self.counters: dict[str, int] = {name: 0 for name in self.COUNTERS}
        self.queue_depth = 0
        self.inflight = 0
        self.latency = {"estimate": LatencyWindow(), "explore": LatencyWindow()}
        self.sim_tally = RunTallyObserver()
        #: requests per operating-point key ("fit-point" = no point given)
        self.operating_points: dict[str, int] = {}

    # -- mutation ----------------------------------------------------------

    def incr(self, name: str, amount: int = 1) -> None:
        with self._lock:
            self.counters[name] = self.counters.get(name, 0) + amount

    def set_gauge(self, name: str, value: int) -> None:
        with self._lock:
            setattr(self, name, value)

    def observe_latency(self, endpoint: str, seconds: float) -> None:
        with self._lock:
            self.latency[endpoint].record(seconds)

    def observe_operating_point(self, point: Optional[str]) -> None:
        """Count one request against its operating point."""
        label = point if point is not None else "fit-point"
        with self._lock:
            self.operating_points[label] = self.operating_points.get(label, 0) + 1

    def merge_sim_snapshot(self, snapshot: dict) -> None:
        """Fold a worker-side :class:`ServiceMetricsObserver` snapshot in."""
        with self._lock:
            self.sim_tally.merge(snapshot)

    # -- derived -----------------------------------------------------------

    @property
    def duplicates_merged(self) -> int:
        """Requests answered without a fresh simulation (coalesced or memo).

        The serve smoke asserts on this: two duplicate requests must
        merge no matter whether the second arrived while the first was
        in flight (coalesced) or after it completed (memo hit).
        """
        with self._lock:
            return (
                self.counters["coalesced_total"]
                + self.counters["memo_hits_total"]
                + self.counters["disk_cache_hits_total"]
            )

    def to_payload(
        self,
        compilation_cache: Optional[dict] = None,
        result_cache: Optional[dict] = None,
        supervision: Optional[dict] = None,
        admission: Optional[dict] = None,
    ) -> dict:
        with self._lock:
            payload = {
                "uptime_seconds": time.time() - self.started_at,
                "counters": dict(self.counters),
                "queue_depth": self.queue_depth,
                "inflight": self.inflight,
                "latency": {
                    name: window.snapshot() for name, window in self.latency.items()
                },
                "simulation": self.sim_tally.snapshot(),
                "operating_points": dict(self.operating_points),
            }
        payload["counters"]["duplicates_merged"] = (
            payload["counters"]["coalesced_total"]
            + payload["counters"]["memo_hits_total"]
            + payload["counters"]["disk_cache_hits_total"]
        )
        caches: dict = {}
        if compilation_cache is not None:
            hits = compilation_cache.get("hits", 0)
            misses = compilation_cache.get("misses", 0)
            total = hits + misses
            caches["compilation"] = {
                **compilation_cache,
                "hit_rate": (hits / total) if total else 0.0,
            }
        if result_cache is not None:
            hits = result_cache.get("hits", 0)
            misses = result_cache.get("misses", 0)
            total = hits + misses
            caches["results"] = {
                **result_cache,
                "hit_rate": (hits / total) if total else 0.0,
            }
        payload["caches"] = caches
        if supervision is not None:
            payload["supervision"] = supervision
        if admission is not None:
            payload["admission"] = admission
        return payload


def render_prometheus(payload: dict) -> str:
    """Flatten a :meth:`ServiceMetrics.to_payload` dict to Prometheus text."""
    lines: list[str] = []

    def emit(name: str, value: float, labels: str = "") -> None:
        if isinstance(value, float):
            lines.append(f"repro_serve_{name}{labels} {value:.6g}")
        else:
            lines.append(f"repro_serve_{name}{labels} {value}")

    emit("uptime_seconds", payload["uptime_seconds"])
    for name, value in sorted(payload["counters"].items()):
        emit(name, value)
    emit("queue_depth", payload["queue_depth"])
    emit("inflight", payload["inflight"])
    for endpoint, window in sorted(payload["latency"].items()):
        labels = f'{{endpoint="{endpoint}"}}'
        emit("latency_requests", window["count"], labels)
        emit("latency_p50_ms", window["p50_ms"], labels)
        emit("latency_p95_ms", window["p95_ms"], labels)
        emit("latency_mean_ms", window["mean_ms"], labels)
    for name, value in sorted(payload["simulation"].items()):
        emit(f"sim_{name}", value)
    for point, count in sorted(payload.get("operating_points", {}).items()):
        emit("operating_point_requests", count, f'{{point="{point}"}}')
    for cache_name, info in sorted(payload.get("caches", {}).items()):
        labels = f'{{cache="{cache_name}"}}'
        for field in (
            "hits",
            "misses",
            "hit_rate",
            "entries",
            "stores",
            "evictions",
            "corrupt_entries",
            "promotions",
        ):
            if field in info:
                emit(f"cache_{field}", info[field], labels)
        # per-tier breakdown (compilation cache: ops vs superop lowering)
        for tier_name, tier in sorted(info.get("tiers", {}).items()):
            tier_labels = f'{{cache="{cache_name}",tier="{tier_name}"}}'
            for field in ("hits", "misses", "entries", "compilations", "evictions"):
                if field in tier:
                    emit(f"cache_tier_{field}", tier[field], tier_labels)
    admission = payload.get("admission")
    if admission:
        emit("admission_queue_depth", admission.get("queue_depth", 0))
        emit("admission_queue_limit", admission.get("queue_limit", 0))
        emit("admission_retry_after_seconds", admission.get("retry_after_s", 0))
        drain = admission.get("drain", {})
        if "rate_per_s" in drain:
            emit("admission_drain_rate", drain["rate_per_s"])
        explore_drain = admission.get("explore_drain", {})
        if "rate_per_s" in explore_drain:
            emit("admission_explore_drain_rate", explore_drain["rate_per_s"])
    supervision = payload.get("supervision")
    if supervision:
        from .supervise import BREAKER_STATE_CODES

        breaker = supervision.get("breaker", {})
        if "state" in breaker:
            emit("breaker_state", BREAKER_STATE_CODES.get(breaker["state"], -1))
        quarantine = supervision.get("quarantine", {})
        if "held" in quarantine:
            emit("quarantine_held", quarantine["held"])
        pool = supervision.get("pool", {})
        for field in ("restarts", "generation"):
            if field in pool:
                emit(f"pool_{field}", pool[field])
    return "\n".join(lines) + "\n"
