"""The estimation service: routing, policy, lifecycle.

:class:`EstimationService` owns the whole request path —

    parse → resolve (config, program) → content-address → dedupe
    (memo / in-flight / shared disk cache) → bounded queue → windowed
    batch → forked worker pool → resolve coalesced waiters → memoize

— and exposes it over four endpoints:

========================  ===================================================
``POST /estimate``        macro-model energy of one program (coalesced+batched)
``POST /explore``         one DSE run over a bundled space (pool-dispatched)
``GET  /healthz``         liveness + queue/pool posture
``GET  /metrics``         counters, p50/p95 latency, cache rates (JSON or prom)
========================  ===================================================

Backpressure is explicit: a full queue answers ``429`` with a
``Retry-After`` header instead of buffering unboundedly.  Per-batch
timeouts reuse the characterization :class:`~repro.core.runner.RetryPolicy`
— a timed-out batch is retried with the policy's lowered instruction
budget, and a batch that exhausts its attempts resolves every waiter
with a :class:`~repro.core.runner.SampleFailure`-shaped ``504``.

:class:`EstimationServer` is the thin asyncio TCP transport around the
service; :func:`run_server` adds signal-driven graceful shutdown for the
``repro serve`` CLI.
"""

from __future__ import annotations

import asyncio
import contextlib
import time
from collections import deque
from typing import Optional, Sequence

from ..core.model import EnergyMacroModel
from ..core.runner import RetryPolicy, SampleFailure
from ..dse.cache import ResultCache, model_digest
from .api import (
    ApiError,
    EstimateRequest,
    parse_estimate,
    parse_explore,
    request_key,
)
from .batching import BatchQueue, Coalescer, Job, partition_compatible
from .http import (
    HttpProtocolError,
    HttpRequest,
    json_response,
    read_request,
    text_response,
)
from .metrics import ServiceMetrics, render_prometheus
from .pool import WorkerPool, resolve_workload


class EstimationService:
    """Transport-independent service core (see module docstring)."""

    def __init__(
        self,
        model: EnergyMacroModel,
        *,
        workers: int = 0,
        queue_limit: int = 64,
        batch_max: int = 8,
        batch_window: float = 0.005,
        dedupe: bool = True,
        memo_size: int = 4096,
        cache_dir: Optional[str] = None,
        retry: Optional[RetryPolicy] = None,
        request_timeout: float = 30.0,
        explore_timeout: float = 600.0,
        prewarm: Sequence[str] = (),
    ) -> None:
        if batch_max < 1:
            raise ValueError(f"batch_max must be >= 1, got {batch_max}")
        if request_timeout <= 0 or explore_timeout <= 0:
            raise ValueError("timeouts must be positive")
        self.model = model
        self.model_digest = model_digest(model)
        self.dedupe = dedupe
        self.batch_max = batch_max
        self.batch_window = batch_window
        self.request_timeout = request_timeout
        self.explore_timeout = explore_timeout
        self.retry = retry if retry is not None else RetryPolicy(max_attempts=2)
        self.metrics = ServiceMetrics()
        self.coalescer = Coalescer(memo_size if dedupe else 0)
        self.pool = WorkerPool(model, workers=workers, prewarm=prewarm)
        self.result_cache = ResultCache(cache_dir) if cache_dir else None
        self.queue = BatchQueue(queue_limit)
        #: most recent contained failures, for /healthz debugging
        self.failures: deque[SampleFailure] = deque(maxlen=64)
        self._dispatcher: Optional[asyncio.Task] = None
        self._batch_tasks: set[asyncio.Task] = set()
        self._active_explores = 0
        self._draining = False

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> None:
        if self._dispatcher is None:
            self._dispatcher = asyncio.create_task(
                self._dispatch_loop(), name="repro-serve-dispatcher"
            )

    async def stop(self) -> None:
        self._draining = True
        if self._dispatcher is not None:
            self._dispatcher.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await self._dispatcher
            self._dispatcher = None
        for task in list(self._batch_tasks):
            task.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await task
        self.pool.shutdown()

    # -- HTTP dispatch -----------------------------------------------------

    async def dispatch_http(self, request: HttpRequest) -> bytes:
        keep_alive = request.keep_alive
        try:
            status, payload, headers = await self._route(request)
        except HttpProtocolError as exc:
            return json_response(
                exc.status,
                {"error": "protocol", "message": str(exc)},
                keep_alive=False,
            )
        except ApiError as exc:
            self.metrics.incr("responses_error")
            return json_response(
                exc.status, exc.to_payload(), exc.headers, keep_alive=keep_alive
            )
        except Exception as exc:  # noqa: BLE001 — a request must never kill the loop
            self.metrics.incr("responses_error")
            return json_response(
                500,
                {"error": "internal", "message": f"{type(exc).__name__}: {exc}"},
                keep_alive=keep_alive,
            )
        if isinstance(payload, str):
            return text_response(status, payload, keep_alive=keep_alive)
        return json_response(status, payload, headers, keep_alive=keep_alive)

    async def _route(self, request: HttpRequest):
        path, method = request.path, request.method
        if path == "/healthz":
            if method != "GET":
                raise ApiError(405, "use GET /healthz", code="method_not_allowed")
            return 200, self.health_payload(), None
        if path == "/metrics":
            if method != "GET":
                raise ApiError(405, "use GET /metrics", code="method_not_allowed")
            payload = self.metrics_payload()
            if request.query.get("format") == "prom":
                return 200, render_prometheus(payload), None
            return 200, payload, None
        if path == "/estimate":
            if method != "POST":
                raise ApiError(405, "use POST /estimate", code="method_not_allowed")
            return await self._handle_estimate(request.json())
        if path == "/explore":
            if method != "POST":
                raise ApiError(405, "use POST /explore", code="method_not_allowed")
            return await self._handle_explore(request.json())
        raise ApiError(404, f"no such endpoint {path!r}", code="not_found")

    # -- introspection endpoints -------------------------------------------

    def health_payload(self) -> dict:
        return {
            "status": "draining" if self._draining else "ok",
            "uptime_seconds": time.time() - self.metrics.started_at,
            "pool": {
                "mode": self.pool.mode,
                "workers": self.pool.workers,
                "prewarmed": self.pool.prewarmed,
            },
            "queue": {"depth": self.queue.qsize(), "limit": self.queue.maxsize},
            "inflight": self.coalescer.inflight_count,
            "recent_failures": [failure.describe() for failure in self.failures],
        }

    def metrics_payload(self) -> dict:
        from ..xtcore import compilation_cache

        return self.metrics.to_payload(
            compilation_cache=compilation_cache().info(),
            result_cache=(
                self.result_cache.info() if self.result_cache is not None else None
            ),
        )

    # -- estimate path -----------------------------------------------------

    async def _handle_estimate(self, body: object):
        began = time.perf_counter()
        self.metrics.incr("requests_total")
        self.metrics.incr("estimate_requests")
        req = parse_estimate(body)
        if req.benchmark is not None:
            item = {"benchmark": req.benchmark, "max_instructions": req.max_instructions}
        else:
            item = {
                "name": req.name,
                "source": req.source,
                "extensions": list(req.extensions),
                "max_instructions": req.max_instructions,
            }
        try:
            config, program = resolve_workload(item)
        except ApiError:
            raise
        except Exception as exc:  # noqa: BLE001 — bad workload == bad request
            raise ApiError(400, f"cannot build workload: {exc}", code="bad_workload")
        key = request_key(self.model_digest, config, program, req.max_instructions)
        payload, dedup = await self._obtain(key, config.fingerprint(), item)
        status, response = self._estimate_response(req, key, payload, dedup)
        self.metrics.observe_latency("estimate", time.perf_counter() - began)
        self.metrics.incr("responses_ok" if status == 200 else "responses_error")
        return status, response, None

    async def _obtain(self, key: str, group: str, item: dict):
        """Answer one keyed estimate: memo, coalesce, disk cache, or enqueue."""
        if self.dedupe:
            memo = self.coalescer.find_memo(key)
            if memo is not None:
                self.metrics.incr("memo_hits_total")
                return memo, "memo"
            inflight = self.coalescer.find_inflight(key)
            if inflight is not None:
                self.metrics.incr("coalesced_total")
                return await asyncio.shield(inflight.future), "coalesced"
        if self.result_cache is not None:
            stored = self.result_cache.get(key)
            if stored is not None:
                payload = {**stored, "ok": True}
                self.metrics.incr("disk_cache_hits_total")
                if self.dedupe:
                    self.coalescer.close(key, payload)  # promote to memo
                return payload, "disk"
        job = Job(
            key=key,
            group=group,
            item=item,
            future=asyncio.get_running_loop().create_future(),
        )
        if self.dedupe:
            self.coalescer.open(job)
        try:
            self.queue.put_nowait(job)
        except asyncio.QueueFull:
            if self.dedupe:
                self.coalescer.close(key)
            self.metrics.incr("rejected_total")
            raise ApiError(
                429,
                f"estimation queue is full ({self.queue.maxsize} pending)",
                code="overloaded",
                headers={"Retry-After": "1"},
            )
        self.metrics.set_gauge("queue_depth", self.queue.qsize())
        return await asyncio.shield(job.future), "fresh"

    def _estimate_response(
        self, req: EstimateRequest, key: str, payload: dict, dedup: str
    ):
        if payload.get("ok"):
            response = {
                "program": req.name,
                "processor": payload["processor"],
                "energy": payload["energy"],
                "cycles": payload["cycles"],
                "edp": payload["energy"] * payload["cycles"],
                "area": payload.get("area", 0.0),
                "key": key,
                "dedup": dedup,
            }
            if req.variables and "variables" in payload:
                response["variables"] = payload["variables"]
            return 200, response
        status = 504 if payload.get("stage") == "timeout" else 500
        if payload.get("stage") == "build":
            status = 400
        return status, {
            "error": "estimation_failed",
            "stage": payload.get("stage", "?"),
            "error_type": payload.get("error_type", "?"),
            "message": payload.get("message", ""),
            "key": key,
            "dedup": dedup,
        }

    # -- explore path ------------------------------------------------------

    async def _handle_explore(self, body: object):
        began = time.perf_counter()
        self.metrics.incr("requests_total")
        self.metrics.incr("explore_requests")
        req = parse_explore(body)
        if self._active_explores >= self.pool.workers:
            self.metrics.incr("rejected_total")
            raise ApiError(
                429,
                f"all {self.pool.workers} worker(s) busy with explorations",
                code="overloaded",
                headers={"Retry-After": "5"},
            )
        item = {
            "space": req.space,
            "strategy": req.strategy,
            "budget": req.budget,
            "seed": req.seed,
            "objective": req.objective,
            "max_instructions": req.max_instructions,
            "top_k": req.top_k,
            "cache_root": self.result_cache.root if self.result_cache else None,
        }
        self._active_explores += 1
        try:
            future = self.pool.submit_explore(item)
            try:
                outcome = await asyncio.wait_for(
                    asyncio.wrap_future(future), self.explore_timeout
                )
            except asyncio.TimeoutError:
                future.cancel()
                self.metrics.incr("timeouts_total")
                failure = SampleFailure(
                    name=f"explore:{req.space}",
                    processor_name="",
                    stage="timeout",
                    error_type="TimeoutError",
                    message=f"exploration exceeded {self.explore_timeout}s",
                    attempts=1,
                )
                self._record_failure(failure)
                raise ApiError(504, failure.describe(), code="timeout")
        finally:
            self._active_explores -= 1
        elapsed = time.perf_counter() - began
        self.metrics.observe_latency("explore", elapsed)
        if not outcome.get("ok"):
            self.metrics.incr("responses_error")
            failure = SampleFailure(
                name=f"explore:{req.space}",
                processor_name="",
                stage=outcome.get("stage", "explore"),
                error_type=outcome.get("error_type", "?"),
                message=outcome.get("message", ""),
                attempts=1,
            )
            self._record_failure(failure)
            bad_request = failure.error_type in ("SpaceError", "ValueError")
            return (
                400 if bad_request else 500,
                {
                    "error": "exploration_failed",
                    "stage": failure.stage,
                    "error_type": failure.error_type,
                    "message": failure.message,
                },
                None,
            )
        self.metrics.incr("responses_ok")
        return 200, outcome["report"], None

    # -- batch dispatch ----------------------------------------------------

    async def _dispatch_loop(self) -> None:
        while True:
            jobs = await self.queue.next_batch(self.batch_max, self.batch_window)
            self.metrics.set_gauge("queue_depth", self.queue.qsize())
            for group in partition_compatible(jobs):
                task = asyncio.create_task(self._run_batch(group))
                self._batch_tasks.add(task)
                task.add_done_callback(self._batch_tasks.discard)

    async def _run_batch(self, jobs: list[Job]) -> None:
        self.metrics.incr("batches_dispatched")
        self.metrics.incr("batched_requests", len(jobs))
        self.metrics.set_gauge("inflight", self.coalescer.inflight_count)
        attempt = 0
        outcome: Optional[dict] = None
        while outcome is None:
            attempt += 1
            items = [
                {
                    **job.item,
                    "max_instructions": self.retry.budget_for(
                        attempt, job.item["max_instructions"]
                    ),
                }
                for job in jobs
            ]
            future = self.pool.submit_estimate_batch(items)
            try:
                outcome = await asyncio.wait_for(
                    asyncio.wrap_future(future), self.request_timeout
                )
            except asyncio.TimeoutError:
                future.cancel()
                self.metrics.incr("timeouts_total")
                if attempt >= self.retry.max_attempts:
                    self._fail_batch(
                        jobs,
                        stage="timeout",
                        error_type="TimeoutError",
                        message=(
                            f"batch of {len(jobs)} timed out after {attempt} "
                            f"attempt(s) of {self.request_timeout}s"
                        ),
                        attempts=attempt,
                    )
                    return
                self.metrics.incr("retries_total")
            except Exception as exc:  # noqa: BLE001 — a dead pool must not hang waiters
                self._fail_batch(
                    jobs,
                    stage="dispatch",
                    error_type=type(exc).__name__,
                    message=str(exc),
                    attempts=attempt,
                )
                return
        for job, payload in zip(jobs, outcome["results"]):
            if payload.get("ok"):
                if self.dedupe:
                    self.coalescer.close(job.key, payload)
                if self.result_cache is not None:
                    stored = {k: v for k, v in payload.items() if k != "ok"}
                    self.result_cache.put(job.key, stored)
            else:
                if self.dedupe:
                    self.coalescer.close(job.key)
                self._record_failure(
                    SampleFailure(
                        name=job.item.get("benchmark") or job.item.get("name", "?"),
                        processor_name="",
                        stage=payload.get("stage", "?"),
                        error_type=payload.get("error_type", "?"),
                        message=payload.get("message", ""),
                        attempts=attempt,
                    )
                )
            if not job.future.done():
                job.future.set_result(payload)
        self.metrics.merge_sim_snapshot(outcome.get("tally", {}))
        self.metrics.set_gauge("inflight", self.coalescer.inflight_count)

    def _fail_batch(
        self, jobs: list[Job], stage: str, error_type: str, message: str, attempts: int
    ) -> None:
        for job in jobs:
            if self.dedupe:
                self.coalescer.close(job.key)
            self._record_failure(
                SampleFailure(
                    name=job.item.get("benchmark") or job.item.get("name", "?"),
                    processor_name="",
                    stage=stage,
                    error_type=error_type,
                    message=message,
                    attempts=attempts,
                )
            )
            if not job.future.done():
                job.future.set_result(
                    {
                        "ok": False,
                        "stage": stage,
                        "error_type": error_type,
                        "message": message,
                    }
                )
        self.metrics.set_gauge("inflight", self.coalescer.inflight_count)

    def _record_failure(self, failure: SampleFailure) -> None:
        self.metrics.incr("failures_total")
        self.failures.append(failure)


class EstimationServer:
    """asyncio TCP transport around one :class:`EstimationService`."""

    def __init__(
        self, service: EstimationService, host: str = "127.0.0.1", port: int = 0
    ) -> None:
        self.service = service
        self.host = host
        self.port = port
        self._server: Optional[asyncio.AbstractServer] = None

    async def start(self) -> None:
        await self.service.start()
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        await self.service.stop()

    @property
    def address(self) -> str:
        return f"http://{self.host}:{self.port}"

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                try:
                    request = await read_request(reader)
                except HttpProtocolError as exc:
                    writer.write(
                        json_response(
                            exc.status,
                            {"error": "protocol", "message": str(exc)},
                            keep_alive=False,
                        )
                    )
                    await writer.drain()
                    break
                if request is None:
                    break
                writer.write(await self.service.dispatch_http(request))
                await writer.drain()
                if not request.keep_alive:
                    break
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            writer.close()
            with contextlib.suppress(Exception):
                await writer.wait_closed()


async def run_server(
    service: EstimationService,
    host: str = "127.0.0.1",
    port: int = 8731,
    announce=print,
) -> None:
    """Serve until SIGTERM/SIGINT, then drain and shut down cleanly."""
    import signal

    server = EstimationServer(service, host, port)
    await server.start()
    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    for signum in (signal.SIGINT, signal.SIGTERM):
        with contextlib.suppress(NotImplementedError):  # non-unix loops
            loop.add_signal_handler(signum, stop.set)
    announce(
        f"repro serve: listening on {server.address} "
        f"({service.pool.mode} pool, {service.pool.workers} worker(s), "
        f"queue limit {service.queue.maxsize})"
    )
    try:
        await stop.wait()
    finally:
        announce("repro serve: shutting down")
        await server.stop()
