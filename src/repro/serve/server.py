"""The estimation service: routing, policy, lifecycle.

:class:`EstimationService` owns the whole request path —

    parse → resolve (config, program) → content-address → dedupe
    (memo / in-flight / shared disk cache) → bounded queue → windowed
    batch → forked worker pool → resolve coalesced waiters → memoize

— and exposes it over four endpoints:

========================  ===================================================
``POST /estimate``        macro-model energy of one program (coalesced+batched)
``POST /explore``         one DSE run over a bundled space (pool-dispatched)
``GET  /healthz``         liveness + queue/pool posture + breaker state
``GET  /metrics``         counters, p50/p95 latency, cache rates (JSON or prom)
========================  ===================================================

Backpressure is explicit: a full queue answers ``429`` with a
``Retry-After`` header instead of buffering unboundedly.  Per-batch
timeouts reuse the characterization :class:`~repro.core.runner.RetryPolicy`
— a timed-out batch is retried with the policy's lowered instruction
budget, and a batch that exhausts its attempts resolves every waiter
with a :class:`~repro.core.runner.SampleFailure`-shaped ``504``.

The service is **self-healing** (see :mod:`repro.serve.supervise`):

* a worker crash (``BrokenProcessPool``) respawns the pool — prewarmed
  lowerings are re-inherited copy-on-write — and re-dispatches the
  interrupted batch;
* a multi-request batch that keeps crashing is **bisected** until the
  poisoned request is isolated; after ``quarantine_after`` singleton
  crashes the key is quarantined and answered with a typed ``500``
  while the rest of the traffic keeps flowing;
* a timed-out fork-mode batch is treated as a *hung worker*: the pool
  is respawned (killing the wedged child) before the retry;
* repeated pool crashes trip a :class:`~repro.serve.supervise.CircuitBreaker`
  that degrades to inline single-threaded evaluation and flips
  ``/healthz`` to ``degraded`` until a cooldown probe succeeds;
* client ``deadline_ms`` propagates through the queue into the worker,
  shedding expired requests with ``504`` before they pay for simulation;
* SIGTERM drains: in-flight batches complete, new work is refused with
  ``503``, then the process exits 0.

:class:`EstimationServer` is the thin asyncio TCP transport around the
service; :func:`run_server` adds signal-driven graceful shutdown for the
``repro serve`` CLI.
"""

from __future__ import annotations

import asyncio
import contextlib
import time
from collections import deque
from typing import Optional, Sequence

from ..core.model import EnergyMacroModel
from ..core.runner import RetryPolicy, SampleFailure
from ..dse.cache import ResultCache, TieredResultCache, model_digest
from .admission import DrainRateEstimator, retry_after_seconds
from .api import (
    ApiError,
    EstimateRequest,
    parse_estimate,
    parse_explore,
    request_key,
)
from .batching import BatchQueue, Coalescer, Job, partition_compatible
from .http import (
    HttpProtocolError,
    HttpRequest,
    json_response,
    read_request,
    text_response,
)
from .metrics import ServiceMetrics, render_prometheus
from .pool import WorkerPool, resolve_workload
from .supervise import (
    CHAOS_KEY,
    DEADLINE_KEY,
    CircuitBreaker,
    QuarantineRegistry,
    deadline_at,
    is_pool_crash,
)


class _PoolCrash(Exception):
    """Internal carrier: a dispatch died of pool death.

    Wraps the original ``BrokenProcessPool``/``InjectedWorkerCrash``
    together with the pool generation the batch was submitted against,
    so concurrent crash handlers can tell whether the pool they saw die
    has already been respawned by somebody else.
    """

    def __init__(self, cause: BaseException, generation: int) -> None:
        super().__init__(str(cause))
        self.cause = cause
        self.generation = generation


class EstimationService:
    """Transport-independent service core (see module docstring)."""

    def __init__(
        self,
        model: EnergyMacroModel,
        *,
        workers: int = 0,
        queue_limit: int = 64,
        batch_max: int = 8,
        batch_window: float = 0.005,
        dedupe: bool = True,
        memo_size: int = 4096,
        cache_dir: Optional[str] = None,
        shared_cache_dir: Optional[str] = None,
        retry: Optional[RetryPolicy] = None,
        request_timeout: float = 30.0,
        explore_timeout: float = 600.0,
        prewarm: Sequence[str] = (),
        quarantine_after: int = 2,
        breaker_failures: int = 5,
        breaker_cooldown: float = 30.0,
        drain_grace: float = 10.0,
        chaos=None,
    ) -> None:
        if batch_max < 1:
            raise ValueError(f"batch_max must be >= 1, got {batch_max}")
        if request_timeout <= 0 or explore_timeout <= 0:
            raise ValueError("timeouts must be positive")
        if drain_grace < 0:
            raise ValueError(f"drain_grace must be >= 0, got {drain_grace}")
        self.model = model
        self.model_digest = model_digest(model)
        # Per-operating-point derived models and their digests: requests
        # at different points must dedupe/cache separately, and the
        # distinct digest of each derived model guarantees exactly that.
        self._op_models: dict[Optional[str], tuple] = {
            None: (model, self.model_digest)
        }
        self.dedupe = dedupe
        self.batch_max = batch_max
        self.batch_window = batch_window
        self.request_timeout = request_timeout
        self.explore_timeout = explore_timeout
        self.retry = retry if retry is not None else RetryPolicy(max_attempts=2)
        self.metrics = ServiceMetrics()
        self.coalescer = Coalescer(memo_size if dedupe else 0)
        self.pool = WorkerPool(model, workers=workers, prewarm=prewarm)
        # Per-node disk cache, optionally tiered under a cross-node shared
        # directory so any node of a fleet can answer a key another node
        # computed (see docs/SERVING.md "Fleet topology").
        self.result_cache: Optional[ResultCache]
        only_root = cache_dir or shared_cache_dir
        if cache_dir and shared_cache_dir:
            self.result_cache = TieredResultCache(cache_dir, shared_cache_dir)
        elif only_root:
            self.result_cache = ResultCache(only_root)
        else:
            self.result_cache = None
        self.queue = BatchQueue(queue_limit)
        #: observed completion rates, feeding computed Retry-After hints
        self.drain_rate = DrainRateEstimator()
        self.explore_drain = DrainRateEstimator(tau=60.0)
        #: most recent contained failures, for /healthz debugging
        self.failures: deque[SampleFailure] = deque(maxlen=64)
        #: crash accounting + poisoned-request isolation
        self.quarantine = QuarantineRegistry(threshold=quarantine_after)
        #: repeated pool crashes → degraded inline evaluation
        self.breaker = CircuitBreaker(
            failure_threshold=breaker_failures, cooldown=breaker_cooldown
        )
        #: optional deterministic fault injection (ServiceChaosPlan)
        self.chaos = chaos
        self.drain_grace = drain_grace
        self._dispatcher: Optional[asyncio.Task] = None
        self._batch_tasks: set[asyncio.Task] = set()
        self._active_explores = 0
        self._draining = False
        self._pool_lock = asyncio.Lock()
        self._batch_seq = 0  # chaos-plan dispatch ordinal

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> None:
        if self._dispatcher is None:
            self._dispatcher = asyncio.create_task(
                self._dispatch_loop(), name="repro-serve-dispatcher"
            )

    def begin_drain(self) -> None:
        """Flip into draining: new work is refused with 503, in-flight
        requests keep going to completion."""
        self._draining = True

    async def drain(self, grace: Optional[float] = None) -> bool:
        """Wait (up to ``grace`` seconds) for in-flight work to complete.

        Returns True when the service fully drained — empty queue, no
        running batches, no active explorations — within the grace
        period.  Idle services return immediately.
        """
        self.begin_drain()
        grace = self.drain_grace if grace is None else grace
        deadline = time.monotonic() + grace
        while (
            self.queue.qsize() > 0
            or self._batch_tasks
            or self._active_explores > 0
        ):
            if time.monotonic() >= deadline:
                return False
            await asyncio.sleep(0.02)
        return True

    async def stop(self) -> None:
        """Drain within the grace period, then halt the dispatch machinery."""
        await self.drain()
        if self._dispatcher is not None:
            self._dispatcher.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await self._dispatcher
            self._dispatcher = None
        for task in list(self._batch_tasks):
            task.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await task
        self.pool.shutdown()

    # -- HTTP dispatch -----------------------------------------------------

    def _gossip_headers(self) -> dict[str, str]:
        """Queue posture stamped on every response (fleet routers read it)."""
        return {
            "X-Repro-Queue-Depth": str(self.queue.qsize()),
            "X-Repro-Queue-Limit": str(self.queue.maxsize),
        }

    async def dispatch_http(self, request: HttpRequest) -> bytes:
        keep_alive = request.keep_alive
        try:
            status, payload, headers = await self._route(request)
        except HttpProtocolError as exc:
            return json_response(
                exc.status,
                {"error": "protocol", "message": str(exc)},
                keep_alive=False,
            )
        except ApiError as exc:
            self.metrics.incr("responses_error")
            return json_response(
                exc.status,
                exc.to_payload(),
                {**self._gossip_headers(), **(exc.headers or {})},
                keep_alive=keep_alive,
            )
        except Exception as exc:  # noqa: BLE001 — a request must never kill the loop
            self.metrics.incr("responses_error")
            return json_response(
                500,
                {"error": "internal", "message": f"{type(exc).__name__}: {exc}"},
                self._gossip_headers(),
                keep_alive=keep_alive,
            )
        merged = {**self._gossip_headers(), **(headers or {})}
        if isinstance(payload, str):
            return text_response(status, payload, merged, keep_alive=keep_alive)
        return json_response(status, payload, merged, keep_alive=keep_alive)

    async def _route(self, request: HttpRequest):
        path, method = request.path, request.method
        if path == "/healthz":
            if method != "GET":
                raise ApiError(405, "use GET /healthz", code="method_not_allowed")
            return 200, self.health_payload(), None
        if path == "/metrics":
            if method != "GET":
                raise ApiError(405, "use GET /metrics", code="method_not_allowed")
            payload = self.metrics_payload()
            if request.query.get("format") == "prom":
                return 200, render_prometheus(payload), None
            return 200, payload, None
        if path == "/estimate":
            if method != "POST":
                raise ApiError(405, "use POST /estimate", code="method_not_allowed")
            self._refuse_if_draining()
            return await self._handle_estimate(request.json())
        if path == "/explore":
            if method != "POST":
                raise ApiError(405, "use POST /explore", code="method_not_allowed")
            self._refuse_if_draining()
            return await self._handle_explore(request.json())
        raise ApiError(404, f"no such endpoint {path!r}", code="not_found")

    def retry_after_hint(self) -> int:
        """Estimate-path Retry-After: queue depth over observed drain rate."""
        return retry_after_seconds(
            self.queue.qsize() + self.coalescer.inflight_count,
            self.drain_rate.rate,
        )

    def explore_retry_after_hint(self) -> int:
        """Explore-path Retry-After from the (slower) explore drain rate."""
        return retry_after_seconds(
            self._active_explores, self.explore_drain.rate, cold_start=5
        )

    def _refuse_if_draining(self) -> None:
        if self._draining:
            self.metrics.incr("drain_rejected_total")
            raise ApiError(
                503,
                "service is draining; no new work accepted",
                code="draining",
                headers={"Retry-After": str(self.retry_after_hint())},
            )

    # -- introspection endpoints -------------------------------------------

    def health_status(self) -> tuple[str, list[str]]:
        """The /healthz state machine: ok → degraded → draining, with reasons.

        ``draining`` wins (shutdown in progress), then ``degraded``
        (breaker open or probing half-open: requests are served inline,
        slower), else ``ok``.
        """
        reasons: list[str] = []
        if self._draining:
            reasons.append("shutdown in progress; new work refused with 503")
            return "draining", reasons
        breaker_state = self.breaker.state
        if breaker_state != "closed":
            reasons.append(
                f"circuit breaker {breaker_state}: repeated pool crashes; "
                "serving inline (degraded) until a probe batch succeeds"
            )
            return "degraded", reasons
        if self.quarantine.quarantined_count:
            reasons.append(
                f"{self.quarantine.quarantined_count} poisoned request key(s) "
                "quarantined; other traffic unaffected"
            )
        return "ok", reasons

    def supervision_payload(self) -> dict:
        return {
            "breaker": self.breaker.snapshot(),
            "quarantine": self.quarantine.snapshot(),
            "pool": {
                "mode": self.pool.mode,
                "workers": self.pool.workers,
                "restarts": self.pool.restarts,
                "generation": self.pool.generation,
            },
            "chaos": (
                {
                    "seed": self.chaos.seed,
                    "injected": self.chaos.injected_counts(),
                }
                if self.chaos is not None
                else None
            ),
        }

    def health_payload(self) -> dict:
        status, reasons = self.health_status()
        return {
            "status": status,
            "reasons": reasons,
            "uptime_seconds": time.time() - self.metrics.started_at,
            "pool": {
                "mode": self.pool.mode,
                "workers": self.pool.workers,
                "prewarmed": self.pool.prewarmed,
                "restarts": self.pool.restarts,
                "generation": self.pool.generation,
            },
            "breaker": self.breaker.snapshot(),
            "quarantine": {
                "held": self.quarantine.quarantined_count,
                "total": self.quarantine.total_quarantined,
            },
            "queue": {"depth": self.queue.qsize(), "limit": self.queue.maxsize},
            "inflight": self.coalescer.inflight_count,
            "recent_failures": [failure.describe() for failure in self.failures],
        }

    def metrics_payload(self) -> dict:
        from ..xtcore import compilation_cache

        return self.metrics.to_payload(
            compilation_cache=compilation_cache().info(),
            result_cache=(
                self.result_cache.info() if self.result_cache is not None else None
            ),
            supervision=self.supervision_payload(),
            admission={
                "queue_depth": self.queue.qsize(),
                "queue_limit": self.queue.maxsize,
                "drain": self.drain_rate.snapshot(),
                "explore_drain": self.explore_drain.snapshot(),
                "retry_after_s": self.retry_after_hint(),
            },
        )

    # -- estimate path -----------------------------------------------------

    def _digest_for(self, operating_point: Optional[str]) -> str:
        """Model digest at one operating point (memoized per point)."""
        entry = self._op_models.get(operating_point)
        if entry is None:
            derived = self.model.at(operating_point)
            entry = (derived, model_digest(derived))
            self._op_models[operating_point] = entry
        return entry[1]

    async def _handle_estimate(self, body: object):
        began = time.perf_counter()
        self.metrics.incr("requests_total")
        self.metrics.incr("estimate_requests")
        req = parse_estimate(body)
        if req.benchmark is not None:
            item = {"benchmark": req.benchmark, "max_instructions": req.max_instructions}
        else:
            item = {
                "name": req.name,
                "source": req.source,
                "extensions": list(req.extensions),
                "max_instructions": req.max_instructions,
            }
        if req.operating_point is not None:
            # Only stamped when set so the wire item (and therefore the
            # worker path) is byte-identical to the pre-calibration shape
            # for point-less requests.
            item["operating_point"] = req.operating_point
        self.metrics.observe_operating_point(req.operating_point)
        try:
            config, program = resolve_workload(item)
        except ApiError:
            raise
        except Exception as exc:  # noqa: BLE001 — bad workload == bad request
            raise ApiError(400, f"cannot build workload: {exc}", code="bad_workload")
        key = request_key(
            self._digest_for(req.operating_point),
            config,
            program,
            req.max_instructions,
        )
        deadline = deadline_at(req.deadline_ms)
        payload, dedup = await self._obtain(
            key, config.fingerprint(), item, deadline=deadline
        )
        status, response = self._estimate_response(req, key, payload, dedup)
        self.metrics.observe_latency("estimate", time.perf_counter() - began)
        self.metrics.incr("responses_ok" if status == 200 else "responses_error")
        return status, response, None

    async def _obtain(
        self,
        key: str,
        group: str,
        item: dict,
        deadline: Optional[float] = None,
    ):
        """Answer one keyed estimate: memo, coalesce, disk cache, or enqueue."""
        if self.quarantine.is_quarantined(key):
            self.metrics.incr("quarantine_rejections_total")
            return (
                {
                    "ok": False,
                    "stage": "quarantine",
                    "error_type": "QuarantinedRequest",
                    "message": (
                        "request is quarantined: it repeatedly crashed the "
                        "worker pool"
                    ),
                },
                "quarantined",
            )
        if self.dedupe:
            memo = self.coalescer.find_memo(key)
            if memo is not None:
                self.metrics.incr("memo_hits_total")
                return memo, "memo"
            inflight = self.coalescer.find_inflight(key)
            if inflight is not None:
                self.metrics.incr("coalesced_total")
                return await asyncio.shield(inflight.future), "coalesced"
        if self.result_cache is not None:
            stored = self.result_cache.get(key)
            if stored is not None:
                payload = {**stored, "ok": True}
                self.metrics.incr("disk_cache_hits_total")
                if self.dedupe:
                    self.coalescer.close(key, payload)  # promote to memo
                return payload, "disk"
        job = Job(
            key=key,
            group=group,
            item=item,
            future=asyncio.get_running_loop().create_future(),
            deadline=deadline,
        )
        if self.dedupe:
            self.coalescer.open(job)
        try:
            self.queue.put_nowait(job)
        except asyncio.QueueFull:
            if self.dedupe:
                self.coalescer.close(key)
            self.metrics.incr("rejected_total")
            raise ApiError(
                429,
                f"estimation queue is full ({self.queue.maxsize} pending)",
                code="overloaded",
                headers={"Retry-After": str(self.retry_after_hint())},
            )
        self.metrics.set_gauge("queue_depth", self.queue.qsize())
        return await asyncio.shield(job.future), "fresh"

    def _estimate_response(
        self, req: EstimateRequest, key: str, payload: dict, dedup: str
    ):
        if payload.get("ok"):
            response = {
                "program": req.name,
                "processor": payload["processor"],
                "energy": payload["energy"],
                "cycles": payload["cycles"],
                "edp": payload["energy"] * payload["cycles"],
                "area": payload.get("area", 0.0),
                "key": key,
                "dedup": dedup,
            }
            if payload.get("operating_point") is not None:
                response["operating_point"] = payload["operating_point"]
                response["frequency_mhz"] = payload.get("frequency_mhz")
                if payload.get("seconds") is not None:
                    response["seconds"] = payload["seconds"]
            if req.variables and "variables" in payload:
                response["variables"] = payload["variables"]
            return 200, response
        stage = payload.get("stage")
        status = 504 if stage in ("timeout", "deadline") else 500
        if stage == "build":
            status = 400
        return status, {
            "error": "estimation_failed",
            "stage": payload.get("stage", "?"),
            "error_type": payload.get("error_type", "?"),
            "message": payload.get("message", ""),
            "key": key,
            "dedup": dedup,
        }

    # -- explore path ------------------------------------------------------

    async def _handle_explore(self, body: object):
        began = time.perf_counter()
        self.metrics.incr("requests_total")
        self.metrics.incr("explore_requests")
        req = parse_explore(body)
        if self._active_explores >= self.pool.workers:
            self.metrics.incr("rejected_total")
            raise ApiError(
                429,
                f"all {self.pool.workers} worker(s) busy with explorations",
                code="overloaded",
                headers={"Retry-After": str(self.explore_retry_after_hint())},
            )
        item = {
            "space": req.space,
            "strategy": req.strategy,
            "budget": req.budget,
            "seed": req.seed,
            "objective": req.objective,
            "max_instructions": req.max_instructions,
            "top_k": req.top_k,
            "operating_point": req.operating_point,
            # tiered (fleet) caches expose the cross-node shared directory;
            # explorations write there so every node benefits from the sweep
            "cache_root": (
                getattr(self.result_cache, "shared_root", self.result_cache.root)
                if self.result_cache
                else None
            ),
        }
        self.metrics.observe_operating_point(req.operating_point)
        self._active_explores += 1
        try:
            future = self.pool.submit_explore(item)
            try:
                outcome = await asyncio.wait_for(
                    asyncio.wrap_future(future), self.explore_timeout
                )
            except asyncio.TimeoutError:
                future.cancel()
                self.metrics.incr("timeouts_total")
                failure = SampleFailure(
                    name=f"explore:{req.space}",
                    processor_name="",
                    stage="timeout",
                    error_type="TimeoutError",
                    message=f"exploration exceeded {self.explore_timeout}s",
                    attempts=1,
                )
                self._record_failure(failure)
                raise ApiError(504, failure.describe(), code="timeout")
        finally:
            self._active_explores -= 1
            self.explore_drain.record(1)
        elapsed = time.perf_counter() - began
        self.metrics.observe_latency("explore", elapsed)
        if not outcome.get("ok"):
            self.metrics.incr("responses_error")
            failure = SampleFailure(
                name=f"explore:{req.space}",
                processor_name="",
                stage=outcome.get("stage", "explore"),
                error_type=outcome.get("error_type", "?"),
                message=outcome.get("message", ""),
                attempts=1,
            )
            self._record_failure(failure)
            bad_request = failure.error_type in (
                "SpaceError",
                "ValueError",
                "CalibrationError",
            )
            return (
                400 if bad_request else 500,
                {
                    "error": "exploration_failed",
                    "stage": failure.stage,
                    "error_type": failure.error_type,
                    "message": failure.message,
                },
                None,
            )
        self.metrics.incr("responses_ok")
        return 200, outcome["report"], None

    # -- batch dispatch ----------------------------------------------------

    async def _dispatch_loop(self) -> None:
        while True:
            jobs = await self.queue.next_batch(self.batch_max, self.batch_window)
            self.metrics.set_gauge("queue_depth", self.queue.qsize())
            for group in partition_compatible(jobs):
                task = asyncio.create_task(self._run_batch(group))
                self._batch_tasks.add(task)
                task.add_done_callback(self._batch_tasks.discard)

    async def _run_batch(self, jobs: list[Job]) -> None:
        self.metrics.incr("batches_dispatched")
        self.metrics.incr("batched_requests", len(jobs))
        self.metrics.set_gauge("inflight", self.coalescer.inflight_count)
        try:
            await self._run_supervised(jobs)
        finally:
            # every job left the system (resolved, failed or shed): that is
            # a drain event, and the drain rate is what Retry-After quotes
            self.drain_rate.record(len(jobs))
            self.metrics.set_gauge("inflight", self.coalescer.inflight_count)

    async def _run_supervised(self, jobs: list[Job]) -> None:
        """Run one batch to full resolution, surviving pool death.

        The recovery ladder: shed unservable jobs (expired deadline,
        quarantined key) → degraded inline path while the breaker is
        open → normal pool dispatch with timeout/retry → on a pool
        crash, respawn and either retry (singleton), bisect (multi-job,
        to isolate a poisoned request) or quarantine (singleton that
        keeps crashing the pool).
        """
        jobs = self._shed_unservable(jobs)
        if not jobs:
            return
        if not self.breaker.allows_pool():
            await self._run_degraded(jobs)
            return
        try:
            outcome, attempts = await self._dispatch_with_retry(jobs)
        except _PoolCrash as crash:
            await self._handle_pool_crash(jobs, crash)
            return
        except Exception as exc:  # noqa: BLE001 — a dead pool must not hang waiters
            self._fail_batch(
                jobs,
                stage="dispatch",
                error_type=type(exc).__name__,
                message=str(exc),
                attempts=1,
            )
            return
        if outcome is None:
            return  # timeout budget exhausted; waiters already failed
        self.breaker.record_success()
        self._resolve_batch(jobs, outcome, attempts)

    async def _dispatch_with_retry(self, jobs: list[Job]):
        """The pool dispatch loop: timeouts retry on lowered budgets.

        Returns ``(outcome, attempts)``; ``(None, attempts)`` when the
        retry budget is exhausted (waiters are failed with 504 here).
        A pool death is re-raised as :class:`_PoolCrash` carrying the
        pool generation the batch was submitted against.
        """
        attempt = 0
        while True:
            attempt += 1
            items = [
                {
                    **job.item,
                    "max_instructions": self.retry.budget_for(
                        attempt, job.item["max_instructions"]
                    ),
                }
                for job in jobs
            ]
            for job, item in zip(jobs, items):
                if job.deadline is not None:
                    item[DEADLINE_KEY] = job.deadline
            directive = self._stamp_chaos(items)
            generation = self.pool.generation
            try:
                try:
                    future = self.pool.submit_estimate_batch(items)
                except Exception as exc:
                    # the pool broke under a concurrent batch before this
                    # submit: the stamped directive never reached a worker,
                    # so put it back on the schedule for a later dispatch.
                    # Hangs are re-armed by the outer handler (which also
                    # covers a batch dying *queued* in a broken pool) —
                    # re-arming here too would schedule the hang twice.
                    if (
                        is_pool_crash(exc)
                        and directive is not None
                        and not directive.startswith("hang")
                    ):
                        self.chaos.rearm(directive, self._batch_seq)
                    raise
                outcome = await asyncio.wait_for(
                    asyncio.wrap_future(future), self.request_timeout
                )
                return outcome, attempt
            except asyncio.TimeoutError:
                future.cancel()
                self.metrics.incr("timeouts_total")
                if self.pool.mode == "fork":
                    # a fork-mode timeout may be a wedged worker, which
                    # never finishes on its own: kill + respawn so the
                    # retry (and everyone else) lands on a healthy pool
                    self.metrics.incr("worker_hangs_total")
                    await self._respawn_pool(generation)
                if attempt >= self.retry.max_attempts:
                    self._fail_batch(
                        jobs,
                        stage="timeout",
                        error_type="TimeoutError",
                        message=(
                            f"batch of {len(jobs)} timed out after {attempt} "
                            f"attempt(s) of {self.request_timeout}s"
                        ),
                        attempts=attempt,
                    )
                    return None, attempt
                self.metrics.incr("retries_total")
            except Exception as exc:  # noqa: BLE001 — classified by the caller
                if is_pool_crash(exc):
                    # a hang directive cannot break the pool, so this
                    # break came from elsewhere (a crash directive or a
                    # poisoned item, possibly in a concurrent batch) and
                    # the scheduled hang never played out — re-arm it
                    if directive is not None and directive.startswith("hang"):
                        self.chaos.rearm(directive, self._batch_seq)
                    raise _PoolCrash(exc, generation) from exc
                raise

    async def _handle_pool_crash(self, jobs: list[Job], crash: "_PoolCrash") -> None:
        """Respawn after a worker death, then isolate whoever caused it."""
        self.metrics.incr("worker_crashes_total")
        if self.breaker.record_failure():
            self.metrics.incr("breaker_trips_total")
        await self._respawn_pool(crash.generation)
        if not self.breaker.allows_pool():
            await self._run_degraded(jobs)
            return
        if len(jobs) == 1:
            job = jobs[0]
            name = job.item.get("benchmark") or job.item.get("name", "?")
            if self.quarantine.record_crash(job.key, name):
                self.metrics.incr("quarantined_total")
                self._fail_job(
                    job,
                    stage="quarantine",
                    error_type=type(crash.cause).__name__,
                    message=(
                        f"request crashed the worker pool "
                        f"{self.quarantine.threshold} time(s) in isolation; "
                        "quarantined"
                    ),
                    attempts=self.quarantine.threshold,
                )
                return
            await self._run_supervised(jobs)
            return
        # bisect: innocents in one half finish normally, the poisoned
        # request ends up alone and is quarantined by the singleton path
        mid = (len(jobs) + 1) // 2
        await self._run_supervised(jobs[:mid])
        await self._run_supervised(jobs[mid:])

    async def _respawn_pool(self, generation: int) -> None:
        """Serialize concurrent crash handlers into one pool restart."""
        async with self._pool_lock:
            if self.pool.generation == generation:
                self.metrics.incr("pool_restarts_total")
                await asyncio.to_thread(self.pool.restart)

    async def _run_degraded(self, jobs: list[Job]) -> None:
        """Breaker-open path: evaluate inline, chaos-free, single-threaded."""
        self.metrics.incr("degraded_batches_total")
        items = []
        for job in jobs:
            item = dict(job.item)
            item.pop(CHAOS_KEY, None)  # the degraded path never injects
            if job.deadline is not None:
                item[DEADLINE_KEY] = job.deadline
            items.append(item)
        future = self.pool.submit_inline_batch(items)
        try:
            outcome = await asyncio.wait_for(
                asyncio.wrap_future(future), self.request_timeout
            )
        except asyncio.TimeoutError:
            future.cancel()
            self.metrics.incr("timeouts_total")
            self._fail_batch(
                jobs,
                stage="timeout",
                error_type="TimeoutError",
                message=(
                    f"degraded inline batch of {len(jobs)} timed out after "
                    f"{self.request_timeout}s"
                ),
                attempts=1,
            )
            return
        except Exception as exc:  # noqa: BLE001 — inline failures fail the batch
            self._fail_batch(
                jobs,
                stage="degraded",
                error_type=type(exc).__name__,
                message=str(exc),
                attempts=1,
            )
            return
        self._resolve_batch(jobs, outcome, attempts=1)

    def _stamp_chaos(self, items: list[dict]) -> Optional[str]:
        """Attach the chaos plan's directives to one dispatch's items.

        Returns the plan-scheduled directive (if one fired for this
        ordinal) so the dispatcher can re-arm it when the batch never
        reaches a worker.  Poison stamps need no such care — they
        re-fire on every dispatch of the poisoned item.
        """
        if self.chaos is None:
            return None
        ordinal = self._batch_seq
        self._batch_seq += 1
        directive = self.chaos.directive_for_batch(ordinal)
        if directive is not None:
            items[0][CHAOS_KEY] = directive
            self.metrics.incr("chaos_injected_total")
        for item in items:
            if self.chaos.is_poisoned(item):
                item[CHAOS_KEY] = "crash"
                self.metrics.incr("chaos_injected_total")
        return directive

    def _shed_unservable(self, jobs: list[Job]) -> list[Job]:
        """Answer expired/quarantined jobs immediately; return the rest."""
        ready: list[Job] = []
        for job in jobs:
            if job.expired:
                self.metrics.incr("deadline_shed_total")
                self._fail_job(
                    job,
                    stage="deadline",
                    error_type="DeadlineExceeded",
                    message="deadline expired before dispatch",
                    attempts=0,
                    record=False,
                )
            elif self.quarantine.is_quarantined(job.key):
                self.metrics.incr("quarantine_rejections_total")
                self._fail_job(
                    job,
                    stage="quarantine",
                    error_type="QuarantinedRequest",
                    message=(
                        "request is quarantined: it repeatedly crashed the "
                        "worker pool"
                    ),
                    attempts=0,
                    record=False,
                )
            else:
                ready.append(job)
        return ready

    def _resolve_batch(self, jobs: list[Job], outcome: dict, attempts: int) -> None:
        for job, payload in zip(jobs, outcome["results"]):
            if payload.get("ok"):
                self.quarantine.record_success(job.key)
                if self.dedupe:
                    self.coalescer.close(job.key, payload)
                if self.result_cache is not None:
                    stored = {k: v for k, v in payload.items() if k != "ok"}
                    self.result_cache.put(job.key, stored)
            else:
                if self.dedupe:
                    self.coalescer.close(job.key)
                if payload.get("stage") == "deadline":
                    # shed worker-side, just before simulation would start
                    self.metrics.incr("deadline_shed_total")
                else:
                    self._record_failure(
                        SampleFailure(
                            name=job.item.get("benchmark")
                            or job.item.get("name", "?"),
                            processor_name="",
                            stage=payload.get("stage", "?"),
                            error_type=payload.get("error_type", "?"),
                            message=payload.get("message", ""),
                            attempts=attempts,
                        )
                    )
            if not job.future.done():
                job.future.set_result(payload)
        self.metrics.merge_sim_snapshot(outcome.get("tally", {}))

    def _fail_job(
        self,
        job: Job,
        stage: str,
        error_type: str,
        message: str,
        attempts: int,
        record: bool = True,
    ) -> None:
        if self.dedupe:
            self.coalescer.close(job.key)
        if record:
            self._record_failure(
                SampleFailure(
                    name=job.item.get("benchmark") or job.item.get("name", "?"),
                    processor_name="",
                    stage=stage,
                    error_type=error_type,
                    message=message,
                    attempts=attempts,
                )
            )
        if not job.future.done():
            job.future.set_result(
                {
                    "ok": False,
                    "stage": stage,
                    "error_type": error_type,
                    "message": message,
                }
            )

    def _fail_batch(
        self, jobs: list[Job], stage: str, error_type: str, message: str, attempts: int
    ) -> None:
        for job in jobs:
            self._fail_job(job, stage, error_type, message, attempts)
        self.metrics.set_gauge("inflight", self.coalescer.inflight_count)

    def _record_failure(self, failure: SampleFailure) -> None:
        self.metrics.incr("failures_total")
        self.failures.append(failure)


class EstimationServer:
    """asyncio TCP transport around one :class:`EstimationService`."""

    def __init__(
        self, service: EstimationService, host: str = "127.0.0.1", port: int = 0
    ) -> None:
        self.service = service
        self.host = host
        self.port = port
        self._server: Optional[asyncio.AbstractServer] = None

    async def start(self) -> None:
        await self.service.start()
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        await self.service.stop()

    @property
    def address(self) -> str:
        return f"http://{self.host}:{self.port}"

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                try:
                    request = await read_request(reader)
                except HttpProtocolError as exc:
                    writer.write(
                        json_response(
                            exc.status,
                            {"error": "protocol", "message": str(exc)},
                            keep_alive=False,
                        )
                    )
                    await writer.drain()
                    break
                if request is None:
                    break
                response = await self.service.dispatch_http(request)
                chaos = self.service.chaos
                if chaos is not None and chaos.take_connection_reset():
                    # mid-response reset: ship a partial response, then
                    # abort the transport — the client sees a torn read
                    self.service.metrics.incr("chaos_injected_total")
                    writer.write(response[: max(1, len(response) // 2)])
                    with contextlib.suppress(Exception):
                        await writer.drain()
                    writer.transport.abort()
                    return
                writer.write(response)
                await writer.drain()
                if not request.keep_alive:
                    break
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            writer.close()
            with contextlib.suppress(Exception):
                await writer.wait_closed()


def write_port_file(path: str, port: int) -> None:
    """Publish a bound port atomically (watchers never read a torn file)."""
    import os

    tmp = f"{path}.tmp.{os.getpid()}"
    with open(tmp, "w", encoding="utf-8") as handle:
        handle.write(f"{port}\n")
    os.replace(tmp, path)


async def run_server(
    service: EstimationService,
    host: str = "127.0.0.1",
    port: int = 8731,
    announce=print,
    port_file: Optional[str] = None,
) -> None:
    """Serve until SIGTERM/SIGINT, then drain and shut down cleanly.

    ``port_file`` publishes the bound port (atomically, after the
    listener is up) so supervisors — the fleet manager, CI smokes — can
    discover an ephemeral ``--port 0`` binding without log scraping.
    """
    import signal

    server = EstimationServer(service, host, port)
    await server.start()
    if port_file is not None:
        write_port_file(port_file, server.port)
    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    for signum in (signal.SIGINT, signal.SIGTERM):
        with contextlib.suppress(NotImplementedError):  # non-unix loops
            loop.add_signal_handler(signum, stop.set)
    announce(
        f"repro serve: listening on {server.address} "
        f"({service.pool.mode} pool, {service.pool.workers} worker(s), "
        f"queue limit {service.queue.maxsize})"
    )
    try:
        await stop.wait()
    finally:
        # drain with the listener still open: late requests are answered
        # 503 "draining" instead of a connection refused, and in-flight
        # batches run to completion before the transport goes away
        announce("repro serve: draining (in-flight work completing)")
        drained = await service.drain()
        announce(
            "repro serve: drained cleanly, shutting down"
            if drained
            else "repro serve: drain grace expired, shutting down anyway"
        )
        await server.stop()
