"""The service's persistent worker pool and its worker-side evaluators.

Estimation requests are CPU-bound (one untraced instruction-set
simulation each), so the service dispatches them to a pool of **forked**
worker processes.  Fork matters twice:

* the parent **pre-warms** the process-wide
  :class:`~repro.xtcore.compiled.CompilationCache` before the first fork,
  so every child inherits the lowered benchmark programs copy-on-write
  and never pays first-request compilation latency;
* the model and the per-process config/program caches are inherited or
  built once per worker, never per request.

Where fork is unavailable (or ``workers=0`` is requested) the pool
degrades to an in-process thread executor — same interface, same worker
functions, no pickling — which is also what the unit tests run.

Worker functions receive *batches*: a list of small picklable item
dicts sharing one processor configuration, so the per-batch cost of
config resolution is paid once and the per-item cost is exactly one
simulation.  Each batch result carries a
:class:`~repro.serve.metrics.ServiceMetricsObserver` snapshot so the
frontend's metrics see worker-side simulation totals.
"""

from __future__ import annotations

import concurrent.futures
import multiprocessing
from typing import Optional, Sequence

from ..core.model import EnergyMacroModel
from ..programs import characterization_suite
from ..rtl import generate_netlist
from ..xtcore import (
    ProcessorConfig,
    build_processor,
    compilation_cache,
    run_batch,
    semantic_fingerprint,
)
from .metrics import ServiceMetricsObserver
from .supervise import (
    CHAOS_KEY,
    DEADLINE_KEY,
    deadline_expired,
    execute_chaos_directive,
)

#: Worker-process globals, installed by :func:`_worker_init`.
_WORKER: dict = {}


def _fork_context() -> Optional[multiprocessing.context.BaseContext]:
    """The fork start method, or None where only spawn exists."""
    if "fork" in multiprocessing.get_all_start_methods():
        return multiprocessing.get_context("fork")
    return None


def benchmark_cases() -> dict:
    """Name → bundled :class:`~repro.programs.BenchmarkCase` (per process)."""
    cases = _WORKER.get("benchmark_cases")
    if cases is None:
        cases = {case.name: case for case in characterization_suite(include_variants=False)}
        _WORKER["benchmark_cases"] = cases
    return cases


def _worker_init(model: EnergyMacroModel, fork: bool = False) -> None:
    """Install per-process state (runs in each worker, and inline mode)."""
    if fork:
        # Forked children inherit the parent's asyncio signal plumbing:
        # its Python-level handlers AND the signal wakeup fd (the event
        # loop's self-pipe).  A signal delivered to a *child* — e.g. the
        # supervisor terminating a wedged worker — would then write into
        # the shared pipe and the PARENT's loop would dispatch it as if
        # the server itself had been signalled (spontaneous drain).
        # Disarm both before the worker takes any work.
        import signal

        signal.set_wakeup_fd(-1)
        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                signal.signal(signum, signal.SIG_DFL)
            except (OSError, ValueError):  # non-main thread / exotic platform
                pass
    _WORKER["model"] = model
    _WORKER["fork"] = fork
    _WORKER.setdefault("configs", {})
    _WORKER.setdefault("programs", {})
    _WORKER.setdefault("areas", {})


def _config_for(extensions: tuple[str, ...]) -> ProcessorConfig:
    """Per-process memo of built processor configs, keyed by extensions."""
    configs = _WORKER["configs"]
    config = configs.get(extensions)
    if config is None:
        from ..programs.extensions import ALL_SPEC_FACTORIES

        specs = []
        for mnemonic in extensions:
            factory = ALL_SPEC_FACTORIES.get(mnemonic)
            if factory is None:
                raise ValueError(
                    f"unknown extension {mnemonic!r}; available: "
                    + ", ".join(sorted(ALL_SPEC_FACTORIES))
                )
            specs.append(factory())
        config = build_processor("serve", specs)
        configs[extensions] = config
    return config


def _custom_area(config: ProcessorConfig) -> float:
    """Per-process memo of the netlist custom-area proxy."""
    areas = _WORKER["areas"]
    fingerprint = config.fingerprint()
    area = areas.get(fingerprint)
    if area is None:
        area = float(generate_netlist(config).custom_area)
        areas[fingerprint] = area
    return area


def resolve_workload(item: dict):
    """Build (config, program) for one request item, with per-process memos.

    Items are the picklable wire shape: either ``{"benchmark": name}`` or
    ``{"name", "source", "extensions"}``.
    """
    benchmark = item.get("benchmark")
    if benchmark is not None:
        case = benchmark_cases().get(benchmark)
        if case is None:
            raise ValueError(
                f"unknown benchmark {benchmark!r}; available: "
                + ", ".join(sorted(benchmark_cases()))
            )
        return case.build()
    from ..asm import assemble

    config = _config_for(tuple(item.get("extensions", ())))
    cache_key = (hash(item["source"]), tuple(item.get("extensions", ())))
    programs = _WORKER["programs"]
    program = programs.get(cache_key)
    if program is None:
        program = assemble(item["source"], item.get("name", "request"), isa=config.isa)
        programs[cache_key] = program
    return config, program


def _estimate_payload(result, config: ProcessorConfig, program, model) -> dict:
    """The success wire payload for one simulation result."""
    from ..core.extract import extract_variables

    variables = extract_variables(result.stats, config, model.template)
    # keep the entry ResultCache/DSE-compatible: area included
    point = model.operating_point
    payload = {
        "ok": True,
        "program": program.name,
        "processor": config.name,
        "energy": float(variables @ model.coefficients),
        "cycles": int(result.stats.total_cycles),
        "area": _custom_area(config),
        "instructions": int(result.stats.total_instructions),
        "operating_point": point.key if point is not None else None,
        "frequency_mhz": point.frequency_mhz if point is not None else None,
    }
    if point is not None:
        payload["seconds"] = point.seconds(result.stats.total_cycles)
    # always shipped: a coalesced waiter may want the breakdown even
    # when the request that triggered the simulation did not
    payload["variables"] = dict(
        zip(model.template.keys(), (float(v) for v in variables))
    )
    return payload


def _estimate_item(item: dict, model, observer: ServiceMetricsObserver) -> dict:
    """Score one estimate item through its own simulation; never raises.

    Two supervision hooks run *before* the isolation block: a
    parent-stamped chaos directive (worker crash/hang — deliberately not
    contained, that is the point) and the item's propagated deadline,
    shedding expired requests before they pay for simulation.
    """
    from ..obs import run_session

    directive = item.get(CHAOS_KEY)
    if directive is not None:
        execute_chaos_directive(directive, fork=bool(_WORKER.get("fork")))
    if deadline_expired(item.get(DEADLINE_KEY)):
        return {
            "ok": False,
            "stage": "deadline",
            "error_type": "DeadlineExceeded",
            "message": "deadline expired before simulation started",
        }
    stage = "build"
    try:
        # The operating point rescales the model only — the simulation
        # below is identical across points (bitwise-equal stats).
        model = model.at(item.get("operating_point"))
        config, program = resolve_workload(item)
        stage = "estimate"
        result = run_session(
            config,
            program,
            observers=[observer],
            max_instructions=int(item["max_instructions"]),
        )
        return _estimate_payload(result, config, program, model)
    except Exception as exc:  # noqa: BLE001 — per-item isolation is the point
        return {
            "ok": False,
            "stage": stage,
            "error_type": type(exc).__name__,
            "message": str(exc),
        }


def run_estimate_batch(items: Sequence[dict]) -> dict:
    """Score one batch of estimate items; never raises (except by chaos).

    Per-item failures become ``{"ok": False, ...}`` payloads in the same
    stage/error shape as :class:`~repro.core.runner.SampleFailure`.  One
    :class:`ServiceMetricsObserver` subscribes to every simulation of the
    batch and its snapshot rides back with the results.

    Items sharing one program (by content digest), one semantic partition
    (:func:`repro.xtcore.semantic_fingerprint`) and one instruction
    budget are scored through a single :func:`repro.xtcore.run_batch`
    execution pass; the observer is bracketed manually per member so the
    tally matches the unbatched path run for run.  Chaos-carrying batches
    keep the strict sequential per-item path — the directives crash or
    wedge the worker at a specific position on purpose.
    """
    model: EnergyMacroModel = _WORKER["model"]
    observer = ServiceMetricsObserver()
    if any(item.get(CHAOS_KEY) is not None for item in items):
        return {
            "results": [_estimate_item(item, model, observer) for item in items],
            "tally": observer.snapshot(),
        }

    results: list[Optional[dict]] = [None] * len(items)
    singles: list[int] = []
    groups: dict[tuple, list] = {}
    for index, item in enumerate(items):
        try:
            if deadline_expired(item.get(DEADLINE_KEY)):
                raise LookupError  # shed through the per-item path
            config, program = resolve_workload(item)
            partition = (
                program.digest(),
                semantic_fingerprint(config),
                int(item["max_instructions"]),
            )
        except Exception:  # noqa: BLE001 — per-item path records the real failure
            singles.append(index)
            continue
        groups.setdefault(partition, []).append((index, item, config, program))

    for partition, members in groups.items():
        if len(members) == 1:
            singles.append(members[0][0])
            continue
        try:
            batch = run_batch(
                [member[2] for member in members],
                members[0][3],
                max_instructions=partition[2],
            )
        except Exception as exc:  # noqa: BLE001 — the fault is trajectory-wide
            for index, _item, config, _program in members:
                results[index] = {
                    "ok": False,
                    "stage": "estimate",
                    "error_type": type(exc).__name__,
                    "message": str(exc),
                }
            continue
        for (index, _item, config, program), result in zip(members, batch):
            observer.on_run_start(config, program)
            observer.on_run_finish(result)
            try:
                # One shared execution pass, one derived model per item's
                # operating point (memoized on the base model instance).
                results[index] = _estimate_payload(
                    result, config, program, model.at(_item.get("operating_point"))
                )
            except Exception as exc:  # noqa: BLE001 — per-item isolation
                results[index] = {
                    "ok": False,
                    "stage": "estimate",
                    "error_type": type(exc).__name__,
                    "message": str(exc),
                }

    for index in singles:
        results[index] = _estimate_item(items[index], model, observer)
    return {"results": results, "tally": observer.snapshot()}


def run_explore(item: dict) -> dict:
    """Run one exploration request inside a worker; never raises."""
    import json

    from ..dse import ResultCache, explore, get_space, make_strategy

    model: EnergyMacroModel = _WORKER["model"]
    try:
        model = model.at(item.get("operating_point"))
        space = get_space(item["space"])
        strategy = make_strategy(
            item["strategy"],
            budget=item.get("budget"),
            seed=int(item.get("seed", 0)),
            objective=item.get("objective", "edp"),
        )
        cache_root = item.get("cache_root")
        cache = ResultCache(cache_root) if cache_root else None
        report = explore(
            model,
            space,
            strategy,
            jobs=1,  # the service pool is the parallelism; keep workers serial
            cache=cache,
            objective=item.get("objective", "edp"),
            max_instructions=int(item["max_instructions"]),
        )
        # ranking happens during serialization, so objective errors
        # (e.g. a time objective with no clock) must stay inside the try
        payload = json.loads(report.to_json())
    except Exception as exc:  # noqa: BLE001 — per-request isolation is the point
        return {
            "ok": False,
            "stage": "explore",
            "error_type": type(exc).__name__,
            "message": str(exc),
        }
    top_k = item.get("top_k")
    if top_k is not None:
        payload["scores"] = payload["scores"][: int(top_k)]
    return {"ok": True, "report": payload}


class WorkerPool:
    """Persistent, *supervised* executor of estimate batches and explore jobs.

    ``workers >= 1`` with fork available → a
    :class:`concurrent.futures.ProcessPoolExecutor` over forked children.
    ``workers == 0`` (or no fork) → a single-thread in-process executor
    with identical semantics, used by tests and tiny deployments.

    A dead or wedged pool is recoverable: :meth:`restart` kills any
    surviving children, replaces the executor and bumps ``generation``
    so concurrent crash handlers can tell "already respawned" from
    "respawn needed".  Because prewarming happened in the parent before
    the *first* fork, respawned children re-inherit the warm
    :func:`~repro.xtcore.compilation_cache` copy-on-write for free.
    """

    def __init__(
        self,
        model: EnergyMacroModel,
        workers: int = 0,
        prewarm: Sequence[str] = (),
    ) -> None:
        if workers < 0:
            raise ValueError(f"workers must be >= 0, got {workers}")
        self.model = model
        self.prewarmed = self._prewarm(prewarm)
        self.mode = "fork" if workers >= 1 and _fork_context() is not None else "inline"
        self.workers = workers if self.mode == "fork" else max(1, workers)
        #: bumped on every restart; crash handlers use it to deduplicate
        self.generation = 0
        #: pool respawns performed over the service lifetime
        self.restarts = 0
        self._fallback: Optional[concurrent.futures.ThreadPoolExecutor] = None
        self._executor = self._make_executor()

    def _make_executor(self) -> concurrent.futures.Executor:
        if self.mode == "fork":
            return concurrent.futures.ProcessPoolExecutor(
                max_workers=self.workers,
                mp_context=_fork_context(),
                initializer=_worker_init,
                initargs=(self.model, True),
            )
        _worker_init(self.model)
        return concurrent.futures.ThreadPoolExecutor(
            max_workers=self.workers, thread_name_prefix="repro-serve"
        )

    def _prewarm(self, prewarm: Sequence[str]) -> int:
        """Lower bundled benchmarks into the compilation cache pre-fork.

        Runs in the parent, *before* the executor exists: forked children
        inherit the populated :func:`~repro.xtcore.compilation_cache`
        copy-on-write, so no worker ever compiles a prewarmed program.
        """
        _worker_init(self.model)  # parent needs the same memos for keys
        names = list(prewarm)
        if names == ["suite"]:
            names = sorted(benchmark_cases())
        warmed = 0
        for name in names:
            case = benchmark_cases().get(name)
            if case is None:
                raise ValueError(f"cannot prewarm unknown benchmark {name!r}")
            config, program = case.build()
            compilation_cache().get_or_compile(config, program)
            warmed += 1
        return warmed

    def restart(self) -> int:
        """Replace a dead/wedged executor; returns the new generation.

        Fork mode first terminates surviving children (a hung worker
        never finishes its batch on its own), then abandons the broken
        executor without waiting and builds a fresh one.  Inline mode
        cannot kill threads; it just swaps executors and lets stragglers
        drain into cancelled futures.
        """
        old = self._executor
        processes = getattr(old, "_processes", None)
        if processes:
            for process in list(processes.values()):
                try:
                    # SIGKILL, not SIGTERM: a wedged worker may never
                    # service a catchable signal, and an uncatchable one
                    # also cannot echo into any signal plumbing the
                    # child inherited from the parent across fork
                    process.kill()
                except Exception:  # noqa: BLE001 — already-dead children are fine
                    pass
        try:
            old.shutdown(wait=False, cancel_futures=True)
        except Exception:  # noqa: BLE001 — a broken executor may refuse politely
            pass
        self._executor = self._make_executor()
        self.generation += 1
        self.restarts += 1
        return self.generation

    def submit_estimate_batch(
        self, items: Sequence[dict]
    ) -> "concurrent.futures.Future[dict]":
        return self._executor.submit(run_estimate_batch, list(items))

    def submit_inline_batch(
        self, items: Sequence[dict]
    ) -> "concurrent.futures.Future[dict]":
        """Run a batch in-process, bypassing the (possibly broken) pool.

        This is the circuit breaker's degraded path: the parent already
        holds the model and memos (installed during prewarm), so the
        batch runs on a lazily-created single-thread executor exactly
        like ``--workers 0`` mode would.
        """
        if self._fallback is None:
            self._fallback = concurrent.futures.ThreadPoolExecutor(
                max_workers=1, thread_name_prefix="repro-serve-degraded"
            )
        return self._fallback.submit(run_estimate_batch, list(items))

    def submit_explore(self, item: dict) -> "concurrent.futures.Future[dict]":
        return self._executor.submit(run_explore, dict(item))

    def shutdown(self) -> None:
        # don't block on stragglers: timed-out jobs may still be running
        self._executor.shutdown(wait=False, cancel_futures=True)
        if self._fallback is not None:
            self._fallback.shutdown(wait=False, cancel_futures=True)
