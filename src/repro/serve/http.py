"""Minimal asyncio HTTP/1.1 plumbing for the estimation service.

The service speaks a deliberately small subset of HTTP — JSON request
bodies, JSON or plain-text responses, keep-alive connections — over
``asyncio`` streams, with **no third-party dependencies**.  This module
owns the wire concerns (request parsing, size limits, response
formatting) so :mod:`repro.serve.server` can be pure routing + policy.

Limits are enforced while reading, before any body is buffered whole:
an over-long request line/header block or a body beyond
``max_body_bytes`` is answered with 431/413 instead of being swallowed.
"""

from __future__ import annotations

import asyncio
import dataclasses
import json
from typing import Optional
from urllib.parse import parse_qsl, urlsplit

#: Protect the parser from hostile request lines / header blocks.
MAX_REQUEST_LINE = 8 * 1024
MAX_HEADER_BYTES = 32 * 1024
#: Default cap on request bodies (the API layer has tighter source limits).
DEFAULT_MAX_BODY = 1024 * 1024

REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    413: "Payload Too Large",
    429: "Too Many Requests",
    431: "Request Header Fields Too Large",
    500: "Internal Server Error",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}


class HttpProtocolError(Exception):
    """A malformed or over-limit request; carries the status to answer."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status


@dataclasses.dataclass
class HttpRequest:
    """One parsed request."""

    method: str
    path: str
    query: dict[str, str]
    headers: dict[str, str]
    body: bytes

    def json(self) -> object:
        """The body parsed as JSON (HttpProtocolError 400 on failure)."""
        if not self.body:
            raise HttpProtocolError(400, "request body must be JSON (got empty body)")
        try:
            return json.loads(self.body)
        except json.JSONDecodeError as exc:
            raise HttpProtocolError(400, f"request body is not valid JSON: {exc}")

    @property
    def keep_alive(self) -> bool:
        return self.headers.get("connection", "keep-alive").lower() != "close"


async def read_request(
    reader: asyncio.StreamReader, max_body_bytes: int = DEFAULT_MAX_BODY
) -> Optional[HttpRequest]:
    """Parse one request off the stream; None on a cleanly closed connection."""
    try:
        line = await reader.readuntil(b"\r\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None  # connection closed between requests: normal
        raise HttpProtocolError(400, "truncated request line")
    except asyncio.LimitOverrunError:
        raise HttpProtocolError(431, "request line too long")
    if len(line) > MAX_REQUEST_LINE:
        raise HttpProtocolError(431, "request line too long")
    parts = line.decode("latin-1").strip().split()
    if len(parts) != 3:
        raise HttpProtocolError(400, f"malformed request line {line!r}")
    method, target, _version = parts

    headers: dict[str, str] = {}
    header_bytes = 0
    while True:
        try:
            line = await reader.readuntil(b"\r\n")
        except (asyncio.IncompleteReadError, asyncio.LimitOverrunError):
            raise HttpProtocolError(400, "truncated header block")
        if line in (b"\r\n", b"\n"):
            break
        header_bytes += len(line)
        if header_bytes > MAX_HEADER_BYTES:
            raise HttpProtocolError(431, "header block too large")
        name, sep, value = line.decode("latin-1").partition(":")
        if not sep:
            raise HttpProtocolError(400, f"malformed header line {line!r}")
        headers[name.strip().lower()] = value.strip()

    if "transfer-encoding" in headers:
        raise HttpProtocolError(400, "chunked request bodies are not supported")
    body = b""
    length_header = headers.get("content-length")
    if length_header is not None:
        try:
            length = int(length_header)
        except ValueError:
            raise HttpProtocolError(400, f"bad Content-Length {length_header!r}")
        if length < 0:
            raise HttpProtocolError(400, f"bad Content-Length {length_header!r}")
        if length > max_body_bytes:
            raise HttpProtocolError(
                413, f"request body of {length} bytes exceeds {max_body_bytes}"
            )
        try:
            body = await reader.readexactly(length)
        except asyncio.IncompleteReadError:
            raise HttpProtocolError(400, "request body shorter than Content-Length")

    split = urlsplit(target)
    query = dict(parse_qsl(split.query, keep_blank_values=True))
    return HttpRequest(
        method=method.upper(),
        path=split.path or "/",
        query=query,
        headers=headers,
        body=body,
    )


def format_response(
    status: int,
    body: bytes,
    content_type: str,
    extra_headers: Optional[dict[str, str]] = None,
    keep_alive: bool = True,
) -> bytes:
    reason = REASONS.get(status, "Unknown")
    lines = [
        f"HTTP/1.1 {status} {reason}",
        f"Content-Type: {content_type}",
        f"Content-Length: {len(body)}",
        f"Connection: {'keep-alive' if keep_alive else 'close'}",
    ]
    for name, value in (extra_headers or {}).items():
        lines.append(f"{name}: {value}")
    return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1") + body


def json_response(
    status: int,
    payload: object,
    extra_headers: Optional[dict[str, str]] = None,
    keep_alive: bool = True,
) -> bytes:
    body = (json.dumps(payload, indent=2, sort_keys=True) + "\n").encode("utf-8")
    return format_response(
        status, body, "application/json", extra_headers, keep_alive
    )


def text_response(
    status: int,
    text: str,
    extra_headers: Optional[dict[str, str]] = None,
    keep_alive: bool = True,
) -> bytes:
    return format_response(
        status,
        text.encode("utf-8"),
        "text/plain; charset=utf-8",
        extra_headers,
        keep_alive,
    )
