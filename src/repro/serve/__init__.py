"""``repro.serve`` — the batch estimation service.

The paper's macro-model estimate is ~1000x cheaper than RTL power
simulation, which makes energy estimation viable as an *interactive
service*: a DSE loop, a CI fleet or many concurrent users hammering one
long-running process.  This package is that server-shaped entry point:

* :class:`EstimationService` — request coalescing by content address,
  windowed batching, a persistent fork-based worker pool pre-warmed
  through the shared :class:`~repro.xtcore.compiled.CompilationCache`,
  the DSE :class:`~repro.dse.cache.ResultCache` as a shared on-disk
  result store, bounded queues with ``429`` backpressure and
  :class:`~repro.core.runner.RetryPolicy`-driven timeouts;
* :class:`EstimationServer` / :func:`run_server` — the stdlib-only
  asyncio HTTP transport (``repro serve`` on the command line);
* :class:`ServiceMetrics` / :class:`ServiceMetricsObserver` — the
  ``/metrics`` registry, fed worker-side through the
  :mod:`repro.obs` observer protocol.

See ``docs/SERVING.md`` for the wire API and operational semantics.
"""

from .admission import DrainRateEstimator, retry_after_seconds
from .api import ApiError, EstimateRequest, ExploreRequest, parse_estimate, parse_explore, request_key
from .batching import BatchQueue, Coalescer, Job, partition_compatible
from .metrics import LatencyWindow, ServiceMetrics, ServiceMetricsObserver, render_prometheus
from .pool import WorkerPool, run_estimate_batch, run_explore
from .server import EstimationServer, EstimationService, run_server
from .supervise import (
    CircuitBreaker,
    InjectedWorkerCrash,
    QuarantineRegistry,
    deadline_at,
    deadline_expired,
    is_pool_crash,
)

__all__ = [
    "ApiError",
    "BatchQueue",
    "CircuitBreaker",
    "Coalescer",
    "DrainRateEstimator",
    "EstimateRequest",
    "EstimationServer",
    "EstimationService",
    "ExploreRequest",
    "InjectedWorkerCrash",
    "Job",
    "LatencyWindow",
    "QuarantineRegistry",
    "ServiceMetrics",
    "ServiceMetricsObserver",
    "WorkerPool",
    "deadline_at",
    "deadline_expired",
    "is_pool_crash",
    "parse_estimate",
    "parse_explore",
    "partition_compatible",
    "render_prometheus",
    "request_key",
    "retry_after_seconds",
    "run_estimate_batch",
    "run_explore",
    "run_server",
]
