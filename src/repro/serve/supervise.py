"""Self-healing primitives for the serving and parallel-evaluation stack.

A forked worker dying is not an exception at scale — it is the steady
state.  This module holds the small, reusable pieces the service (and
the future sharded fleet) composes into a recovery story:

* :func:`is_pool_crash` — one predicate for "the executor is gone"
  covering real :class:`concurrent.futures.BrokenExecutor` process
  death and the chaos harness's :class:`InjectedWorkerCrash` (the
  inline-pool stand-in for ``os._exit`` in a forked child);
* :class:`QuarantineRegistry` — per-request-key crash accounting.  A
  request whose (bisected, singleton) batch keeps killing the pool is
  **poisoned**; after ``threshold`` isolated crashes it is quarantined
  and answered with a typed failure instead of crashing workers
  forever.  Keys that later succeed are exonerated;
* :class:`CircuitBreaker` — consecutive pool-crash counting with
  open/half-open/closed states.  While open the service degrades to
  inline single-threaded evaluation (the ``--workers 0`` path) instead
  of thrashing respawns; after ``cooldown`` seconds one probe batch is
  allowed back onto the pool;
* deadline helpers — client-supplied ``deadline_ms`` becomes an
  absolute :func:`time.monotonic` instant that flows through the batch
  queue into the worker call, so expired requests are shed before
  simulation, not after;
* :func:`execute_chaos_directive` — the worker-side half of the chaos
  harness: directives are *stamped by the parent* (deterministic,
  seeded — see :class:`repro.testing.faults.ServiceChaosPlan`) and
  executed here as a real ``os._exit`` / sleep in the worker.

Everything is transport-free and asyncio-free so the DSE engine and
future fleet layers can reuse it unchanged.
"""

from __future__ import annotations

import concurrent.futures
import os
import time
from collections import OrderedDict
from typing import Callable, Optional

#: Item-dict key carrying a parent-stamped chaos directive to a worker.
CHAOS_KEY = "_chaos"

#: Item-dict key carrying the absolute monotonic deadline to a worker.
DEADLINE_KEY = "deadline"


class InjectedWorkerCrash(RuntimeError):
    """The inline-pool analog of a forked worker dying mid-batch.

    In fork mode the chaos harness calls ``os._exit`` in the child and
    the parent observes :class:`concurrent.futures.BrokenExecutor`; in
    inline (thread) mode killing the process would kill the test, so
    the directive raises this instead and the supervisor treats both
    identically (see :func:`is_pool_crash`).
    """


def is_pool_crash(exc: BaseException) -> bool:
    """True when ``exc`` means the worker pool died under a batch."""
    return isinstance(
        exc, (concurrent.futures.BrokenExecutor, InjectedWorkerCrash)
    )


# -- deadlines ---------------------------------------------------------------


def deadline_at(deadline_ms: Optional[int]) -> Optional[float]:
    """A client ``deadline_ms`` as an absolute monotonic instant."""
    if deadline_ms is None:
        return None
    return time.monotonic() + deadline_ms / 1e3


def deadline_expired(deadline: Optional[float]) -> bool:
    """Whether an absolute monotonic deadline has passed (None = never)."""
    return deadline is not None and time.monotonic() >= deadline


# -- quarantine --------------------------------------------------------------


class QuarantineRegistry:
    """Crash accounting that isolates poisoned requests.

    The supervisor bisects a crashed batch until a *singleton* batch
    crashes the pool; only those isolated crashes count against the
    key (a request that merely shared a batch with the poison is never
    blamed).  ``threshold`` isolated crashes quarantine the key; a
    success exonerates it.
    """

    def __init__(self, threshold: int = 2, max_entries: int = 1024) -> None:
        if threshold < 1:
            raise ValueError(f"threshold must be >= 1, got {threshold}")
        self.threshold = threshold
        self.max_entries = max_entries
        self._crashes: "OrderedDict[str, int]" = OrderedDict()
        self._quarantined: "OrderedDict[str, str]" = OrderedDict()
        #: total keys ever quarantined (monotonic, survives eviction)
        self.total_quarantined = 0

    def record_crash(self, key: str, name: str = "?") -> bool:
        """Count one isolated crash; True when the key is now quarantined."""
        count = self._crashes.get(key, 0) + 1
        self._crashes[key] = count
        self._crashes.move_to_end(key)
        while len(self._crashes) > self.max_entries:
            self._crashes.popitem(last=False)
        if count >= self.threshold:
            if key not in self._quarantined:
                self.total_quarantined += 1
            self._quarantined[key] = name
            self._quarantined.move_to_end(key)
            while len(self._quarantined) > self.max_entries:
                self._quarantined.popitem(last=False)
            self._crashes.pop(key, None)
            return True
        return False

    def record_success(self, key: str) -> None:
        """Exonerate a key that completed normally."""
        self._crashes.pop(key, None)

    def is_quarantined(self, key: str) -> bool:
        return key in self._quarantined

    def release(self, key: str) -> bool:
        """Operator override: lift a quarantine (True if it was held)."""
        self._crashes.pop(key, None)
        return self._quarantined.pop(key, None) is not None

    @property
    def quarantined_count(self) -> int:
        return len(self._quarantined)

    def snapshot(self) -> dict:
        """The ``/metrics`` view: held keys (with names) and totals."""
        return {
            "threshold": self.threshold,
            "held": len(self._quarantined),
            "total_quarantined": self.total_quarantined,
            "keys": {key: name for key, name in self._quarantined.items()},
            "suspects": dict(self._crashes),
        }


# -- circuit breaker ---------------------------------------------------------

BREAKER_CLOSED = "closed"
BREAKER_OPEN = "open"
BREAKER_HALF_OPEN = "half-open"

#: Numeric encoding for the Prometheus rendering.
BREAKER_STATE_CODES = {BREAKER_CLOSED: 0, BREAKER_HALF_OPEN: 1, BREAKER_OPEN: 2}


class CircuitBreaker:
    """Consecutive-failure breaker guarding the forked worker pool.

    ``failure_threshold`` consecutive pool crashes open the breaker;
    while open, :meth:`allows_pool` is False and callers should take
    the degraded (inline) path.  After ``cooldown`` seconds the state
    reads half-open: the pool may be probed again, and the probe's
    outcome closes the breaker or re-opens it for another cooldown.
    """

    def __init__(
        self,
        failure_threshold: int = 5,
        cooldown: float = 30.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError(
                f"failure_threshold must be >= 1, got {failure_threshold}"
            )
        if cooldown <= 0:
            raise ValueError(f"cooldown must be positive, got {cooldown}")
        self.failure_threshold = failure_threshold
        self.cooldown = cooldown
        self._clock = clock
        self._consecutive_failures = 0
        self._opened_at: Optional[float] = None
        #: times the breaker tripped open (monotonic counter)
        self.trips = 0

    @property
    def state(self) -> str:
        if self._opened_at is None:
            return BREAKER_CLOSED
        if self._clock() - self._opened_at >= self.cooldown:
            return BREAKER_HALF_OPEN
        return BREAKER_OPEN

    def allows_pool(self) -> bool:
        """Whether a batch may be dispatched to the real pool right now."""
        return self.state != BREAKER_OPEN

    def record_failure(self) -> bool:
        """Count one pool crash; True when this crash trips the breaker."""
        self._consecutive_failures += 1
        if self.state == BREAKER_HALF_OPEN:
            # the probe failed: re-open for a fresh cooldown
            self._opened_at = self._clock()
            return False
        if (
            self._opened_at is None
            and self._consecutive_failures >= self.failure_threshold
        ):
            self._opened_at = self._clock()
            self.trips += 1
            return True
        return False

    def record_success(self) -> None:
        """A pool batch completed: close the breaker, reset the count."""
        self._consecutive_failures = 0
        self._opened_at = None

    def snapshot(self) -> dict:
        state = self.state
        payload = {
            "state": state,
            "consecutive_failures": self._consecutive_failures,
            "failure_threshold": self.failure_threshold,
            "cooldown_seconds": self.cooldown,
            "trips": self.trips,
        }
        if self._opened_at is not None:
            payload["open_for_seconds"] = round(self._clock() - self._opened_at, 3)
        return payload


# -- worker-side chaos execution ---------------------------------------------


def execute_chaos_directive(directive: str, fork: bool) -> None:
    """Run one parent-stamped chaos directive inside a worker.

    ``crash``      — die the way a segfaulting/OOM-killed child does:
                     ``os._exit`` in fork mode (the parent sees
                     :class:`~concurrent.futures.process.BrokenProcessPool`),
                     :class:`InjectedWorkerCrash` in inline mode.
    ``hang:<s>``   — sleep ``s`` seconds mid-batch.  In fork mode the
                     supervisor's timeout + pool respawn kills the
                     wedged child; in inline mode the sleep is kept
                     short by the plan so the thread eventually drains.
    """
    if directive == "crash":
        if fork:
            os._exit(13)
        raise InjectedWorkerCrash("chaos: injected worker crash")
    if directive.startswith("hang:"):
        time.sleep(float(directive.split(":", 1)[1]))
        return
    raise ValueError(f"unknown chaos directive {directive!r}")
