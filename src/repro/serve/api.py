"""Request/response vocabulary of the batch estimation service.

The wire format is deliberately tiny: JSON objects over HTTP, validated
here into frozen request dataclasses before anything touches the
simulator.  Validation failures raise :class:`ApiError` carrying the
HTTP status to send, so the transport layer never inspects exception
types.

A request names its workload either **inline** (``program.source``
assembly text plus optional ``extensions`` from the bundled library) or
by **bundled benchmark name** (``benchmark``, one of the
characterization-suite programs) — the second form is what load
generators and smoke tests use, since it ships no assembly.

The deduplication identity of an estimate request is
:func:`request_key` — exactly the DSE result cache's content address
``sha256(model digest, config fingerprint, program image digest,
instruction budget)`` — so the service's in-memory memo, its in-flight
coalescing map and the shared on-disk
:class:`~repro.dse.cache.ResultCache` all agree on what "the same
request" means, and a score computed by an exploration is a cache hit
for the service (and vice versa).
"""

from __future__ import annotations

import dataclasses
from typing import Optional

from ..dse.cache import candidate_cache_key
from ..tech import CalibrationError, default_calibration
from ..xtcore import DEFAULT_MAX_INSTRUCTIONS

#: Upper bound on inline assembly source accepted over the wire.
MAX_SOURCE_BYTES = 256 * 1024

#: Hard ceiling on a request's instruction budget (DoS guard).
MAX_REQUEST_INSTRUCTIONS = 50_000_000

#: Objectives accepted by an explore request (mirrors ``repro.dse``).
EXPLORE_OBJECTIVES = ("energy", "cycles", "edp", "area", "time", "edp_seconds")

#: Strategies accepted by an explore request.
EXPLORE_STRATEGIES = ("exhaustive", "random", "greedy")


class ApiError(Exception):
    """A request the service refuses, with the HTTP status to answer."""

    def __init__(
        self,
        status: int,
        message: str,
        code: str = "bad_request",
        headers: Optional[dict] = None,
    ) -> None:
        super().__init__(message)
        self.status = status
        self.code = code
        self.headers = headers

    def to_payload(self) -> dict:
        return {"error": self.code, "message": str(self)}


def _require_dict(payload: object) -> dict:
    if not isinstance(payload, dict):
        raise ApiError(400, "request body must be a JSON object")
    return payload


def _parse_budget(payload: dict) -> int:
    raw = payload.get("max_instructions", DEFAULT_MAX_INSTRUCTIONS)
    if not isinstance(raw, int) or isinstance(raw, bool) or raw < 1:
        raise ApiError(400, "max_instructions must be a positive integer")
    if raw > MAX_REQUEST_INSTRUCTIONS:
        raise ApiError(
            400,
            f"max_instructions {raw} exceeds the service ceiling "
            f"{MAX_REQUEST_INSTRUCTIONS}",
        )
    return raw


#: Hard ceiling on a client deadline (anything longer is "no deadline").
MAX_DEADLINE_MS = 3_600_000


def _parse_deadline(payload: dict) -> Optional[int]:
    raw = payload.get("deadline_ms")
    if raw is None:
        return None
    if not isinstance(raw, int) or isinstance(raw, bool) or raw < 1:
        raise ApiError(400, "deadline_ms must be a positive integer")
    if raw > MAX_DEADLINE_MS:
        raise ApiError(
            400,
            f"deadline_ms {raw} exceeds the service ceiling {MAX_DEADLINE_MS}",
        )
    return raw


def _parse_operating_point(payload: dict) -> Optional[str]:
    """Validate an optional operating point; returns the canonical key.

    Canonicalizing here (``"65 nm @ 1.1 V @ 800 MHz"`` and
    ``"65nm@1.1V@800MHz"`` become one key) keeps request dedup exact.
    """
    raw = payload.get("operating_point")
    if raw is None:
        return None
    if not isinstance(raw, str) or not raw:
        raise ApiError(
            400,
            "operating_point must be a string like '65nm@1.1V@800MHz'",
        )
    try:
        return default_calibration().validate(raw).key
    except CalibrationError as exc:
        raise ApiError(400, f"bad operating_point: {exc}") from exc


def _parse_extensions(payload: dict) -> tuple[str, ...]:
    raw = payload.get("extensions", ())
    if isinstance(raw, str):
        raw = [token.strip() for token in raw.split(",") if token.strip()]
    if not isinstance(raw, (list, tuple)) or not all(
        isinstance(item, str) for item in raw
    ):
        raise ApiError(400, "extensions must be a list of mnemonic strings")
    return tuple(raw)


@dataclasses.dataclass(frozen=True)
class EstimateRequest:
    """One validated macro-model estimation request."""

    #: display name of the program (response labelling only)
    name: str
    #: inline assembly source, or None when ``benchmark`` is set
    source: Optional[str]
    #: bundled benchmark name, or None when ``source`` is set
    benchmark: Optional[str]
    #: custom-instruction mnemonics (inline-source requests only)
    extensions: tuple[str, ...]
    max_instructions: int
    #: include the per-variable energy breakdown in the response
    variables: bool = False
    #: client-supplied total deadline; the service sheds the request
    #: (504) anywhere along the pipeline once it expires
    deadline_ms: Optional[int] = None
    #: canonical operating-point key to estimate at, or None for the
    #: model's own fit point
    operating_point: Optional[str] = None


def parse_estimate(payload: object) -> EstimateRequest:
    """Validate an ``POST /estimate`` body into an :class:`EstimateRequest`."""
    body = _require_dict(payload)
    benchmark = body.get("benchmark")
    program = body.get("program")
    if (benchmark is None) == (program is None):
        raise ApiError(
            400, "provide exactly one of 'benchmark' or 'program' (inline source)"
        )
    variables = body.get("variables", False)
    if not isinstance(variables, bool):
        raise ApiError(400, "variables must be a boolean")
    max_instructions = _parse_budget(body)
    deadline_ms = _parse_deadline(body)
    operating_point = _parse_operating_point(body)
    if benchmark is not None:
        if not isinstance(benchmark, str) or not benchmark:
            raise ApiError(400, "benchmark must be a non-empty string")
        if body.get("extensions"):
            raise ApiError(
                400, "extensions apply to inline programs only (benchmarks bundle theirs)"
            )
        return EstimateRequest(
            name=benchmark,
            source=None,
            benchmark=benchmark,
            extensions=(),
            max_instructions=max_instructions,
            variables=variables,
            deadline_ms=deadline_ms,
            operating_point=operating_point,
        )
    prog = _require_dict(program)
    source = prog.get("source")
    if not isinstance(source, str) or not source.strip():
        raise ApiError(400, "program.source must be non-empty assembly text")
    if len(source.encode("utf-8")) > MAX_SOURCE_BYTES:
        raise ApiError(
            413, f"program.source exceeds {MAX_SOURCE_BYTES} bytes", code="too_large"
        )
    name = prog.get("name", "request")
    if not isinstance(name, str) or not name:
        raise ApiError(400, "program.name must be a non-empty string")
    return EstimateRequest(
        name=name,
        source=source,
        benchmark=None,
        extensions=_parse_extensions(body),
        max_instructions=max_instructions,
        variables=variables,
        deadline_ms=deadline_ms,
        operating_point=operating_point,
    )


@dataclasses.dataclass(frozen=True)
class ExploreRequest:
    """One validated design-space exploration request."""

    space: str
    strategy: str
    budget: Optional[int]
    seed: int
    objective: str
    max_instructions: int
    top_k: Optional[int]
    #: canonical operating-point key to score against, or None for the
    #: model's own fit point
    operating_point: Optional[str] = None


def parse_explore(payload: object) -> ExploreRequest:
    """Validate an ``POST /explore`` body into an :class:`ExploreRequest`."""
    body = _require_dict(payload)
    space = body.get("space")
    if not isinstance(space, str) or not space:
        raise ApiError(400, "space must name a registered search space")
    strategy = body.get("strategy", "exhaustive")
    if strategy not in EXPLORE_STRATEGIES:
        raise ApiError(
            400, f"strategy must be one of {', '.join(EXPLORE_STRATEGIES)}"
        )
    budget = body.get("budget")
    if budget is not None and (
        not isinstance(budget, int) or isinstance(budget, bool) or budget < 1
    ):
        raise ApiError(400, "budget must be a positive integer")
    seed = body.get("seed", 0)
    if not isinstance(seed, int) or isinstance(seed, bool):
        raise ApiError(400, "seed must be an integer")
    objective = body.get("objective", "edp")
    if objective not in EXPLORE_OBJECTIVES:
        raise ApiError(
            400, f"objective must be one of {', '.join(EXPLORE_OBJECTIVES)}"
        )
    top_k = body.get("top_k")
    if top_k is not None and (
        not isinstance(top_k, int) or isinstance(top_k, bool) or top_k < 1
    ):
        raise ApiError(400, "top_k must be a positive integer")
    return ExploreRequest(
        space=space,
        strategy=strategy,
        budget=budget,
        seed=seed,
        objective=objective,
        max_instructions=_parse_budget(body),
        top_k=top_k,
        operating_point=_parse_operating_point(body),
    )


def request_key(model_digest: str, config, program, max_instructions: int) -> str:
    """The coalescing/memo/disk-cache identity of one estimate request.

    Delegates to :func:`repro.dse.cache.candidate_cache_key` so service
    results and exploration results share one content address.
    """
    return candidate_cache_key(model_digest, config, program, max_instructions)
