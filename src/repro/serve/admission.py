"""Admission control primitives: drain-rate estimation, computed backoff.

Backpressure is only useful when the client knows *how long* to back
off.  A constant ``Retry-After: 1`` under-waits a deep queue (the client
burns attempts re-hitting a still-full service) and over-waits an almost
empty one.  This module derives the hint from observed behavior instead:

* :class:`DrainRateEstimator` — an exponentially-decayed rate estimate
  (the load-average shape) of how many requests per second the service
  actually completes.  Each completed batch folds an impulse of
  ``n / tau`` into the rate after decaying by ``exp(-dt / tau)``, so a
  steady workload converges on its true completion rate and an idle
  service decays toward zero;
* :func:`retry_after_seconds` — the ``Retry-After`` value for a queue
  of ``depth`` entries draining at ``rate``/s: the time until the queue
  has room, clamped to ``[1, cap]`` whole seconds, with a conservative
  cold-start default while no drain has been observed yet.

Both the single-node :class:`~repro.serve.server.EstimationService` and
the fleet router's per-node gossip tables
(:mod:`repro.fleet.admission`) are built on these pieces, so a client
sees one consistent backoff story whether it talks to a node directly
or through the fleet.
"""

from __future__ import annotations

import math
import threading
import time
from typing import Callable

#: Retry-After while the drain rate is still unknown (cold start).
COLD_START_RETRY_AFTER = 2

#: Upper bound on any computed Retry-After hint, in seconds.
MAX_RETRY_AFTER = 60


class DrainRateEstimator:
    """Exponentially-decayed completions-per-second estimate.

    ``tau`` is the averaging time constant in seconds: the estimate
    forgets ~63% of its history every ``tau`` seconds.  The update rule

        rate <- rate * exp(-dt / tau) + n / tau

    makes a Poisson stream of events at rate ``lam`` converge on
    ``rate == lam`` while staying O(1) in space and time.  Thread-safe:
    batch completions land from the event loop, reads may come from a
    metrics scrape on another thread.
    """

    def __init__(
        self,
        tau: float = 10.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if tau <= 0:
            raise ValueError(f"tau must be positive, got {tau}")
        self.tau = tau
        self._clock = clock
        self._lock = threading.Lock()
        self._rate = 0.0
        self._updated = self._clock()
        #: total completions ever recorded (monotonic counter)
        self.completions = 0

    def _decayed(self, now: float) -> float:
        dt = max(0.0, now - self._updated)
        if dt == 0.0:
            return self._rate
        return self._rate * math.exp(-dt / self.tau)

    def record(self, completed: int = 1) -> None:
        """Fold ``completed`` just-finished requests into the estimate."""
        if completed <= 0:
            return
        now = self._clock()
        with self._lock:
            self._rate = self._decayed(now) + completed / self.tau
            self._updated = now
            self.completions += completed

    @property
    def rate(self) -> float:
        """Current completions/second, decayed to *now*."""
        now = self._clock()
        with self._lock:
            return self._decayed(now)

    def snapshot(self) -> dict:
        return {
            "rate_per_s": round(self.rate, 4),
            "tau_seconds": self.tau,
            "completions": self.completions,
        }


def retry_after_seconds(
    depth: int,
    rate: float,
    cap: int = MAX_RETRY_AFTER,
    cold_start: int = COLD_START_RETRY_AFTER,
) -> int:
    """Whole seconds a client should wait for ``depth`` items to drain.

    ``rate`` is the observed drain rate (requests/second).  While the
    rate is effectively zero — a cold service, or one that has been idle
    long enough for the estimate to decay away — the hint falls back to
    ``cold_start`` rather than claiming the queue will never drain.
    The result is always in ``[1, cap]``: HTTP Retry-After is in whole
    seconds and sub-second waits round up to keep the hint honest.
    """
    if depth <= 0:
        return 1
    if rate <= 1e-9:
        return max(1, min(cap, cold_start))
    return max(1, min(cap, math.ceil(depth / rate)))
