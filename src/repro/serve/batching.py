"""Request coalescing and batch assembly.

Two independent mechanisms make a duplicate-heavy workload cheap:

* **Coalescing** (:class:`Coalescer`): each estimate request is
  content-addressed by :func:`repro.serve.api.request_key`.  A request
  whose key is already *in flight* attaches to the existing job's future
  instead of enqueueing a second simulation; a request whose key is in
  the bounded completed-**memo** is answered without touching the queue
  at all.  Estimation is a pure function of (model, config, program,
  budget), so both merges are exact, not heuristic.
* **Batching** (:class:`BatchQueue`): the dispatcher takes the first
  queued job, then keeps collecting for up to ``batch_window`` seconds
  or ``max_batch`` jobs, and partitions the harvest into per-processor
  groups (:func:`partition_compatible`).  One worker round-trip then
  amortizes config resolution and pool overhead across the whole group —
  the server-side analog of the CLI's multi-program ``estimate`` fast
  path.

The queue is **bounded**: ``put_nowait`` raising
:class:`asyncio.QueueFull` is the backpressure signal the server turns
into ``429 Retry-After``.
"""

from __future__ import annotations

import asyncio
import dataclasses
import time
from collections import OrderedDict
from typing import Optional


@dataclasses.dataclass
class Job:
    """One enqueued estimate, shared by every coalesced waiter."""

    key: str
    #: batch-compatibility group (the processor-config fingerprint)
    group: str
    #: picklable worker item (see :func:`repro.serve.pool.resolve_workload`)
    item: dict
    future: "asyncio.Future[dict]"
    enqueued_at: float = dataclasses.field(default_factory=time.monotonic)
    #: how many requests this job answers (1 + coalesced attachments)
    waiters: int = 1
    #: absolute monotonic deadline (None = none); checked at harvest time
    #: and again worker-side, so an expired request is shed, not simulated
    deadline: Optional[float] = None

    @property
    def expired(self) -> bool:
        return self.deadline is not None and time.monotonic() >= self.deadline


class Coalescer:
    """Exact duplicate suppression: an in-flight map plus a completed memo."""

    def __init__(self, memo_size: int = 4096) -> None:
        if memo_size < 0:
            raise ValueError(f"memo_size must be >= 0, got {memo_size}")
        self.memo_size = memo_size
        self._memo: "OrderedDict[str, dict]" = OrderedDict()
        self._inflight: dict[str, Job] = {}
        self.memo_hits = 0
        self.coalesced = 0

    def find_memo(self, key: str) -> Optional[dict]:
        payload = self._memo.get(key)
        if payload is not None:
            self._memo.move_to_end(key)
            self.memo_hits += 1
        return payload

    def find_inflight(self, key: str) -> Optional[Job]:
        job = self._inflight.get(key)
        if job is not None:
            job.waiters += 1
            self.coalesced += 1
        return job

    def open(self, job: Job) -> None:
        """Register a job as the in-flight owner of its key."""
        self._inflight[job.key] = job

    def close(self, key: str, payload: Optional[dict] = None) -> None:
        """Retire an in-flight key, memoizing its payload on success."""
        self._inflight.pop(key, None)
        if payload is not None and self.memo_size:
            self._memo[key] = payload
            self._memo.move_to_end(key)
            while len(self._memo) > self.memo_size:
                self._memo.popitem(last=False)

    @property
    def inflight_count(self) -> int:
        return len(self._inflight)

    @property
    def memo_count(self) -> int:
        return len(self._memo)


class BatchQueue:
    """A bounded job queue with windowed batch harvesting."""

    def __init__(self, maxsize: int) -> None:
        if maxsize < 1:
            raise ValueError(f"queue maxsize must be >= 1, got {maxsize}")
        self.maxsize = maxsize
        self._queue: "asyncio.Queue[Job]" = asyncio.Queue(maxsize)

    def put_nowait(self, job: Job) -> None:
        """Enqueue or raise :class:`asyncio.QueueFull` (the 429 signal)."""
        self._queue.put_nowait(job)

    def qsize(self) -> int:
        return self._queue.qsize()

    async def next_batch(self, max_batch: int, window: float) -> list[Job]:
        """Block for the first job, then harvest more for up to ``window`` s.

        Already-queued jobs are collected without waiting, so a deep queue
        drains at full batch width regardless of the window.
        """
        first = await self._queue.get()
        batch = [first]
        deadline = time.monotonic() + max(0.0, window)
        while len(batch) < max_batch:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                # drain whatever is immediately available, then stop
                try:
                    batch.append(self._queue.get_nowait())
                    continue
                except asyncio.QueueEmpty:
                    break
            try:
                batch.append(
                    await asyncio.wait_for(self._queue.get(), timeout=remaining)
                )
            except asyncio.TimeoutError:
                break
        return batch


def partition_compatible(jobs: list[Job]) -> list[list[Job]]:
    """Split a harvest into dispatchable groups (same processor config).

    Jobs sharing a config fingerprint resolve the config once worker-side;
    mixing fingerprints in one batch would serialize distinct processors
    behind each other for no amortization gain.
    """
    groups: "OrderedDict[str, list[Job]]" = OrderedDict()
    for job in jobs:
        groups.setdefault(job.group, []).append(job)
    return list(groups.values())
