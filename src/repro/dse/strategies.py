"""Search strategies over a :class:`~repro.dse.space.SearchSpace`.

All strategies speak one interface — ``explore(space, evaluate)`` where
``evaluate`` scores a *batch* of candidates (the engine parallelizes and
caches inside it) — and are deterministic for a fixed seed:

=============  ============================================================
`exhaustive`   every design point, in mixed-radix enumeration order
`random`       a seeded uniform sample of ``budget`` distinct points
`greedy`       seeded-restart hill-climb over single-knob neighbor moves
=============  ============================================================

The greedy strategy returns every point it scored (its exploration
history), not just the final local optimum, so Pareto extraction and
ranking work uniformly across strategies.
"""

from __future__ import annotations

import random
from typing import Callable, Optional, Sequence

from .evaluate import OBJECTIVES, CandidateScore
from .space import Candidate, SearchSpace

#: ``evaluate(batch) -> scores`` — successes only, input order preserved.
EvaluateFn = Callable[[Sequence[Candidate]], "list[CandidateScore]"]


class Strategy:
    """Base class: a named exploration policy."""

    name = "?"

    def explore(self, space: SearchSpace, evaluate: EvaluateFn) -> list[CandidateScore]:
        raise NotImplementedError

    def describe(self) -> str:
        return self.name


class ExhaustiveStrategy(Strategy):
    """Score every design point of the space."""

    name = "exhaustive"

    def explore(self, space: SearchSpace, evaluate: EvaluateFn) -> list[CandidateScore]:
        return evaluate(list(space.candidates()))


class RandomStrategy(Strategy):
    """Score a seeded uniform sample of ``budget`` distinct design points."""

    name = "random"

    def __init__(self, budget: int, seed: int = 0) -> None:
        if budget < 1:
            raise ValueError(f"budget must be >= 1, got {budget}")
        self.budget = budget
        self.seed = seed

    def explore(self, space: SearchSpace, evaluate: EvaluateFn) -> list[CandidateScore]:
        if self.budget >= space.size:
            return evaluate(list(space.candidates()))
        rng = random.Random(self.seed)
        indices = sorted(rng.sample(range(space.size), self.budget))
        return evaluate([space.candidate_at(index) for index in indices])

    def describe(self) -> str:
        return f"{self.name}(budget={self.budget}, seed={self.seed})"


class GreedyStrategy(Strategy):
    """Hill-climb over single-knob moves from a seeded random start.

    Each step scores every unvisited single-knob neighbor of the current
    point as one batch (so ``--jobs`` parallelism applies) and moves to
    the strictly best neighbor under ``objective``; the walk stops at a
    local optimum or after ``max_steps`` moves.  ``restarts`` independent
    walks share one evaluation memo through the engine, making repeat
    visits free.
    """

    name = "greedy"

    def __init__(
        self,
        seed: int = 0,
        objective: str = "edp",
        max_steps: int = 32,
        restarts: int = 1,
    ) -> None:
        if objective not in OBJECTIVES:
            raise ValueError(
                f"unknown objective {objective!r} (use one of {', '.join(OBJECTIVES)})"
            )
        if max_steps < 1:
            raise ValueError(f"max_steps must be >= 1, got {max_steps}")
        if restarts < 1:
            raise ValueError(f"restarts must be >= 1, got {restarts}")
        self.seed = seed
        self.objective = objective
        self.max_steps = max_steps
        self.restarts = restarts

    def explore(self, space: SearchSpace, evaluate: EvaluateFn) -> list[CandidateScore]:
        rng = random.Random(self.seed)
        history: dict[str, CandidateScore] = {}
        for _ in range(self.restarts):
            start = space.candidate_at(rng.randrange(space.size))
            self._climb(space, evaluate, start, history)
        return list(history.values())

    def _climb(
        self,
        space: SearchSpace,
        evaluate: EvaluateFn,
        start: Candidate,
        history: dict[str, CandidateScore],
    ) -> None:
        current = self._score_one(evaluate, start, history)
        if current is None:
            return  # start point failed to build/score; nothing to climb from
        for _ in range(self.max_steps):
            neighbors = self._neighbors(space, current)
            scores = self._score_batch(evaluate, neighbors, history)
            best = min(
                scores,
                key=lambda s: (s.objective(self.objective), s.key),
                default=None,
            )
            if best is None or best.objective(self.objective) >= current.objective(
                self.objective
            ):
                return  # local optimum
            current = best

    def _neighbors(self, space: SearchSpace, score: CandidateScore) -> list[Candidate]:
        """All assignments differing from ``score`` in exactly one knob."""
        neighbors = []
        for knob in space.knobs:
            for value in knob.values:
                if value == score.assignment[knob.name]:
                    continue
                assignment = dict(score.assignment)
                assignment[knob.name] = value
                neighbors.append(space.candidate(assignment))
        return neighbors

    def _score_one(
        self,
        evaluate: EvaluateFn,
        candidate: Candidate,
        history: dict[str, CandidateScore],
    ) -> Optional[CandidateScore]:
        if candidate.key in history:
            return history[candidate.key]
        scores = evaluate([candidate])
        if not scores:
            return None
        history[candidate.key] = scores[0]
        return scores[0]

    def _score_batch(
        self,
        evaluate: EvaluateFn,
        candidates: list[Candidate],
        history: dict[str, CandidateScore],
    ) -> list[CandidateScore]:
        fresh = [c for c in candidates if c.key not in history]
        for score in evaluate(fresh):
            history[score.key] = score
        return [history[c.key] for c in candidates if c.key in history]

    def describe(self) -> str:
        return (
            f"{self.name}(seed={self.seed}, objective={self.objective}, "
            f"restarts={self.restarts})"
        )


def make_strategy(
    name: str,
    budget: Optional[int] = None,
    seed: int = 0,
    objective: str = "edp",
    restarts: int = 1,
) -> Strategy:
    """Build a strategy from CLI-ish parameters."""
    if name == "exhaustive":
        return ExhaustiveStrategy()
    if name == "random":
        if budget is None:
            raise ValueError("random strategy requires a --budget")
        return RandomStrategy(budget=budget, seed=seed)
    if name == "greedy":
        return GreedyStrategy(seed=seed, objective=objective, restarts=restarts)
    raise ValueError(
        f"unknown strategy {name!r} (use exhaustive, random or greedy)"
    )
