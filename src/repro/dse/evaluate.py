"""Candidate scoring: the macro-model fast path, parallel and cached.

Every candidate costs one untraced instruction-set simulation (the
paper's ~1000x-cheaper-than-RTL estimate path) plus a netlist generation
for the custom-area proxy.  The engine layers three accelerations on it:

* a per-run **memo** — strategies that revisit design points (greedy
  walks) pay for each point once;
* the content-addressed **on-disk cache** (:mod:`repro.dse.cache`) —
  repeated or resumed explorations skip already-scored points entirely;
* a ``multiprocessing`` **parallel executor** (``jobs > 1``) — uncached
  candidates are scored by a pool of worker processes that rebuild the
  design point from its picklable knob assignment.

Failures are isolated per candidate into the same
:class:`~repro.core.runner.SampleFailure` records the characterization
runner uses, with the same ``max_failures`` →
:class:`~repro.core.runner.TooManyFailures` degradation rule.
"""

from __future__ import annotations

import dataclasses
import multiprocessing
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor
from typing import Callable, Optional, Sequence

from ..core.model import EnergyMacroModel
from ..core.runner import SampleFailure, TooManyFailures
from ..rtl import generate_netlist
from ..xtcore import (
    DEFAULT_MAX_INSTRUCTIONS,
    compilation_cache,
    run_batch,
    semantic_fingerprint,
)
from .cache import ResultCache, candidate_cache_key, model_digest
from .space import OPERATING_POINT_KNOB, Candidate, SearchSpace


@dataclasses.dataclass
class CandidateScore:
    """One scored design point (all objectives are minimized).

    ``operating_point`` / ``frequency_mhz`` are set when the design point
    carries an operating-point knob (or the model itself is bound to a
    point); they unlock the real-time objectives ``time`` (seconds) and
    ``edp_seconds`` on top of the cycle-based ones.
    """

    key: str  # canonical assignment key within the space
    assignment: dict
    program_name: str
    processor_name: str
    energy: float
    cycles: int
    area: float
    from_cache: bool = False
    operating_point: Optional[str] = None
    frequency_mhz: Optional[float] = None

    @property
    def edp(self) -> float:
        """Energy-delay product, the default exploration objective."""
        return self.energy * self.cycles

    @property
    def seconds(self) -> Optional[float]:
        """Wall-clock runtime; needs an operating point to pin the clock."""
        if self.frequency_mhz is None:
            return None
        return self.cycles / (self.frequency_mhz * 1e6)

    @property
    def edp_seconds(self) -> Optional[float]:
        """Energy-delay product with delay in real seconds."""
        seconds = self.seconds
        if seconds is None:
            return None
        return self.energy * seconds

    def objective(self, name: str) -> float:
        """Look up one scalar objective by name."""
        if name == "edp":
            return self.edp
        if name in ("energy", "cycles", "area"):
            return float(getattr(self, name))
        if name in ("time", "edp_seconds"):
            value = self.seconds if name == "time" else self.edp_seconds
            if value is None:
                raise ValueError(
                    f"objective {name!r} needs an operating point (a clock "
                    "frequency) — explore an operating-point space or pass "
                    "--operating-point"
                )
            return float(value)
        raise ValueError(
            f"unknown objective {name!r} "
            f"(use {', '.join(OBJECTIVES[:-1])} or {OBJECTIVES[-1]})"
        )

    def to_payload(self) -> dict:
        payload = {
            "key": self.key,
            "assignment": dict(self.assignment),
            "program": self.program_name,
            "processor": self.processor_name,
            "energy": float(self.energy),
            "cycles": int(self.cycles),
            "edp": float(self.edp),
            "area": float(self.area),
            "operating_point": self.operating_point,
            "frequency_mhz": self.frequency_mhz,
        }
        if self.frequency_mhz is not None:
            payload["seconds"] = self.seconds
            payload["edp_seconds"] = self.edp_seconds
        return payload

    @classmethod
    def from_payload(cls, payload: dict, from_cache: bool = False) -> "CandidateScore":
        frequency = payload.get("frequency_mhz")
        return cls(
            key=payload["key"],
            assignment=dict(payload["assignment"]),
            program_name=payload["program"],
            processor_name=payload["processor"],
            energy=float(payload["energy"]),
            cycles=int(payload["cycles"]),
            area=float(payload["area"]),
            from_cache=from_cache,
            operating_point=payload.get("operating_point"),
            frequency_mhz=float(frequency) if frequency is not None else None,
        )


OBJECTIVES = ("energy", "cycles", "edp", "area", "time", "edp_seconds")


# -- worker-process plumbing -------------------------------------------------
#
# Workers receive the heavy shared state (model, space) once through the
# pool initializer and per-candidate work as a small picklable assignment
# dict.  Under the "fork" start method the initializer arguments are
# inherited rather than pickled, so spaces with closure builders work.

_WORKER_STATE: dict = {}


def _worker_init(model: EnergyMacroModel, space: SearchSpace, max_instructions: int) -> None:
    _WORKER_STATE["model"] = model
    _WORKER_STATE["space"] = space
    _WORKER_STATE["max_instructions"] = max_instructions


def _score_point(
    model: EnergyMacroModel,
    space: SearchSpace,
    assignment: dict,
    max_instructions: int,
    built: Optional[tuple] = None,
) -> dict:
    """Score one design point; never raises (failures become records)."""
    from .space import assignment_key

    key = assignment_key(assignment)
    stage = "build"
    try:
        # An operating-point knob rescales the model, never the hardware:
        # model.at() memoizes per point, so the derived model is shared
        # across every candidate at that point.
        model = model.at(assignment.get(OPERATING_POINT_KNOB))
        config, program = built if built is not None else space.build(assignment)
        stage = "estimate"
        estimate = model.estimate(config, program, max_instructions=max_instructions)
        area = generate_netlist(config).custom_area
    except Exception as exc:  # noqa: BLE001 — per-candidate isolation is the point
        return {
            "ok": False,
            "key": key,
            "processor": "" if stage == "build" else config.name,
            "stage": stage,
            "error_type": type(exc).__name__,
            "message": str(exc),
        }
    point = model.operating_point
    return {
        "ok": True,
        "key": key,
        "assignment": dict(assignment),
        "program": program.name,
        "processor": config.name,
        "energy": float(estimate.energy),
        "cycles": int(estimate.cycles),
        "area": float(area),
        "operating_point": point.key if point is not None else None,
        "frequency_mhz": point.frequency_mhz if point is not None else None,
    }


def _worker_evaluate(assignment: dict) -> dict:
    return _score_point(
        _WORKER_STATE["model"],
        _WORKER_STATE["space"],
        assignment,
        _WORKER_STATE["max_instructions"],
    )


def _fork_context() -> Optional[multiprocessing.context.BaseContext]:
    """The fork start method, or None where only spawn exists.

    Spawned workers would have to pickle the space (whose builder is
    typically a closure), so on fork-less platforms the engine degrades
    to serial evaluation instead of failing.
    """
    if "fork" in multiprocessing.get_all_start_methods():
        return multiprocessing.get_context("fork")
    return None


class EvaluationEngine:
    """Scores candidates of one space against one macro-model."""

    def __init__(
        self,
        model: EnergyMacroModel,
        space: SearchSpace,
        jobs: int = 1,
        cache: Optional[ResultCache] = None,
        max_instructions: int = DEFAULT_MAX_INSTRUCTIONS,
        max_failures: Optional[int] = None,
        progress: Optional[Callable[[str], None]] = None,
    ) -> None:
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        self.model = model
        self.space = space
        self.jobs = jobs
        self.cache = cache
        self.max_instructions = max_instructions
        self.max_failures = max_failures
        self.progress = progress
        self.failures: list[SampleFailure] = []
        self.evaluated = 0  # candidates actually simulated this run
        self.memo_hits = 0
        #: worker-pool breakages survived this run (each one degrades the
        #: remaining candidates of the run to serial in-parent scoring)
        self.pool_restarts = 0
        #: batched-execution accounting: groups of semantically compatible
        #: candidates scored through one run_batch pass, and how many
        #: member candidates those passes covered
        self.batch_groups = 0
        self.batch_members = 0
        # Per-operating-point (model, digest) pairs: the base model under
        # None plus one derived model per point key seen in assignments.
        # Distinct digests make cache keys disjoint across points.
        self._models: dict[Optional[str], tuple[EnergyMacroModel, str]] = {
            None: (model, model_digest(model))
        }
        self._memo: dict[str, CandidateScore] = {}

    def _resolve_model(self, assignment: dict) -> tuple[EnergyMacroModel, str]:
        """The (derived model, digest) for one assignment's operating point.

        Raises (CalibrationError) on a bad point — callers score inside
        their per-candidate isolation, or pre-validate via the space.
        """
        point = assignment.get(OPERATING_POINT_KNOB)
        entry = self._models.get(point)
        if entry is None:
            derived = self.model.at(point)
            entry = (derived, model_digest(derived))
            self._models[point] = entry
        return entry

    # -- cache bookkeeping -------------------------------------------------

    @property
    def cache_hits(self) -> int:
        return self.cache.hits if self.cache is not None else 0

    @property
    def cache_misses(self) -> int:
        return self.cache.misses if self.cache is not None else 0

    # -- evaluation --------------------------------------------------------

    def evaluate(self, candidates: Sequence[Candidate]) -> list[CandidateScore]:
        """Score a batch; returns successes in input order.

        Failures are recorded on ``self.failures`` (and checked against
        ``max_failures``) instead of aborting the batch.
        """
        slots: list[Optional[CandidateScore]] = [None] * len(candidates)
        pending: list[tuple[int, Candidate, Optional[tuple]]] = []

        for position, candidate in enumerate(candidates):
            memo = self._memo.get(candidate.key)
            if memo is not None:
                self.memo_hits += 1
                slots[position] = memo
                continue
            built = None
            if self.cache is not None:
                outcome = self._try_cache(candidate)
                if isinstance(outcome, CandidateScore):
                    slots[position] = outcome
                    self._memo[candidate.key] = outcome
                    continue
                built = outcome  # (config, program) or None when build failed
                if built is None:
                    continue  # build failure already recorded
            pending.append((position, candidate, built))

        for (position, candidate, built), raw in zip(pending, self._run_pending(pending)):
            if raw["ok"]:
                score = CandidateScore.from_payload(
                    {**raw, "key": candidate.key}, from_cache=False
                )
                self.evaluated += 1
                slots[position] = score
                self._memo[candidate.key] = score
                self._store(candidate, raw, built)
                self._emit(f"scored {candidate.key}: edp {score.edp:.3g}")
            else:
                self._record_failure(candidate, raw)
        return [score for score in slots if score is not None]

    # -- internals ---------------------------------------------------------

    def _run_pending(self, pending: list) -> list[dict]:
        """Score the uncached candidates, in parallel when asked to."""
        if not pending:
            return []
        context = _fork_context() if self.jobs > 1 and len(pending) > 1 else None
        if context is None:
            return self._run_serial(pending)
        # Lower every pending design point in the parent before forking:
        # workers inherit the populated compilation cache copy-on-write, so
        # each (program, config-content) pair compiles exactly once per
        # exploration instead of once per worker.
        for _, candidate, built in pending:
            try:
                config, program = built if built is not None else candidate.build()
                compilation_cache().get_or_compile(config, program)
            except Exception:  # noqa: BLE001 — the worker records the real failure
                continue
        return self._run_forked(context, pending)

    def _run_serial(self, pending: list) -> list[dict]:
        """In-parent scoring with batched multi-config execution.

        Design points that share one program (by content digest) and one
        semantic partition (:func:`repro.xtcore.semantic_fingerprint`)
        execute the identical instruction trajectory, so each such group
        of two or more is scored through a single
        :func:`repro.xtcore.run_batch` pass — one simulation feeding N
        per-config stats planes — instead of N full simulations.
        Singles, build failures and batch-incompatible points keep the
        per-point path; result records are shaped identically either way.
        """
        results: list[Optional[dict]] = [None] * len(pending)
        groups: dict[tuple, list] = {}
        for index, (_, candidate, built) in enumerate(pending):
            try:
                config, program = (
                    built if built is not None else candidate.build()
                )
                partition = (program.digest(), semantic_fingerprint(config))
            except Exception:  # noqa: BLE001 — scored per-point for the real record
                results[index] = _score_point(
                    self.model,
                    self.space,
                    pending[index][1].assignment_dict,
                    self.max_instructions,
                    built=built,
                )
                continue
            groups.setdefault(partition, []).append(
                (index, candidate, config, program)
            )
        for members in groups.values():
            if len(members) < 2:
                index, candidate, config, program = members[0]
                results[index] = _score_point(
                    self.model,
                    self.space,
                    candidate.assignment_dict,
                    self.max_instructions,
                    built=(config, program),
                )
                continue
            self.batch_groups += 1
            self.batch_members += len(members)
            try:
                batch = run_batch(
                    [member[2] for member in members],
                    members[0][3],
                    max_instructions=self.max_instructions,
                )
            except Exception as exc:  # noqa: BLE001 — the fault is trajectory-wide
                for index, candidate, config, program in members:
                    results[index] = {
                        "ok": False,
                        "key": candidate.key,
                        "processor": config.name,
                        "stage": "estimate",
                        "error_type": type(exc).__name__,
                        "message": str(exc),
                    }
                continue
            for (index, candidate, config, program), result in zip(members, batch):
                try:
                    # One shared simulation, one derived model per member's
                    # operating point: candidates differing only in the
                    # point collapse into this group (identical config ->
                    # identical semantic fingerprint) and diverge here.
                    member_model = self._resolve_model(candidate.assignment_dict)[0]
                    energy = member_model.estimate_from_stats(result.stats, config)
                    area = generate_netlist(config).custom_area
                except Exception as exc:  # noqa: BLE001 — per-candidate isolation
                    results[index] = {
                        "ok": False,
                        "key": candidate.key,
                        "processor": config.name,
                        "stage": "estimate",
                        "error_type": type(exc).__name__,
                        "message": str(exc),
                    }
                    continue
                point = member_model.operating_point
                results[index] = {
                    "ok": True,
                    "key": candidate.key,
                    "assignment": dict(candidate.assignment_dict),
                    "program": program.name,
                    "processor": config.name,
                    "energy": float(energy),
                    "cycles": int(result.stats.total_cycles),
                    "area": float(area),
                    "operating_point": point.key if point is not None else None,
                    "frequency_mhz": (
                        point.frequency_mhz if point is not None else None
                    ),
                }
        return results

    def _run_forked(self, context, pending: list) -> list[dict]:
        """Parallel scoring that survives worker death.

        Candidates go to a :class:`ProcessPoolExecutor` in bounded waves
        (``jobs * 4``).  If a worker dies (``BrokenProcessPool`` — a
        segfaulting candidate, an OOM kill), only the in-flight wave is
        affected: its unfinished candidates become ``stage="pool"``
        failures (the crasher cannot be told apart from innocents that
        were in flight beside it), and every not-yet-submitted candidate
        is scored serially in the parent, so one bad design point cannot
        sink an exploration.
        """
        assignments = [candidate.assignment_dict for _, candidate, _ in pending]
        results: list[Optional[dict]] = [None] * len(pending)
        wave_size = max(1, self.jobs * 4)
        executor = ProcessPoolExecutor(
            max_workers=min(self.jobs, len(pending)),
            mp_context=context,
            initializer=_worker_init,
            initargs=(self.model, self.space, self.max_instructions),
        )
        try:
            for start in range(0, len(pending), wave_size):
                wave = range(start, min(start + wave_size, len(pending)))
                futures = [
                    executor.submit(_worker_evaluate, assignments[i]) for i in wave
                ]
                crash: Optional[BaseException] = None
                for offset, future in zip(wave, futures):
                    try:
                        results[offset] = future.result()
                    except BrokenExecutor as exc:
                        crash = exc
                        results[offset] = {
                            "ok": False,
                            "key": pending[offset][1].key,
                            "processor": "",
                            "stage": "pool",
                            "error_type": type(exc).__name__,
                            "message": (
                                "worker pool died while this candidate was "
                                f"in flight: {exc}"
                            ),
                        }
                if crash is not None:
                    self.pool_restarts += 1
                    self._emit(
                        "worker pool died; scoring the remaining "
                        f"{len(pending) - wave.stop} candidate(s) serially"
                    )
                    break
        finally:
            executor.shutdown(wait=False)
        for index, raw in enumerate(results):
            if raw is None:
                _, candidate, built = pending[index]
                results[index] = _score_point(
                    self.model,
                    self.space,
                    candidate.assignment_dict,
                    self.max_instructions,
                    built=built,
                )
        return results

    def _try_cache(self, candidate: Candidate):
        """A cached score, a built (config, program) pair, or None."""
        try:
            digest = self._resolve_model(candidate.assignment_dict)[1]
            config, program = candidate.build()
        except Exception as exc:  # noqa: BLE001
            self._record_failure(
                candidate,
                {
                    "processor": "",
                    "stage": "build",
                    "error_type": type(exc).__name__,
                    "message": str(exc),
                },
            )
            return None
        key = candidate_cache_key(digest, config, program, self.max_instructions)
        payload = self.cache.get(key)
        if payload is not None:
            score = CandidateScore.from_payload(
                {**payload, "key": candidate.key, "assignment": candidate.assignment_dict},
                from_cache=True,
            )
            self._emit(f"cache hit {candidate.key}")
            return score
        return (config, program)

    def _store(self, candidate: Candidate, raw: dict, built: Optional[tuple]) -> None:
        if self.cache is None:
            return
        config, program = built if built is not None else candidate.build()
        key = candidate_cache_key(
            self._resolve_model(candidate.assignment_dict)[1],
            config,
            program,
            self.max_instructions,
        )
        payload = dict(raw)
        payload.pop("ok", None)
        self.cache.put(key, payload)

    def _record_failure(self, candidate: Candidate, raw: dict) -> None:
        failure = SampleFailure(
            name=candidate.key,
            processor_name=raw.get("processor", ""),
            stage=raw.get("stage", "?"),
            error_type=raw.get("error_type", "?"),
            message=raw.get("message", ""),
            attempts=1,
        )
        self.failures.append(failure)
        self._emit(f"FAILED {failure.describe()}")
        if self.max_failures is not None and len(self.failures) > self.max_failures:
            raise TooManyFailures(
                f"aborting exploration: {len(self.failures)} candidate failure(s) "
                f"exceed max_failures={self.max_failures}\n"
                + "\n".join(f.describe() for f in self.failures),
                failures=list(self.failures),
            )

    def _emit(self, message: str) -> None:
        if self.progress is not None:
            self.progress(message)
