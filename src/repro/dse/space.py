"""Candidate-space layer: declarative design-point enumeration.

The paper's motivating use case (Sec. I) is comparing many candidate
custom-instruction sets on energy during ASIP design.  A
:class:`SearchSpace` describes such a candidate family declaratively —
named :class:`Knob`\\ s with finite value sets plus a builder that turns
one knob assignment into a concrete ``(ProcessorConfig, Program)`` pair —
and the exploration engine enumerates, samples or hill-climbs over it.

Design points are addressed three interchangeable ways:

* an **assignment** — ``{"impl": "gfmac", "icache_kb": 8}``;
* an **index** — the mixed-radix rank of the assignment in knob order,
  which lets strategies sample uniformly without materializing the space;
* a **key** — the canonical ``"icache_kb=8,impl=gfmac"`` string used in
  reports and result caches.

Bundled spaces (see :data:`BUILTIN_SPACES`) subsume the hand-built
``fir_choices()``/``reed_solomon_choices()`` studies and extend them with
cache-geometry knobs; they are registered by name so worker processes can
rebuild them from a picklable reference.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, Iterator, Mapping, Sequence, Tuple

from ..asm import Program, assemble
from ..tech import DEFAULT_DVFS_POINTS, OperatingPoint, default_calibration
from ..xtcore import CacheConfig, ProcessorConfig, build_processor

#: Name of the reserved operating-point knob (see
#: :func:`with_operating_points`).  Builders never see it — the value is
#: a :class:`repro.tech.OperatingPoint` key consumed by the evaluation
#: engine, which rescales the model instead of changing the hardware.
OPERATING_POINT_KNOB = "operating_point"

#: A knob assignment: knob name -> chosen value (JSON-scalar).
Assignment = Dict[str, object]

#: ``builder(assignment) -> (config, program)`` for one design point.
BuildFn = Callable[[Assignment], Tuple[ProcessorConfig, Program]]


class SpaceError(ValueError):
    """A malformed search-space definition or knob assignment."""


@dataclasses.dataclass(frozen=True)
class Knob:
    """One discrete design knob: a name plus its finite value set."""

    name: str
    values: tuple

    def __post_init__(self) -> None:
        if not self.name or not self.name.replace("_", "").isalnum():
            raise SpaceError(f"bad knob name {self.name!r}")
        if not self.values:
            raise SpaceError(f"knob {self.name!r} has no values")
        if len(set(self.values)) != len(self.values):
            raise SpaceError(f"knob {self.name!r} has duplicate values")

    def __len__(self) -> int:
        return len(self.values)


def assignment_key(assignment: Mapping[str, object]) -> str:
    """Canonical, order-independent string form of an assignment."""
    return ",".join(f"{name}={assignment[name]}" for name in sorted(assignment))


@dataclasses.dataclass(frozen=True)
class Candidate:
    """One design point of a space: a validated knob assignment."""

    space: "SearchSpace"
    assignment: tuple  # of (name, value) pairs in knob order

    @property
    def assignment_dict(self) -> Assignment:
        return dict(self.assignment)

    @property
    def key(self) -> str:
        """Canonical id of this design point within its space."""
        return assignment_key(self.assignment_dict)

    def build(self) -> Tuple[ProcessorConfig, Program]:
        """Materialize the (processor config, assembled program) pair."""
        return self.space.build(self.assignment_dict)


@dataclasses.dataclass(frozen=True)
class SearchSpace:
    """A finite design space: knobs x builder.

    The knob order is significant: it defines the mixed-radix index of
    each assignment and therefore the deterministic enumeration order.
    """

    name: str
    description: str
    knobs: tuple[Knob, ...]
    builder: BuildFn

    def __post_init__(self) -> None:
        if not self.knobs:
            raise SpaceError(f"space {self.name!r} has no knobs")
        names = [knob.name for knob in self.knobs]
        if len(set(names)) != len(names):
            raise SpaceError(f"space {self.name!r} has duplicate knob names")

    @property
    def size(self) -> int:
        """Total number of design points (product of knob cardinalities)."""
        total = 1
        for knob in self.knobs:
            total *= len(knob)
        return total

    # -- assignment <-> index -------------------------------------------------

    def assignment_at(self, index: int) -> Assignment:
        """Decode a mixed-radix rank into a knob assignment."""
        if not 0 <= index < self.size:
            raise SpaceError(f"index {index} out of range for space of {self.size}")
        assignment: Assignment = {}
        for knob in reversed(self.knobs):
            index, digit = divmod(index, len(knob))
            assignment[knob.name] = knob.values[digit]
        return {knob.name: assignment[knob.name] for knob in self.knobs}

    def index_of(self, assignment: Mapping[str, object]) -> int:
        """The mixed-radix rank of a (validated) assignment."""
        self.validate(assignment)
        index = 0
        for knob in self.knobs:
            index = index * len(knob) + knob.values.index(assignment[knob.name])
        return index

    def validate(self, assignment: Mapping[str, object]) -> None:
        expected = {knob.name for knob in self.knobs}
        got = set(assignment)
        if got != expected:
            missing = sorted(expected - got)
            extra = sorted(got - expected)
            raise SpaceError(
                f"space {self.name!r}: bad assignment"
                + (f", missing knobs {missing}" if missing else "")
                + (f", unknown knobs {extra}" if extra else "")
            )
        for knob in self.knobs:
            if assignment[knob.name] not in knob.values:
                raise SpaceError(
                    f"space {self.name!r}: knob {knob.name!r} has no value "
                    f"{assignment[knob.name]!r} (choose from {list(knob.values)})"
                )

    # -- candidates -----------------------------------------------------------

    def candidate(self, assignment: Mapping[str, object]) -> Candidate:
        self.validate(assignment)
        return Candidate(
            space=self,
            assignment=tuple((knob.name, assignment[knob.name]) for knob in self.knobs),
        )

    def candidate_at(self, index: int) -> Candidate:
        return self.candidate(self.assignment_at(index))

    def candidates(self) -> Iterator[Candidate]:
        """All design points in deterministic (mixed-radix) order."""
        for index in range(self.size):
            yield self.candidate_at(index)

    def build(self, assignment: Mapping[str, object]) -> Tuple[ProcessorConfig, Program]:
        self.validate(assignment)
        return self.builder(dict(assignment))

    def describe(self) -> str:
        lines = [f"space {self.name}: {self.size} design points — {self.description}"]
        for knob in self.knobs:
            lines.append(f"  {knob.name:<14}{', '.join(str(v) for v in knob.values)}")
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# operating-point axis
# ---------------------------------------------------------------------------


def with_operating_points(
    space: SearchSpace,
    points: Sequence["OperatingPoint | str"] = DEFAULT_DVFS_POINTS,
    name: "str | None" = None,
) -> SearchSpace:
    """Cross a space with a technology operating-point axis.

    Appends an ``operating_point`` knob whose values are canonical point
    keys (validated against the default calibration table).  The wrapped
    builder strips the knob before delegating, so the **hardware and the
    simulation are identical across points** — only the energy/time
    scaling differs, which is exactly what lets the evaluation engine
    collapse op-only-differing candidates into one batched simulation.
    """
    if any(knob.name == OPERATING_POINT_KNOB for knob in space.knobs):
        raise SpaceError(
            f"space {space.name!r} already has an {OPERATING_POINT_KNOB!r} knob"
        )
    if not points:
        raise SpaceError("with_operating_points needs at least one operating point")
    calibration = default_calibration()
    keys = []
    for point in points:
        try:
            keys.append(calibration.validate(point).key)
        except ValueError as exc:
            raise SpaceError(f"bad operating point {point!r}: {exc}") from exc
    if len(set(keys)) != len(keys):
        raise SpaceError(f"duplicate operating points in {keys}")

    def build(assignment: Assignment) -> Tuple[ProcessorConfig, Program]:
        inner = dict(assignment)
        inner.pop(OPERATING_POINT_KNOB, None)
        return space.build(inner)

    return SearchSpace(
        name=name if name is not None else f"{space.name}@dvfs",
        description=f"{space.description} x {len(keys)} DVFS operating points",
        knobs=space.knobs + (Knob(OPERATING_POINT_KNOB, tuple(keys)),),
        builder=build,
    )


# ---------------------------------------------------------------------------
# bundled spaces
# ---------------------------------------------------------------------------


def _case_factories(workload: str) -> Mapping[str, Callable]:
    """impl value -> BenchmarkCase factory for one bundled workload."""
    if workload == "reed_solomon":
        from ..programs.reed_solomon import rs_dual, rs_gfmac, rs_gfmul, rs_software

        return {"sw": rs_software, "gfmul": rs_gfmul, "gfmac": rs_gfmac, "dual": rs_dual}
    if workload == "fir":
        from ..programs.fir import fir_mac, fir_packed, fir_software

        return {"sw": fir_software, "mac": fir_mac, "packed": fir_packed}
    raise SpaceError(f"unknown bundled workload {workload!r}")


def _build_impl_point(workload: str, assignment: Assignment) -> Tuple[ProcessorConfig, Program]:
    """Build one bundled design point, honoring optional cache knobs.

    The program is always assembled against the freshly built config's
    ISA so candidate evaluation never leaks object identity between
    design points (a requirement for content-addressed caching).
    """
    case = _case_factories(workload)[assignment["impl"]]()
    base = ProcessorConfig(
        icache=CacheConfig(size_bytes=int(assignment.get("icache_kb", 16)) * 1024),
        dcache=CacheConfig(
            size_bytes=int(assignment.get("dcache_kb", 16)) * 1024,
            ways=int(assignment.get("dcache_ways", 4)),
        ),
    )
    specs = [factory() for factory in case.spec_factories]
    config = build_processor(f"xt-{case.name}", specs, base=base)
    program = assemble(case.source, case.name, isa=config.isa)
    return config, program


def _impl_space(workload: str, impls: Sequence[str], description: str) -> SearchSpace:
    return SearchSpace(
        name=workload,
        description=description,
        knobs=(Knob("impl", tuple(impls)),),
        builder=lambda a: _build_impl_point(workload, a),
    )


def _tuned_space(workload: str, impls: Sequence[str], description: str) -> SearchSpace:
    return SearchSpace(
        name=f"{workload}_tuned",
        description=description,
        knobs=(
            Knob("impl", tuple(impls)),
            Knob("icache_kb", (4, 8, 16)),
            Knob("dcache_kb", (4, 8, 16)),
            Knob("dcache_ways", (1, 2, 4)),
        ),
        builder=lambda a: _build_impl_point(workload, a),
    )


def _builtin_spaces() -> dict[str, Callable[[], SearchSpace]]:
    return {
        "reed_solomon": lambda: _impl_space(
            "reed_solomon",
            ("sw", "gfmul", "gfmac", "dual"),
            "the paper's four Fig. 4 Reed-Solomon custom-instruction choices",
        ),
        "fir": lambda: _impl_space(
            "fir",
            ("sw", "mac", "packed"),
            "the three 16-tap FIR filter implementation choices",
        ),
        "reed_solomon_tuned": lambda: _tuned_space(
            "reed_solomon",
            ("sw", "gfmul", "gfmac", "dual"),
            "Reed-Solomon choices crossed with cache-geometry knobs",
        ),
        "fir_tuned": lambda: _tuned_space(
            "fir",
            ("sw", "mac", "packed"),
            "FIR choices crossed with cache-geometry knobs",
        ),
        "reed_solomon_dvfs": lambda: with_operating_points(
            _impl_space(
                "reed_solomon",
                ("sw", "gfmul", "gfmac", "dual"),
                "the paper's four Fig. 4 Reed-Solomon custom-instruction choices",
            ),
            name="reed_solomon_dvfs",
        ),
        "fir_dvfs": lambda: with_operating_points(
            _impl_space(
                "fir",
                ("sw", "mac", "packed"),
                "the three 16-tap FIR filter implementation choices",
            ),
            name="fir_dvfs",
        ),
    }


#: Names of the spaces shipped with the library.
BUILTIN_SPACES: tuple[str, ...] = tuple(sorted(_builtin_spaces()))

_REGISTRY: dict[str, Callable[[], SearchSpace]] = dict(_builtin_spaces())


def register_space(name: str, factory: Callable[[], SearchSpace]) -> None:
    """Register a space factory so workers can rebuild it by name."""
    _REGISTRY[name] = factory


def available_spaces() -> list[str]:
    return sorted(_REGISTRY)


def get_space(name: str) -> SearchSpace:
    """Build a registered space by name."""
    factory = _REGISTRY.get(name)
    if factory is None:
        raise SpaceError(
            f"unknown search space {name!r}; available: {', '.join(available_spaces())}"
        )
    space = factory()
    if space.name != name:
        raise SpaceError(
            f"space factory registered as {name!r} built a space named {space.name!r}"
        )
    return space
