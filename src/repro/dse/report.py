"""Exploration orchestration and reporting.

:func:`explore` is the one-call API the CLI, the examples and the
benchmarks share: build an engine, run a strategy, package scores,
failures, the Pareto frontier and throughput counters into an
:class:`ExplorationReport` that renders as a text table, JSON or CSV.

:func:`cross_check` is the paper's relative-accuracy safety net (Fig. 4):
re-estimate the top-k macro-model ranking with the slow reference RTL
estimator and report the Spearman rank correlation between the two.
"""

from __future__ import annotations

import csv
import dataclasses
import io
import json
import time
from typing import Callable, Optional, Sequence

from ..analysis.metrics import spearman_rho
from ..core.model import EnergyMacroModel
from ..core.runner import SampleFailure
from ..rtl import reference_energy
from ..xtcore import DEFAULT_MAX_INSTRUCTIONS
from .cache import ResultCache, model_digest as _model_digest
from .evaluate import CandidateScore, EvaluationEngine
from .pareto import PARETO_AXES, pareto_frontier, rank_scores
from .space import OPERATING_POINT_KNOB, SearchSpace
from .strategies import Strategy


@dataclasses.dataclass
class ExplorationReport:
    """Everything one exploration run produced."""

    space_name: str
    space_size: int
    strategy: str
    objective: str
    scores: list[CandidateScore]
    failures: list[SampleFailure]
    pareto: list[CandidateScore]
    jobs: int
    elapsed_seconds: float
    evaluated: int  # candidates actually simulated (cache/memo hits excluded)
    cache_hits: int = 0
    cache_misses: int = 0
    #: worker-pool breakages the run survived (0 = clean run)
    pool_restarts: int = 0
    #: content digest of the model the run scored against (self-describing
    #: artifacts: re-running with a different model is visibly different)
    model_digest: str = ""
    #: the model's own operating-point key, or None at the calibration
    #: reference; per-candidate points live on the scores themselves
    operating_point: Optional[str] = None

    @property
    def ok(self) -> bool:
        return not self.failures

    @property
    def candidates_per_second(self) -> float:
        """Throughput over *scored* candidates (cache hits included)."""
        if self.elapsed_seconds <= 0:
            return float("inf")
        return len(self.scores) / self.elapsed_seconds

    def ranked(self, top_k: Optional[int] = None) -> list[CandidateScore]:
        return rank_scores(self.scores, self.objective, top_k)

    @property
    def best(self) -> Optional[CandidateScore]:
        ranked = self.ranked(top_k=1)
        return ranked[0] if ranked else None

    # -- rendering ---------------------------------------------------------

    def table(self, top_k: Optional[int] = None) -> str:
        """The ranked scores plus frontier/throughput/failure summary."""
        lines = [
            f"space {self.space_name}: scored {len(self.scores)}/{self.space_size} "
            f"design points via {self.strategy} "
            f"({self.elapsed_seconds:.2f}s, {self.candidates_per_second:.1f} cand/s, "
            f"jobs {self.jobs})"
        ]
        if self.cache_hits or self.cache_misses:
            lines.append(
                f"result cache: {self.cache_hits} hit(s), {self.cache_misses} miss(es)"
            )
        if self.pool_restarts:
            lines.append(
                f"worker pool died {self.pool_restarts} time(s); "
                "run completed with serial fallback"
            )
        if self.model_digest or self.operating_point:
            lines.append(
                f"model {self.model_digest[:12] or '?'} at "
                f"{self.operating_point or 'calibration reference'}"
            )
        ranked = self.ranked(top_k)
        # Real-time columns only render when every ranked row has a clock
        # (an operating-point axis or a point-bound model).
        with_time = bool(ranked) and all(
            score.frequency_mhz is not None for score in ranked
        )
        header = (
            f"{'#':>3} {'design point':<34}{'program':<14}"
            f"{'energy':>12}{'cycles':>9}{'EDP':>13}{'area':>9}"
        )
        if with_time:
            header += f"{'time_us':>10}{'EDP_s':>12}"
        lines.append(header)
        lines.append("-" * len(header))
        for i, score in enumerate(ranked, start=1):
            marker = "*" if score in self.pareto else " "
            row = (
                f"{i:>3} {score.key:<33}{marker}{score.program_name:<14}"
                f"{score.energy:>12.0f}{score.cycles:>9}{score.edp:>13.4g}"
                f"{score.area:>9.2f}"
            )
            if with_time:
                row += f"{score.seconds * 1e6:>10.2f}{score.edp_seconds:>12.4g}"
            lines.append(row)
        lines.append(
            f"pareto frontier (*): {len(self.pareto)} point(s) over "
            f"{'/'.join(PARETO_AXES)}"
        )
        if self.failures:
            lines.append(f"{len(self.failures)} candidate failure(s):")
            for failure in self.failures:
                lines.append(f"  {failure.describe()}")
        return "\n".join(lines)

    def to_payload(self) -> dict:
        return {
            "format": "repro-dse-report/1",
            "space": self.space_name,
            "space_size": self.space_size,
            "strategy": self.strategy,
            "objective": self.objective,
            "model_digest": self.model_digest,
            "operating_point": self.operating_point,
            "jobs": self.jobs,
            "elapsed_seconds": self.elapsed_seconds,
            "evaluated": self.evaluated,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "pool_restarts": self.pool_restarts,
            "scores": [score.to_payload() for score in self.ranked()],
            "pareto": [score.key for score in self.pareto],
            "failures": [failure.to_payload() for failure in self.failures],
        }

    def to_json(self) -> str:
        return json.dumps(self.to_payload(), indent=2, sort_keys=True)

    def to_csv(self) -> str:
        """Ranked scores as CSV (one row per design point)."""
        knob_names = sorted(
            {name for score in self.scores for name in score.assignment}
        )
        buffer = io.StringIO()
        writer = csv.writer(buffer)
        writer.writerow(
            ["rank", "key", "program", "processor"]
            + knob_names
            + [
                "energy",
                "cycles",
                "edp",
                "area",
                "operating_point",
                "frequency_mhz",
                "seconds",
                "edp_seconds",
                "pareto",
            ]
        )
        pareto_keys = {score.key for score in self.pareto}
        for rank, score in enumerate(self.ranked(), start=1):
            seconds = score.seconds
            writer.writerow(
                [rank, score.key, score.program_name, score.processor_name]
                + [score.assignment.get(name, "") for name in knob_names]
                + [
                    f"{score.energy:.6g}",
                    score.cycles,
                    f"{score.edp:.6g}",
                    f"{score.area:.4f}",
                    score.operating_point or "",
                    f"{score.frequency_mhz:g}" if score.frequency_mhz else "",
                    f"{seconds:.6g}" if seconds is not None else "",
                    f"{score.edp_seconds:.6g}" if seconds is not None else "",
                    int(score.key in pareto_keys),
                ]
            )
        return buffer.getvalue()


def explore(
    model: EnergyMacroModel,
    space: SearchSpace,
    strategy: Strategy,
    jobs: int = 1,
    cache: Optional[ResultCache] = None,
    objective: str = "edp",
    max_instructions: int = DEFAULT_MAX_INSTRUCTIONS,
    max_failures: Optional[int] = None,
    progress: Optional[Callable[[str], None]] = None,
) -> ExplorationReport:
    """Run one exploration end to end and package the report."""
    if objective in ("time", "edp_seconds"):
        # fail before any simulation: real-time objectives need a clock,
        # from the model's operating point or an operating_point knob
        has_op_knob = any(
            knob.name == OPERATING_POINT_KNOB for knob in space.knobs
        )
        if model.operating_point is None and not has_op_knob:
            raise ValueError(
                f"objective {objective!r} needs an operating point (a clock "
                "frequency): rescale the model with model.at(...) or add an "
                "operating_point knob via with_operating_points(...)"
            )
    engine = EvaluationEngine(
        model,
        space,
        jobs=jobs,
        cache=cache,
        max_instructions=max_instructions,
        max_failures=max_failures,
        progress=progress,
    )
    started = time.perf_counter()
    scores = strategy.explore(space, engine.evaluate)
    elapsed = time.perf_counter() - started
    return ExplorationReport(
        space_name=space.name,
        space_size=space.size,
        strategy=strategy.describe(),
        objective=objective,
        scores=scores,
        failures=list(engine.failures),
        pareto=pareto_frontier(scores),
        jobs=jobs,
        elapsed_seconds=elapsed,
        evaluated=engine.evaluated,
        cache_hits=engine.cache_hits,
        cache_misses=engine.cache_misses,
        pool_restarts=engine.pool_restarts,
        model_digest=_model_digest(model),
        operating_point=(
            model.operating_point.key if model.operating_point is not None else None
        ),
    )


@dataclasses.dataclass
class CrossCheckResult:
    """Macro-model vs reference-RTL agreement on the top-k ranking."""

    rows: list[tuple[str, float, float]]  # (key, macro energy, reference energy)
    rho: float

    def table(self) -> str:
        header = f"{'design point':<34}{'macro':>12}{'reference':>12}"
        lines = [header, "-" * len(header)]
        for key, macro, reference in self.rows:
            lines.append(f"{key:<34}{macro:>12.0f}{reference:>12.0f}")
        lines.append(f"Spearman rank correlation macro vs reference: {self.rho:.3f}")
        return "\n".join(lines)


def cross_check(
    space: SearchSpace,
    scores: Sequence[CandidateScore],
    top_k: Optional[int] = None,
    objective: str = "edp",
    max_instructions: int = DEFAULT_MAX_INSTRUCTIONS,
    operating_point: Optional[str] = None,
) -> CrossCheckResult:
    """Re-estimate the top-k with the slow reference path; Spearman rho.

    This is the paper's relative-accuracy argument applied as a safety
    net: the macro-model picks the candidates, the reference confirms the
    ranking order before anyone commits silicon.
    """
    chosen = rank_scores(scores, objective, top_k)
    if len(chosen) < 2:
        raise ValueError("cross-check needs at least two scored design points")
    rows = []
    for score in chosen:
        config, program = space.candidate(score.assignment).build()
        # Compare at the point each score was estimated at: the reference
        # estimator applies the identical calibration factor, so the
        # macro-vs-reference ratio is point-independent by construction.
        report, _ = reference_energy(
            config,
            program,
            max_instructions=max_instructions,
            operating_point=score.operating_point or operating_point,
        )
        rows.append((score.key, score.energy, report.total))
    rho = spearman_rho([row[1] for row in rows], [row[2] for row in rows])
    return CrossCheckResult(rows=rows, rho=rho)
