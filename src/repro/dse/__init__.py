"""``repro.dse`` — design-space exploration over the energy macro-model.

The paper's whole point (Sec. I) is that a once-characterized macro-model
makes per-candidate energy evaluation cheap enough to *search* the
custom-instruction design space instead of hand-evaluating a few points.
This package is that search engine:

* :mod:`repro.dse.space` — declarative candidate spaces (knobs x builder)
  with deterministic enumeration and a registry of bundled spaces;
* :mod:`repro.dse.evaluate` — the scoring engine: macro-model fast path,
  ``multiprocessing`` parallelism, per-candidate failure isolation and a
  content-addressed on-disk result cache;
* :mod:`repro.dse.strategies` — exhaustive / seeded-random / greedy
  hill-climb search behind one ``Strategy`` interface;
* :mod:`repro.dse.pareto` — Pareto-frontier extraction and deterministic
  ranking;
* :mod:`repro.dse.report` — the one-call :func:`explore` API, report
  rendering (table/JSON/CSV) and the reference-RTL :func:`cross_check`.

Typical use::

    from repro.dse import ExhaustiveStrategy, explore, get_space

    report = explore(model, get_space("reed_solomon"), ExhaustiveStrategy())
    print(report.table())
    best = report.best
"""

from .cache import (
    ResultCache,
    TieredResultCache,
    candidate_cache_key,
    model_digest,
    program_digest,
)
from .evaluate import OBJECTIVES, CandidateScore, EvaluationEngine
from .pareto import PARETO_AXES, dominates, pareto_frontier, rank_scores
from .report import CrossCheckResult, ExplorationReport, cross_check, explore
from .space import (
    BUILTIN_SPACES,
    OPERATING_POINT_KNOB,
    Assignment,
    Candidate,
    Knob,
    SearchSpace,
    SpaceError,
    assignment_key,
    available_spaces,
    get_space,
    register_space,
    with_operating_points,
)
from .strategies import (
    ExhaustiveStrategy,
    GreedyStrategy,
    RandomStrategy,
    Strategy,
    make_strategy,
)

__all__ = [
    "Assignment",
    "BUILTIN_SPACES",
    "Candidate",
    "CandidateScore",
    "CrossCheckResult",
    "EvaluationEngine",
    "ExhaustiveStrategy",
    "ExplorationReport",
    "GreedyStrategy",
    "Knob",
    "OBJECTIVES",
    "OPERATING_POINT_KNOB",
    "PARETO_AXES",
    "RandomStrategy",
    "ResultCache",
    "TieredResultCache",
    "SearchSpace",
    "SpaceError",
    "Strategy",
    "assignment_key",
    "available_spaces",
    "candidate_cache_key",
    "cross_check",
    "dominates",
    "explore",
    "get_space",
    "make_strategy",
    "model_digest",
    "pareto_frontier",
    "program_digest",
    "rank_scores",
    "register_space",
    "with_operating_points",
]
