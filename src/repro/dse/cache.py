"""Content-addressed on-disk cache of candidate scores.

Exploration repeatedly scores the same design points — reruns, resumed
sweeps, greedy walks that revisit neighbors, overlapping spaces — and
every score costs an instruction-set simulation.  This cache keys each
score by *content*, never by object identity or space/knob naming:

    sha256(model digest . config fingerprint . program image digest
           . instruction budget)

so a hit is guaranteed to describe the same (model, processor, program)
triple even across processes, runs and differently-spelled spaces that
happen to build the same design point.

Entries are one JSON file per key, sharded by key prefix, written
atomically (tmp + ``os.replace``); a corrupt or truncated entry reads as
a miss and is rewritten, never trusted.  Corrupt entries are not just
skipped: the damaged file is renamed aside to ``<key>.json.corrupt``
(preserved for forensics, never re-read) and counted, so a cache that is
rotting — a flaky disk, a torn copy — is visible in ``info()`` and the
serving layer's ``/metrics`` instead of silently costing re-simulations.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
from typing import Optional

from ..asm import Program, write_image
from ..core.characterize import atomic_write_json
from ..core.model import EnergyMacroModel
from ..xtcore import ProcessorConfig

#: Format tag stored in every cache entry (bump to invalidate old caches).
CACHE_FORMAT = "repro-dse-score/2"


def model_digest(model: EnergyMacroModel) -> str:
    """Stable digest of a macro-model's content (template + coefficients)."""
    return hashlib.sha256(model.to_json().encode("utf-8")).hexdigest()


def program_digest(program: Program, config: ProcessorConfig) -> str:
    """Stable digest of an assembled program via its serialized XPF image."""
    return hashlib.sha256(write_image(program, config.isa)).hexdigest()


def candidate_cache_key(
    model_fingerprint: str,
    config: ProcessorConfig,
    program: Program,
    max_instructions: int,
) -> str:
    """The content address of one candidate score."""
    blob = "\n".join(
        [
            CACHE_FORMAT,
            model_fingerprint,
            config.fingerprint(),
            program_digest(program, config),
            str(int(max_instructions)),
        ]
    )
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


class ResultCache:
    """One directory of content-addressed candidate scores.

    Concurrency-safe by construction: entries are immutable once written
    (same key ⇒ same content), writes are atomic, and corrupt reads are
    misses — so any number of processes (DSE workers, the estimation
    service's pool) may share one directory.  The hit/miss counters are
    guarded by a lock so in-process concurrent readers keep them exact.
    """

    def __init__(self, root: str) -> None:
        self.root = root
        os.makedirs(root, exist_ok=True)
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.corrupt_entries = 0

    def _path(self, key: str) -> str:
        return os.path.join(self.root, key[:2], f"{key}.json")

    def get(self, key: str) -> Optional[dict]:
        """The stored payload, or None (counted as a miss) if absent/corrupt.

        A *present but unreadable* entry (truncated JSON, wrong format
        tag) is quarantined: renamed to ``<key>.json.corrupt`` so the
        next ``put`` rewrites cleanly, and counted in
        ``corrupt_entries``.  A missing file is a plain miss.
        """
        corrupt = False
        try:
            with open(self._path(key), "r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except FileNotFoundError:
            payload = None
        except (OSError, json.JSONDecodeError):
            payload = None
            corrupt = True
        if payload is not None and (
            not isinstance(payload, dict) or payload.get("format") != CACHE_FORMAT
        ):
            payload = None
            corrupt = True
        if corrupt:
            self._quarantine_corrupt(key)
        if payload is None:
            with self._lock:
                self.misses += 1
            return None
        with self._lock:
            self.hits += 1
        return payload

    def _quarantine_corrupt(self, key: str) -> None:
        path = self._path(key)
        try:
            os.replace(path, f"{path}.corrupt")
        except OSError:
            pass  # racing reader already moved it (or the disk is that bad)
        with self._lock:
            self.corrupt_entries += 1

    def put(self, key: str, payload: dict) -> None:
        path = self._path(key)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        atomic_write_json(path, {**payload, "format": CACHE_FORMAT, "key": key})
        with self._lock:
            self.stores += 1

    def info(self) -> dict:
        """Counter snapshot (cheap — does not walk the directory)."""
        with self._lock:
            return {
                "root": self.root,
                "hits": self.hits,
                "misses": self.misses,
                "stores": self.stores,
                "corrupt_entries": self.corrupt_entries,
            }

    def __len__(self) -> int:
        count = 0
        for _, _, files in os.walk(self.root):
            count += sum(1 for name in files if name.endswith(".json"))
        return count


class TieredResultCache:
    """A per-node cache layered over a cross-node shared directory.

    The fleet topology gives every serving node a **local** result cache
    (fast, on the node's own disk) plus one **shared** tier that all
    nodes mount; a key any node ever computed is a shared-tier hit for
    every other node, so consistent-hash rebalancing (a node joining or
    leaving moves ~K/N keys) never re-simulates work the fleet already
    paid for.

    Read path: local, then shared; a shared hit is *promoted* into the
    local tier so the node answers repeats without touching shared
    storage again.  Write path: both tiers (entries are immutable by
    content address, so double-writes are idempotent).  The interface is
    a drop-in :class:`ResultCache`: ``get``/``put``/``info``/``root``.
    """

    def __init__(self, local_root: str, shared_root: str) -> None:
        if os.path.abspath(local_root) == os.path.abspath(shared_root):
            raise ValueError(
                f"local and shared cache roots must differ, got {local_root!r}"
            )
        self.local = ResultCache(local_root)
        self.shared = ResultCache(shared_root)
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.stores = 0
        #: shared-tier hits copied into the local tier
        self.promotions = 0

    @property
    def root(self) -> str:
        return self.local.root

    @property
    def shared_root(self) -> str:
        return self.shared.root

    def get(self, key: str) -> Optional[dict]:
        payload = self.local.get(key)
        if payload is None:
            payload = self.shared.get(key)
            if payload is not None:
                # promote: strip the bookkeeping fields ResultCache.put
                # re-stamps, so the local entry is byte-equivalent
                stored = {
                    k: v for k, v in payload.items() if k not in ("format", "key")
                }
                self.local.put(key, stored)
                with self._lock:
                    self.promotions += 1
        with self._lock:
            if payload is None:
                self.misses += 1
            else:
                self.hits += 1
        return payload

    def put(self, key: str, payload: dict) -> None:
        self.local.put(key, payload)
        self.shared.put(key, payload)
        with self._lock:
            self.stores += 1

    @property
    def corrupt_entries(self) -> int:
        return self.local.corrupt_entries + self.shared.corrupt_entries

    def info(self) -> dict:
        """Tier-level counters plus per-tier breakdowns (metrics-compatible)."""
        with self._lock:
            payload = {
                "root": self.local.root,
                "shared_root": self.shared.root,
                "hits": self.hits,
                "misses": self.misses,
                "stores": self.stores,
                "promotions": self.promotions,
                "corrupt_entries": self.corrupt_entries,
            }
        payload["tiers"] = {"local": self.local.info(), "shared": self.shared.info()}
        return payload

    def __len__(self) -> int:
        return len(self.shared)
