"""Pareto-frontier extraction and deterministic ranking of scores.

Exploration produces a cloud of (energy, cycles, area) points; design
selection wants (a) the non-dominated frontier across those axes and
(b) a scalar ranking under one objective (EDP by default).  Both are
deterministic: ties break on the canonical candidate key, never on
enumeration order or dict iteration.
"""

from __future__ import annotations

from typing import Sequence

from .evaluate import CandidateScore

#: The axes the frontier minimizes over.
PARETO_AXES = ("energy", "cycles", "area")


def _axis_tuple(score: CandidateScore, axes: Sequence[str]) -> tuple:
    return tuple(score.objective(axis) for axis in axes)


def dominates(a: CandidateScore, b: CandidateScore, axes: Sequence[str] = PARETO_AXES) -> bool:
    """True when ``a`` is no worse than ``b`` everywhere and better somewhere."""
    a_values = _axis_tuple(a, axes)
    b_values = _axis_tuple(b, axes)
    return all(x <= y for x, y in zip(a_values, b_values)) and a_values != b_values


def pareto_frontier(
    scores: Sequence[CandidateScore], axes: Sequence[str] = PARETO_AXES
) -> list[CandidateScore]:
    """The non-dominated subset, sorted by the axis tuple then key.

    Duplicate design points (same key) are collapsed first — a strategy
    may legitimately score a point once from cache and once fresh.
    """
    unique: dict[str, CandidateScore] = {}
    for score in scores:
        unique.setdefault(score.key, score)
    points = sorted(unique.values(), key=lambda s: (_axis_tuple(s, axes), s.key))
    frontier = []
    for candidate in points:
        if not any(dominates(other, candidate, axes) for other in points):
            frontier.append(candidate)
    return frontier


def rank_scores(
    scores: Sequence[CandidateScore],
    objective: str = "edp",
    top_k: int | None = None,
) -> list[CandidateScore]:
    """Scores sorted ascending by ``objective`` (ties by key), deduplicated."""
    unique: dict[str, CandidateScore] = {}
    for score in scores:
        unique.setdefault(score.key, score)
    ranked = sorted(unique.values(), key=lambda s: (s.objective(objective), s.key))
    return ranked if top_k is None else ranked[:top_k]
