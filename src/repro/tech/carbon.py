"""Optional energy -> carbon / total-cost-of-ownership overlay.

The macro-model speaks in abstract energy units per execution.  Once an
operating point pins those units to a deployment scenario, a fleet-level
question becomes answerable: *what does running this candidate at N
executions per second cost per year, in grams of CO2 and in dollars?*
This module is deliberately first-order — a single grid intensity, a
single electricity tariff, a linear silicon cost per area unit — because
the point is ranking candidates, not invoicing a data center.
"""

from __future__ import annotations

import dataclasses
from typing import Iterable, Optional

_SECONDS_PER_YEAR = 365.25 * 24 * 3600.0
_JOULES_PER_KWH = 3.6e6


@dataclasses.dataclass(frozen=True)
class CarbonModel:
    """First-order conversion from model energy units to carbon and cost.

    ``joules_per_unit`` anchors the macro-model's abstract energy unit to
    physical joules (the default treats one unit as one nanojoule, the
    right order of magnitude for the paper's per-instruction figures).
    """

    joules_per_unit: float = 1e-9
    grid_intensity_g_per_kwh: float = 400.0
    electricity_cost_per_kwh: float = 0.12
    silicon_cost_per_area_unit: float = 0.02

    def execution_joules(self, energy_units: float) -> float:
        return energy_units * self.joules_per_unit

    def annual_kwh(self, energy_units: float, executions_per_second: float) -> float:
        joules_per_year = (
            self.execution_joules(energy_units)
            * executions_per_second
            * _SECONDS_PER_YEAR
        )
        return joules_per_year / _JOULES_PER_KWH

    def annual_grams_co2(
        self, energy_units: float, executions_per_second: float
    ) -> float:
        return (
            self.annual_kwh(energy_units, executions_per_second)
            * self.grid_intensity_g_per_kwh
        )

    def annual_energy_cost(
        self, energy_units: float, executions_per_second: float
    ) -> float:
        return (
            self.annual_kwh(energy_units, executions_per_second)
            * self.electricity_cost_per_kwh
        )

    def tco(
        self,
        energy_units: float,
        area: float,
        executions_per_second: float,
        years: float = 3.0,
    ) -> float:
        """Silicon cost plus the energy bill over the deployment lifetime."""
        return (
            area * self.silicon_cost_per_area_unit
            + self.annual_energy_cost(energy_units, executions_per_second) * years
        )


def overlay(
    scores: Iterable,
    executions_per_second: float = 1000.0,
    years: float = 3.0,
    model: Optional[CarbonModel] = None,
) -> list[dict]:
    """Carbon/TCO rows for DSE scores (anything with .key/.energy/.area).

    Returns plain dicts so the result embeds directly into JSON reports.
    Per-execution energy is rate-independent, so the overlay works even
    for scores without an operating point — the rate is the deployment's,
    not the silicon's.
    """
    carbon = model or CarbonModel()
    rows = []
    for score in scores:
        energy = float(score.energy)
        area = float(score.area)
        rows.append(
            {
                "key": score.key,
                "energy": energy,
                "area": area,
                "executions_per_second": executions_per_second,
                "annual_kwh": carbon.annual_kwh(energy, executions_per_second),
                "annual_grams_co2": carbon.annual_grams_co2(
                    energy, executions_per_second
                ),
                "annual_energy_cost": carbon.annual_energy_cost(
                    energy, executions_per_second
                ),
                "tco": carbon.tco(energy, area, executions_per_second, years),
                "tco_years": years,
            }
        )
    return rows


def table(rows: list[dict]) -> str:
    """Render overlay rows as an aligned text table."""
    if not rows:
        return "carbon overlay: no scored candidates"
    header = ("candidate", "kWh/yr", "gCO2/yr", "$/yr", "TCO($)")
    body = [
        (
            str(row["key"]),
            f"{row['annual_kwh']:.4g}",
            f"{row['annual_grams_co2']:.4g}",
            f"{row['annual_energy_cost']:.4g}",
            f"{row['tco']:.4g}",
        )
        for row in rows
    ]
    widths = [
        max(len(header[i]), max(len(line[i]) for line in body))
        for i in range(len(header))
    ]
    lines = [
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(header)),
        "  ".join("-" * widths[i] for i in range(len(header))),
    ]
    for line in body:
        lines.append("  ".join(line[i].ljust(widths[i]) for i in range(len(header))))
    rate = rows[0]["executions_per_second"]
    years = rows[0]["tco_years"]
    lines.append(
        f"(at {rate:g} executions/s, {years:g}-year TCO horizon)"
    )
    return "\n".join(lines)
