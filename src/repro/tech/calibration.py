"""Technology calibration: one characterized model, many operating points.

The paper fits its 21 energy coefficients at one *implicit* operating
point — the process node, supply voltage and clock frequency of the
characterized core.  This module makes that point explicit and opens it
into a family: an :class:`OperatingPoint` names a ``(node_nm, voltage,
frequency_mhz)`` triple, and a :class:`TechCalibration` maps any such
triple to an **energy scale factor** against the calibration's reference
point via the first-order CMOS dynamic-energy law

    E(op) / E(ref)  =  C(node) / C(node_ref) * (V / V_ref)^2

where ``C(node)`` is the per-node switched-capacitance scale read from a
committed table (``tech_calib.json``) by piecewise-linear interpolation
over the process node.  Frequency never enters the per-operation energy
(to first order CMOS dynamic energy per switched event is
frequency-independent); it converts cycle counts into **seconds**, which
is what turns the cycle-based EDP into a real energy-delay product and
enables real-time objectives.

The table is data, not code: rows carry the capacitance scale, a leakage
scale (reserved for static-power overlays), the node's nominal supply
and its nominal-voltage peak clock.  Between rows every column
interpolates linearly in ``node_nm``; outside the table's node range the
calibration refuses to extrapolate (:class:`CalibrationError`), because
the scaling law itself stops being first-order credible there.
"""

from __future__ import annotations

import dataclasses
import json
import pathlib
import re
import threading
from typing import Optional, Sequence

#: Format tag of the committed calibration table.
CALIB_FORMAT = "repro-tech-calib/1"

#: Relative supply-voltage window accepted around a node's nominal
#: voltage (overdrive above, near-threshold scaling below).
MIN_VOLTAGE_RATIO = 0.5
MAX_VOLTAGE_RATIO = 1.5


class CalibrationError(ValueError):
    """An operating point or table the calibration cannot honor."""


_POINT_RE = re.compile(
    r"^\s*(?P<node>\d+(?:\.\d+)?)\s*nm\s*@\s*(?P<voltage>\d+(?:\.\d+)?)\s*V"
    r"\s*@\s*(?P<frequency>\d+(?:\.\d+)?)\s*MHz\s*$",
    re.IGNORECASE,
)


@dataclasses.dataclass(frozen=True)
class OperatingPoint:
    """One deployment scenario: process node, supply voltage, clock."""

    node_nm: float
    voltage: float
    frequency_mhz: float

    def __post_init__(self) -> None:
        for field in ("node_nm", "voltage", "frequency_mhz"):
            value = getattr(self, field)
            try:
                value = float(value)
            except (TypeError, ValueError):
                raise CalibrationError(
                    f"operating point {field} must be a number, got {value!r}"
                ) from None
            if not value > 0:
                raise CalibrationError(
                    f"operating point {field} must be positive, got {value!r}"
                )
            object.__setattr__(self, field, value)

    @property
    def key(self) -> str:
        """Canonical string form, e.g. ``"65nm@1.1V@800MHz"``.

        ``%g`` round-trips every realistic value and keeps the key free
        of trailing zeros, so equal points always spell equally — the
        property knob values, cache keys and metrics labels rely on.
        """
        return f"{self.node_nm:g}nm@{self.voltage:g}V@{self.frequency_mhz:g}MHz"

    @property
    def frequency_hz(self) -> float:
        return self.frequency_mhz * 1e6

    def seconds(self, cycles: float) -> float:
        """Wall-clock time of a cycle count at this clock."""
        return cycles / self.frequency_hz

    @classmethod
    def parse(cls, text: "str | OperatingPoint") -> "OperatingPoint":
        """Parse the canonical ``<node>nm@<voltage>V@<frequency>MHz`` form."""
        if isinstance(text, OperatingPoint):
            return text
        if not isinstance(text, str):
            raise CalibrationError(
                f"operating point must be a string like '65nm@1.1V@800MHz', "
                f"got {text!r}"
            )
        match = _POINT_RE.match(text)
        if match is None:
            raise CalibrationError(
                f"cannot parse operating point {text!r} "
                "(expected '<node>nm@<voltage>V@<frequency>MHz', "
                "e.g. '65nm@1.1V@800MHz')"
            )
        return cls(
            node_nm=float(match.group("node")),
            voltage=float(match.group("voltage")),
            frequency_mhz=float(match.group("frequency")),
        )

    def to_payload(self) -> dict:
        return {
            "node_nm": self.node_nm,
            "voltage": self.voltage,
            "frequency_mhz": self.frequency_mhz,
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "OperatingPoint":
        """Build from a JSON payload, tolerating unknown extra fields."""
        if not isinstance(payload, dict):
            raise CalibrationError(
                f"operating point payload must be an object, got {payload!r}"
            )
        try:
            return cls(
                node_nm=payload["node_nm"],
                voltage=payload["voltage"],
                frequency_mhz=payload["frequency_mhz"],
            )
        except KeyError as exc:
            raise CalibrationError(
                f"operating point payload is missing field {exc.args[0]!r}"
            ) from exc


@dataclasses.dataclass(frozen=True)
class TechNode:
    """One committed row of the technology table."""

    node_nm: float
    capacitance_scale: float
    leakage_scale: float
    nominal_voltage: float
    max_frequency_mhz: float

    def __post_init__(self) -> None:
        for field in dataclasses.fields(self):
            value = float(getattr(self, field.name))
            if not value > 0:
                raise CalibrationError(
                    f"technology node field {field.name} must be positive, "
                    f"got {value!r}"
                )
            object.__setattr__(self, field.name, value)


class TechCalibration:
    """Piecewise-linear interpolation over a committed technology table."""

    def __init__(
        self,
        nodes: Sequence[TechNode],
        reference: OperatingPoint,
        description: str = "",
    ) -> None:
        if len(nodes) < 2:
            raise CalibrationError(
                f"a calibration table needs at least two nodes, got {len(nodes)}"
            )
        ordered = sorted(nodes, key=lambda n: n.node_nm)
        if len({n.node_nm for n in ordered}) != len(ordered):
            raise CalibrationError("calibration table has duplicate node rows")
        self.nodes: tuple[TechNode, ...] = tuple(ordered)
        self.description = description
        self.reference = reference
        # The reference must itself be a valid point of the table.
        self.validate(reference)
        self._reference_numerator = self._dynamic_numerator(reference)

    # -- interpolation ------------------------------------------------------

    @property
    def node_range_nm(self) -> tuple[float, float]:
        return (self.nodes[0].node_nm, self.nodes[-1].node_nm)

    def _interpolate(self, node_nm: float, column: str) -> float:
        lo, hi = self.node_range_nm
        if not lo <= node_nm <= hi:
            raise CalibrationError(
                f"process node {node_nm:g} nm is outside the calibrated "
                f"range [{lo:g}, {hi:g}] nm; refusing to extrapolate"
            )
        for left, right in zip(self.nodes, self.nodes[1:]):
            if left.node_nm <= node_nm <= right.node_nm:
                span = right.node_nm - left.node_nm
                fraction = (node_nm - left.node_nm) / span
                a = getattr(left, column)
                b = getattr(right, column)
                return a + fraction * (b - a)
        raise AssertionError("unreachable: node inside range matched no segment")

    def capacitance_scale(self, node_nm: float) -> float:
        return self._interpolate(node_nm, "capacitance_scale")

    def leakage_scale(self, node_nm: float) -> float:
        return self._interpolate(node_nm, "leakage_scale")

    def nominal_voltage(self, node_nm: float) -> float:
        return self._interpolate(node_nm, "nominal_voltage")

    def max_frequency_mhz(
        self, node_nm: float, voltage: Optional[float] = None
    ) -> float:
        """Peak clock at a node, derated linearly with supply (DVFS)."""
        nominal = self._interpolate(node_nm, "max_frequency_mhz")
        if voltage is None:
            return nominal
        return nominal * (voltage / self.nominal_voltage(node_nm))

    # -- operating-point validation and scaling -----------------------------

    def validate(self, point: "OperatingPoint | str") -> OperatingPoint:
        """Check a point against the table; returns the parsed point."""
        op = OperatingPoint.parse(point)
        nominal = self.nominal_voltage(op.node_nm)  # raises on node range
        lo, hi = MIN_VOLTAGE_RATIO * nominal, MAX_VOLTAGE_RATIO * nominal
        if not lo <= op.voltage <= hi:
            raise CalibrationError(
                f"supply {op.voltage:g} V is outside [{lo:g}, {hi:g}] V "
                f"({MIN_VOLTAGE_RATIO:g}-{MAX_VOLTAGE_RATIO:g}x the "
                f"{nominal:g} V nominal at {op.node_nm:g} nm)"
            )
        fmax = self.max_frequency_mhz(op.node_nm, op.voltage)
        if op.frequency_mhz > fmax * (1 + 1e-9):
            raise CalibrationError(
                f"clock {op.frequency_mhz:g} MHz exceeds the {fmax:g} MHz "
                f"DVFS ceiling at {op.node_nm:g} nm / {op.voltage:g} V"
            )
        return op

    def _dynamic_numerator(self, op: OperatingPoint) -> float:
        return self.capacitance_scale(op.node_nm) * op.voltage**2

    def energy_scale(self, point: "OperatingPoint | str") -> float:
        """Per-operation dynamic-energy factor relative to the reference.

        ``energy_scale(reference) == 1.0`` by construction; frequency does
        not appear (dynamic energy per switched event is rate-independent
        to first order — the clock only converts cycles into seconds).
        """
        op = self.validate(point)
        return self._dynamic_numerator(op) / self._reference_numerator

    def relative_scale(
        self, point: "OperatingPoint | str", base: "OperatingPoint | str"
    ) -> float:
        """Energy factor of ``point`` relative to another valid point."""
        return self.energy_scale(point) / self.energy_scale(base)

    # -- scenario helpers ---------------------------------------------------

    def scenario_matrix(
        self,
        nodes_nm: Sequence[float],
        voltages: Sequence[float],
        frequency_mhz: Optional[float] = None,
    ) -> list[OperatingPoint]:
        """The node x voltage grid as validated operating points.

        With ``frequency_mhz=None`` each point runs at its own DVFS
        ceiling (peak clock for that node/voltage pair) — the natural
        "as fast as this scenario allows" matrix.
        """
        points = []
        for node in nodes_nm:
            for voltage in voltages:
                frequency = (
                    frequency_mhz
                    if frequency_mhz is not None
                    else self.max_frequency_mhz(node, voltage)
                )
                points.append(
                    self.validate(
                        OperatingPoint(
                            node_nm=node, voltage=voltage, frequency_mhz=frequency
                        )
                    )
                )
        return points

    # -- (de)serialization --------------------------------------------------

    def to_payload(self) -> dict:
        return {
            "format": CALIB_FORMAT,
            "description": self.description,
            "reference": self.reference.to_payload(),
            "nodes": [dataclasses.asdict(node) for node in self.nodes],
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "TechCalibration":
        if not isinstance(payload, dict) or payload.get("format") != CALIB_FORMAT:
            raise CalibrationError(
                f"unrecognized calibration format "
                f"{payload.get('format') if isinstance(payload, dict) else payload!r}"
            )
        try:
            known = {field.name for field in dataclasses.fields(TechNode)}
            nodes = [
                TechNode(**{k: v for k, v in row.items() if k in known})
                for row in payload["nodes"]
            ]
            reference = OperatingPoint.from_payload(payload["reference"])
        except (KeyError, TypeError) as exc:
            raise CalibrationError(f"malformed calibration table: {exc}") from exc
        return cls(
            nodes=nodes,
            reference=reference,
            description=str(payload.get("description", "")),
        )

    @classmethod
    def load(cls, path: str) -> "TechCalibration":
        with open(path, "r", encoding="utf-8") as handle:
            try:
                payload = json.load(handle)
            except json.JSONDecodeError as exc:
                raise CalibrationError(
                    f"calibration table {path!r} is not valid JSON: {exc}"
                ) from exc
        return cls.from_payload(payload)


#: Path of the committed default table (shipped inside the package).
DEFAULT_CALIB_PATH = pathlib.Path(__file__).with_name("tech_calib.json")

#: Three bundled DVFS scenarios (one per mainstream node, nominal supply,
#: peak clock) — the default axis of the ``*_dvfs`` search spaces.
DEFAULT_DVFS_POINTS: tuple[str, ...] = (
    "130nm@1.5V@400MHz",
    "90nm@1.2V@600MHz",
    "65nm@1.1V@800MHz",
)

_DEFAULT_LOCK = threading.Lock()
_DEFAULT: Optional[TechCalibration] = None


def default_calibration() -> TechCalibration:
    """The committed calibration table, loaded once per process."""
    global _DEFAULT
    if _DEFAULT is None:
        with _DEFAULT_LOCK:
            if _DEFAULT is None:
                _DEFAULT = TechCalibration.load(str(DEFAULT_CALIB_PATH))
    return _DEFAULT


def reference_operating_point() -> OperatingPoint:
    """The fit point models without an explicit one are assumed to be at."""
    return default_calibration().reference
