"""Technology calibration layer: operating points, scaling, overlays.

One characterized :class:`~repro.core.model.EnergyMacroModel` is fitted
at a single (process node, voltage, frequency) point.  This package
turns that point into a family: ``model.at("65nm@1.1V@800MHz")`` derives
a rescaled model for any operating point the committed calibration table
covers, and the DSE/serving layers thread the point through cache keys,
request schemas and reports.  See ``docs/CALIBRATION.md``.
"""

from .calibration import (
    CALIB_FORMAT,
    DEFAULT_CALIB_PATH,
    DEFAULT_DVFS_POINTS,
    CalibrationError,
    OperatingPoint,
    TechCalibration,
    TechNode,
    default_calibration,
    reference_operating_point,
)
from .carbon import CarbonModel, overlay as carbon_overlay, table as carbon_table

__all__ = [
    "CALIB_FORMAT",
    "DEFAULT_CALIB_PATH",
    "DEFAULT_DVFS_POINTS",
    "CalibrationError",
    "OperatingPoint",
    "TechCalibration",
    "TechNode",
    "default_calibration",
    "reference_operating_point",
    "CarbonModel",
    "carbon_overlay",
    "carbon_table",
]
