"""Command-line interface: ``python -m repro <command> ...``.

Exposes the library's main flows without writing Python:

========================  ===================================================
``simulate``              assemble + run a program, print stats
``assemble``              assemble to a binary XPF object file
``disasm``                assemble a program and print its disassembly
``characterize``          run the bundled suite, fit the model, write JSON
``estimate``              macro-model energy of one or more programs (fast path)
``reference``             reference RTL-level energy of a program (slow path)
``explore``               design-space exploration over a bundled search space
``discover``              mine + legalize + score custom instructions from a profile
``profile``               streaming energy/execution profile of a program
``serve``                 long-running batch estimation service (HTTP)
``experiments``           regenerate the paper's tables/figures
========================  ===================================================

Programs are assembly files in the dialect of :mod:`repro.asm`; custom
instructions are attached with ``--extensions mnemonic,mnemonic,...``
drawn from the bundled library (see ``--list-extensions``).
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from .asm import ImageError, assemble, disassemble_program
from .core import EnergyMacroModel, EnergyProfiler
from .obs import run_session
from .programs.extensions import ALL_SPEC_FACTORIES
from .rtl import reference_energy
from .xtcore import (
    DEFAULT_MAX_INSTRUCTIONS,
    ENGINES,
    ProcessorConfig,
    build_processor,
)

#: Exit code for unusable input files (missing program, malformed image).
EXIT_BAD_INPUT = 2
#: Exit code for a run that completed but recorded sample failures.
EXIT_DEGRADED = 3
#: Exit code for a run aborted by the fault-tolerance policy.
EXIT_ABORTED = 4


def _die(message: str, code: int = EXIT_BAD_INPUT) -> "SystemExit":
    print(f"repro: error: {message}", file=sys.stderr)
    raise SystemExit(code)


def _build_config(name: str, extensions: str) -> ProcessorConfig:
    if not extensions:
        return build_processor(name)
    mnemonics = [token.strip() for token in extensions.split(",") if token.strip()]
    specs = []
    for mnemonic in mnemonics:
        factory = ALL_SPEC_FACTORIES.get(mnemonic)
        if factory is None:
            raise SystemExit(
                f"unknown extension {mnemonic!r}; available: "
                + ", ".join(sorted(ALL_SPEC_FACTORIES))
            )
        specs.append(factory())
    return build_processor(name, specs)


def _load_program(path: str, config: ProcessorConfig):
    name = path.rsplit("/", 1)[-1].rsplit(".", 1)[0]
    if path.endswith(".xpf"):
        from .asm import read_image

        try:
            with open(path, "rb") as handle:
                data = handle.read()
        except OSError as exc:
            raise _die(f"cannot read program file {path!r}: {exc.strerror or exc}")
        try:
            return read_image(data, config.isa, name=name)
        except ImageError as exc:
            raise _die(f"malformed XPF image {path!r}: {exc}")
    try:
        with open(path, "r", encoding="utf-8") as handle:
            source = handle.read()
    except OSError as exc:
        raise _die(f"cannot read program file {path!r}: {exc.strerror or exc}")
    return assemble(source, name, isa=config.isa)


def _cmd_list_extensions(_args: argparse.Namespace) -> int:
    from .tie import compile_spec

    for mnemonic in sorted(ALL_SPEC_FACTORIES):
        impl = compile_spec(ALL_SPEC_FACTORIES[mnemonic]())
        print(f"{mnemonic:<12} {impl.spec.fmt:<4} {impl.spec.description}")
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    config = _build_config("cli", args.extensions)
    program = _load_program(args.program, config)
    result = run_session(
        config,
        program,
        collect_trace=args.trace,
        max_instructions=args.max_instructions,
        engine=args.engine,
    )
    print(f"engine: {result.engine}")
    print(result.stats.summary())
    if args.trace:
        for record in result.trace[: args.trace_limit]:
            print(f"  {record!r}")
        if len(result.trace) > args.trace_limit:
            print(f"  ... ({len(result.trace) - args.trace_limit} more records)")
    if args.dump_word:
        for symbol in args.dump_word:
            print(f"{symbol} = {result.word(symbol)} ({result.word(symbol):#010x})")
    return 0


def _cmd_assemble(args: argparse.Namespace) -> int:
    from .asm import write_image

    config = _build_config("cli", args.extensions)
    program = _load_program(args.program, config)
    image = write_image(program, config.isa)
    with open(args.output, "wb") as handle:
        handle.write(image)
    print(
        f"wrote {args.output}: {len(program)} instructions, "
        f"{sum(len(b) for _, b in program.data)} data bytes, {len(image)} bytes total"
    )
    return 0


def _cmd_disasm(args: argparse.Namespace) -> int:
    config = _build_config("cli", args.extensions)
    program = _load_program(args.program, config)
    print(disassemble_program(program, config.isa), end="")
    return 0


def _cmd_characterize(args: argparse.Namespace) -> int:
    from .core import (
        CharacterizationRunError,
        CharacterizationRunner,
        Characterizer,
        CheckpointError,
        RetryPolicy,
        RunnerTask,
        audit_coverage,
    )
    from .programs import characterization_suite

    if args.resume and not args.checkpoint:
        raise _die("--resume requires --checkpoint PATH")
    if args.checkpoint_every < 1:
        raise _die("--checkpoint-every must be >= 1")
    if args.max_attempts < 1:
        raise _die("--max-attempts must be >= 1")

    from .tech import CalibrationError

    try:
        characterizer = Characterizer(
            method=args.method, operating_point=args.operating_point
        )
    except CalibrationError as exc:
        raise _die(f"bad --operating-point: {exc}")
    failures = []
    if args.from_samples:
        try:
            count = characterizer.load_samples(args.from_samples)
        except (OSError, ValueError) as exc:
            raise _die(f"cannot load samples: {exc}")
        print(f"loaded {count} cached samples from {args.from_samples}")
    else:
        suite = characterization_suite(include_variants=not args.core_only)
        runner = CharacterizationRunner(
            characterizer,
            retry=RetryPolicy(max_attempts=args.max_attempts),
            checkpoint_path=args.checkpoint,
            checkpoint_every=args.checkpoint_every,
            max_failures=args.max_failures,
            progress=(lambda msg: print(f"  {msg}")) if args.verbose else None,
        )
        try:
            if args.resume:
                runner.resume()
            report = runner.run(
                [RunnerTask.from_case(case) for case in suite], fit=False
            )
        except CheckpointError as exc:
            raise _die(str(exc))
        except CharacterizationRunError as exc:
            print(f"repro: characterization aborted: {exc}", file=sys.stderr)
            return EXIT_ABORTED
        failures = report.failures
        if failures:
            print(report.summary(), file=sys.stderr)
    if args.save_samples:
        characterizer.save_samples(args.save_samples)
        print(f"saved {len(characterizer)} samples to {args.save_samples}")
    if not characterizer.samples:
        print("repro: characterization produced no samples", file=sys.stderr)
        return EXIT_ABORTED
    coverage = audit_coverage(characterizer.samples, characterizer.template)
    if not coverage.is_adequate:
        print(coverage.summary(), file=sys.stderr)
        if failures:
            print(
                "repro: failures degraded suite coverage below the template; "
                "not fitting a model from the survivors",
                file=sys.stderr,
            )
            return EXIT_ABORTED
        print("warning: suite does not fully cover the template", file=sys.stderr)
    result = characterizer.fit()
    print(result.fitting_error_table())
    print()
    print(result.model.coefficient_table())
    result.model.save(args.output)
    print(f"\nmodel written to {args.output}")
    if failures:
        print(
            f"warning: model fitted from survivors; {len(failures)} sample "
            "failure(s) — see summary above",
            file=sys.stderr,
        )
        return EXIT_DEGRADED
    return 0


def _cmd_estimate(args: argparse.Namespace) -> int:
    from .tech import CalibrationError

    try:
        model = EnergyMacroModel.load(args.model)
    except (OSError, ValueError) as exc:
        raise _die(f"cannot load model {args.model!r}: {exc}")
    if args.operating_point:
        try:
            model = model.at(args.operating_point)
        except CalibrationError as exc:
            raise _die(f"bad --operating-point: {exc}")
    # model load + config build (TIE compilation) happen once; each extra
    # program then costs only one untraced instruction-set simulation —
    # the mini-batch fast path that amortizes the one-time setup.
    config = _build_config("cli", args.extensions)
    estimates = []
    for path in args.program:
        program = _load_program(path, config)
        estimates.append(
            model.estimate(config, program, max_instructions=args.max_instructions)
        )
    if args.format == "json":
        import json

        from .dse.cache import model_digest

        entries = []
        for estimate in estimates:
            entry = {
                "program": estimate.program_name,
                "processor": estimate.processor_name,
                "energy": estimate.energy,
                "cycles": estimate.cycles,
                "edp": estimate.energy * estimate.cycles,
            }
            if estimate.operating_point is not None:
                entry["seconds"] = estimate.seconds
                entry["edp_seconds"] = estimate.edp_seconds
            if args.variables:
                entry["variables"] = dict(estimate.variables)
            entries.append(entry)
        payload = {
            "format": "repro-estimates/1",
            "model_digest": model_digest(model),
            "operating_point": (
                model.operating_point.key
                if model.operating_point is not None
                else None
            ),
            "estimates": entries,
        }
        print(json.dumps(payload, indent=2))
        return 0
    if len(estimates) == 1:
        (estimate,) = estimates
        print(estimate.summary())
    else:
        with_time = model.operating_point is not None
        header = f"{'program':<24}{'energy':>14}{'cycles':>10}{'EDP':>15}"
        if with_time:
            header += f"{'time_us':>12}"
        print(header)
        print("-" * len(header))
        for estimate in estimates:
            row = (
                f"{estimate.program_name:<24}{estimate.energy:>14.1f}"
                f"{estimate.cycles:>10}{estimate.energy * estimate.cycles:>15.4g}"
            )
            if with_time:
                row += f"{estimate.seconds * 1e6:>12.2f}"
            print(row)
        if with_time:
            print(f"(at {model.operating_point.key})")
    if args.variables:
        for estimate in estimates:
            if len(estimates) > 1:
                print(f"\n{estimate.program_name}:")
            for key, value in estimate.variables.items():
                if value:
                    print(f"  {key:<16}{value:14.1f}  x {model.coefficient(key):10.2f}")
    return 0


def _load_discovered(path: str) -> str:
    """Register the ``discovered:<workload>`` space from a manifest file;
    returns the space name."""
    from .discover import DiscoveryError, DiscoveryManifest, register_discovered

    try:
        manifest = DiscoveryManifest.load(path)
    except OSError as exc:
        raise _die(f"cannot read manifest {path!r}: {exc.strerror or exc}")
    except DiscoveryError as exc:
        raise _die(f"bad manifest {path!r}: {exc}")
    return register_discovered(manifest)


def _cmd_explore(args: argparse.Namespace) -> int:
    import json as json_module

    from .core.runner import TooManyFailures
    from .dse import (
        ResultCache,
        SpaceError,
        available_spaces,
        cross_check,
        explore,
        get_space,
        make_strategy,
        with_operating_points,
    )
    from .dse.space import BUILTIN_SPACES
    from .tech import CalibrationError, carbon_overlay, carbon_table

    if args.discovered:
        _load_discovered(args.discovered)

    if args.list_spaces:
        # runtime-registered spaces (e.g. from --discovered) list alongside
        # the bundled ones, annotated by origin
        builtin = frozenset(BUILTIN_SPACES)
        for name in available_spaces():
            origin = "builtin" if name in builtin else "registered"
            print(f"[{origin}] {get_space(name).describe()}")
        return 0
    if args.model is None:
        raise _die("a model JSON file is required (or use --list-spaces)")
    try:
        model = EnergyMacroModel.load(args.model)
    except (OSError, ValueError) as exc:
        raise _die(f"cannot load model {args.model!r}: {exc}")
    try:
        space = get_space(args.space)
    except SpaceError as exc:
        raise _die(str(exc))
    if args.op_axis:
        # fold the operating point into the space itself: one exploration
        # ranks DVFS settings against micro-architecture choices
        axis = [token.strip() for token in args.op_axis.split(",") if token.strip()]
        if not axis:
            raise _die("--op-axis needs a comma-separated list of operating points")
        try:
            space = with_operating_points(space, axis)
        except SpaceError as exc:
            raise _die(str(exc))
    points = args.operating_point if args.operating_point else [None]
    if args.format == "csv" and len(points) > 1:
        raise _die("csv format supports a single operating point")
    # derive the per-point models up front so a typo dies before any
    # simulation is spent
    point_models = []
    for point in points:
        try:
            point_models.append(model.at(point))
        except CalibrationError as exc:
            raise _die(f"bad --operating-point {point!r}: {exc}")
    if args.objective in ("time", "edp_seconds") and not args.op_axis:
        if any(m.operating_point is None for m in point_models):
            raise _die(
                f"objective {args.objective!r} needs a clock: pass "
                "--operating-point/--op-axis or use a model characterized "
                "at an operating point"
            )
    if args.carbon is not None and args.carbon <= 0:
        raise _die("--carbon takes a positive executions-per-second rate")
    cache = ResultCache(args.cache) if args.cache else None
    progress = (lambda msg: print(f"  {msg}", file=sys.stderr)) if args.verbose else None
    reports = []
    for point, point_model in zip(points, point_models):
        try:
            # stateful strategies (greedy, random) must start fresh per point
            strategy = make_strategy(
                args.strategy,
                budget=args.budget,
                seed=args.seed,
                objective=args.objective,
                restarts=args.restarts,
            )
        except ValueError as exc:
            raise _die(str(exc))
        try:
            report = explore(
                point_model,
                space,
                strategy,
                jobs=args.jobs,
                cache=cache,
                objective=args.objective,
                max_instructions=args.max_instructions,
                max_failures=args.max_failures,
                progress=progress,
            )
        except TooManyFailures as exc:
            print(f"repro: exploration aborted: {exc}", file=sys.stderr)
            return EXIT_ABORTED
        reports.append(report)

    def carbon_rows(report):
        return carbon_overlay(
            report.ranked(args.top_k), executions_per_second=args.carbon
        )

    if args.format == "json":
        payloads = []
        for report in reports:
            payload = report.to_payload()
            if args.carbon is not None:
                payload["carbon"] = carbon_rows(report)
            payloads.append(payload)
        if len(payloads) == 1:
            rendered = json_module.dumps(payloads[0], indent=2)
        else:
            rendered = json_module.dumps(
                {"format": "repro-dse-scenario-matrix/1", "points": payloads},
                indent=2,
            )
    elif args.format == "csv":
        rendered = reports[0].to_csv()
    else:
        sections = []
        for point, report in zip(points, reports):
            lines = []
            if len(reports) > 1:
                lines.append(f"=== operating point {point} ===")
            lines.append(report.table(top_k=args.top_k))
            if args.carbon is not None:
                lines.append(carbon_table(carbon_rows(report)))
            sections.append("\n".join(lines))
        rendered = "\n\n".join(sections)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(rendered if rendered.endswith("\n") else rendered + "\n")
        print(f"report written to {args.output}")
    else:
        print(rendered, end="" if rendered.endswith("\n") else "\n")
    if args.verify_top:
        for report in reports:
            if len(report.scores) < 2:
                print(
                    "repro: not enough scored points to cross-check", file=sys.stderr
                )
                continue
            result = cross_check(
                space,
                report.scores,
                top_k=args.verify_top,
                objective=args.objective,
                max_instructions=args.max_instructions,
                operating_point=report.operating_point,
            )
            print(result.table())
            if result.rho < 0.9:
                print(
                    f"warning: macro-model top-{args.verify_top} ranking diverges "
                    f"from the reference (rho {result.rho:.3f} < 0.9)",
                    file=sys.stderr,
                )
    if any(not report.scores for report in reports):
        print("repro: exploration scored no candidates", file=sys.stderr)
        return EXIT_ABORTED
    total_failures = sum(len(report.failures) for report in reports)
    if total_failures:
        print(
            f"warning: {total_failures} candidate failure(s) during exploration",
            file=sys.stderr,
        )
        return EXIT_DEGRADED
    return 0


def _cmd_discover(args: argparse.Namespace) -> int:
    from .discover import (
        DiscoveryError,
        DiscoveryOptions,
        LegalizeOptions,
        discover_workload,
    )
    from .discover.pipeline import SOFTWARE_CASES

    try:
        model = EnergyMacroModel.load(args.model)
    except (OSError, ValueError) as exc:
        raise _die(f"cannot load model {args.model!r}: {exc}")
    if args.workload not in SOFTWARE_CASES:
        raise _die(
            f"unknown workload {args.workload!r}; available: "
            + ", ".join(sorted(SOFTWARE_CASES))
        )
    if args.top_k < 1:
        raise _die("--top-k must be >= 1")
    if args.max_ports not in (1, 2):
        raise _die("--max-ports must be 1 or 2 (the operand-bus width)")
    if not 0.0 <= args.min_coverage <= 1.0:
        raise _die("--min-coverage must be within [0, 1]")
    options = DiscoveryOptions(
        top_k=args.top_k,
        max_nodes=args.max_nodes,
        max_ports=args.max_ports,
        min_coverage=args.min_coverage,
        legalize=LegalizeOptions(max_latency=args.max_latency),
        max_instructions=args.max_instructions,
        jobs=args.jobs,
    )
    progress = (lambda msg: print(f"  {msg}", file=sys.stderr)) if args.verbose else None
    try:
        report = discover_workload(args.workload, model, options, progress=progress)
    except DiscoveryError as exc:
        print(f"repro: discovery aborted: {exc}", file=sys.stderr)
        return EXIT_ABORTED

    rendered = report.to_json() if args.format == "json" else report.table()
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(rendered if rendered.endswith("\n") else rendered + "\n")
        print(f"report written to {args.output}")
    else:
        print(rendered, end="" if rendered.endswith("\n") else "\n")
    if args.manifest:
        manifest = report.manifest()
        manifest.save(args.manifest)
        print(
            f"manifest with {len(manifest.entries)} verified candidate(s) "
            f"written to {args.manifest} (load with `explore --discovered`)"
        )
    if not report.evaluated:
        print("repro: no candidate survived verification", file=sys.stderr)
        return EXIT_ABORTED
    if report.failures:
        print(
            f"warning: {len(report.failures)} candidate(s) failed after "
            "legalization",
            file=sys.stderr,
        )
        return EXIT_DEGRADED
    return 0


def _cmd_reference(args: argparse.Namespace) -> int:
    from .tech import CalibrationError

    config = _build_config("cli", args.extensions)
    program = _load_program(args.program, config)
    try:
        report, _ = reference_energy(
            config,
            program,
            max_instructions=args.max_instructions,
            operating_point=args.operating_point,
        )
    except CalibrationError as exc:
        raise _die(f"bad --operating-point: {exc}")
    print(report.summary())
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    import json

    from .obs import CacheEventObserver, EnergyTimelineObserver, HotSpotObserver
    from .tech import CalibrationError

    model = EnergyMacroModel.load(args.model)
    if args.operating_point:
        try:
            model = model.at(args.operating_point)
        except CalibrationError as exc:
            raise _die(f"bad --operating-point: {exc}")
    config = _build_config("cli", args.extensions)
    program = _load_program(args.program, config)

    # All requested profilers ride the same event stream: one simulation,
    # no trace, any number of observers.
    profiler = EnergyProfiler(model)
    region_observer = profiler.observer(program)
    observers = [region_observer]
    timeline_observer = hot_observer = cache_observer = None
    if args.timeline is not None:
        if args.timeline < 1:
            raise _die("--timeline takes a positive instructions-per-interval count")
        timeline_observer = EnergyTimelineObserver(
            model, interval_instructions=args.timeline
        )
        observers.append(timeline_observer)
    if args.hot:
        hot_observer = HotSpotObserver()
        observers.append(hot_observer)
    if args.cache_events:
        cache_observer = CacheEventObserver()
        observers.append(cache_observer)
    run_session(
        config,
        program,
        observers=observers,
        max_instructions=args.max_instructions,
    )
    region_report = profiler.report_from(region_observer, config, program)

    if args.format == "json":
        payload = {"regions": region_report.to_payload()}
        if timeline_observer is not None:
            payload["timeline"] = timeline_observer.report.to_payload()
        if hot_observer is not None:
            payload["hot_spots"] = hot_observer.report.to_payload()
        if cache_observer is not None:
            payload["cache_events"] = cache_observer.report.to_payload()
        print(json.dumps(payload, indent=2))
        return 0

    sections = [region_report.table(top=args.top)]
    if timeline_observer is not None:
        sections.append(timeline_observer.report.table())
    if hot_observer is not None:
        sections.append(hot_observer.report.table(top=args.top))
    if cache_observer is not None:
        sections.append(cache_observer.report.table())
    print("\n\n".join(sections))
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from .core.runner import RetryPolicy
    from .serve import EstimationService, run_server

    try:
        model = EnergyMacroModel.load(args.model)
    except (OSError, ValueError) as exc:
        raise _die(f"cannot load model {args.model!r}: {exc}")
    if args.workers < 0:
        raise _die("--workers must be >= 0")
    if args.queue_limit < 1:
        raise _die("--queue-limit must be >= 1")
    if args.batch_max < 1:
        raise _die("--batch-max must be >= 1")
    if args.timeout <= 0:
        raise _die("--timeout must be positive")
    if args.max_attempts < 1:
        raise _die("--max-attempts must be >= 1")
    if args.quarantine_after < 1:
        raise _die("--quarantine-after must be >= 1")
    if args.breaker_failures < 1:
        raise _die("--breaker-failures must be >= 1")
    if args.breaker_cooldown <= 0:
        raise _die("--breaker-cooldown must be positive")
    if args.drain_grace < 0:
        raise _die("--drain-grace must be >= 0")
    chaos = None
    if args.chaos:
        from .testing.faults import ServiceChaosPlan

        try:
            chaos = ServiceChaosPlan.parse(args.chaos)
        except ValueError as exc:
            raise _die(f"bad --chaos spec: {exc}")
    prewarm: list[str] = []
    if args.prewarm:
        if args.prewarm.strip() == "suite":
            prewarm = ["suite"]
        else:
            prewarm = [t.strip() for t in args.prewarm.split(",") if t.strip()]
    if args.fleet:
        if args.fleet < 1:
            raise _die("--fleet must be >= 1")
        return _run_fleet(args)
    try:
        service = EstimationService(
            model,
            workers=args.workers,
            queue_limit=args.queue_limit,
            batch_max=args.batch_max,
            batch_window=args.batch_window_ms / 1e3,
            dedupe=not args.no_dedupe,
            cache_dir=args.cache,
            shared_cache_dir=args.shared_cache,
            retry=RetryPolicy(max_attempts=args.max_attempts),
            request_timeout=args.timeout,
            prewarm=prewarm,
            quarantine_after=args.quarantine_after,
            breaker_failures=args.breaker_failures,
            breaker_cooldown=args.breaker_cooldown,
            drain_grace=args.drain_grace,
            chaos=chaos,
        )
    except ValueError as exc:
        raise _die(str(exc))
    try:
        asyncio.run(
            run_server(
                service,
                host=args.host,
                port=args.port,
                port_file=args.port_file,
            )
        )
    except KeyboardInterrupt:
        pass
    return 0


def _run_fleet(args: argparse.Namespace) -> int:
    """`repro serve --fleet N`: N node subprocesses behind one router."""
    import asyncio
    import tempfile

    from .fleet import FleetManager, FleetRouter, FleetSpawnError, run_router

    workdir = args.fleet_workdir or tempfile.mkdtemp(prefix="repro-fleet-")
    if args.cache:
        print(
            "repro serve: --cache is per-node in fleet mode; using "
            f"{workdir}/node<i>-cache (shared tier: --shared-cache)",
            file=sys.stderr,
        )
    node_args = [
        "--batch-window-ms", str(args.batch_window_ms),
        "--timeout", str(args.timeout),
        "--max-attempts", str(args.max_attempts),
        "--quarantine-after", str(args.quarantine_after),
        "--breaker-failures", str(args.breaker_failures),
        "--breaker-cooldown", str(args.breaker_cooldown),
        "--drain-grace", str(args.drain_grace),
    ]
    if args.no_dedupe:
        node_args.append("--no-dedupe")
    if args.prewarm:
        node_args += ["--prewarm", args.prewarm]
    if args.chaos:
        node_args += ["--chaos", args.chaos]
    manager = FleetManager(
        model_path=args.model,
        workdir=workdir,
        workers=args.workers,
        queue_limit=args.queue_limit,
        batch_max=args.batch_max,
        node_args=node_args,
        shared_cache=args.shared_cache,
    )
    print(f"repro serve: spawning {args.fleet} node(s) under {workdir}")
    try:
        manager.start(args.fleet)
        addresses = manager.wait_ready()
    except FleetSpawnError as exc:
        manager.stop()
        raise _die(str(exc))
    for node in manager.nodes:
        print(
            f"repro serve: node {node.index} pid {node.process.pid} "
            f"at http://{node.address}"
        )
    router = FleetRouter(
        addresses,
        vnodes=args.vnodes,
        health_interval=args.health_interval,
        node_failures=args.node_failures,
        node_cooldown=args.node_cooldown,
    )
    try:
        asyncio.run(
            run_router(
                router,
                host=args.host,
                port=args.port,
                port_file=args.port_file,
            )
        )
    except KeyboardInterrupt:
        pass
    finally:
        print("repro serve: stopping fleet nodes")
        manager.stop()
    return 0


def _cmd_route(args: argparse.Namespace) -> int:
    import asyncio

    from .fleet import FleetRouter, run_router
    from .fleet.wire import split_address

    nodes = [node.strip() for node in args.nodes.split(",") if node.strip()]
    if not nodes:
        raise _die("--nodes needs at least one host:port address")
    for node in nodes:
        try:
            split_address(node)
        except ValueError as exc:
            raise _die(str(exc))
    try:
        router = FleetRouter(
            nodes,
            vnodes=args.vnodes,
            forward_timeout=args.forward_timeout,
            health_interval=args.health_interval,
            node_failures=args.node_failures,
            node_cooldown=args.node_cooldown,
            soft_fraction=args.soft_fraction,
        )
    except ValueError as exc:
        raise _die(str(exc))
    try:
        asyncio.run(
            run_router(
                router,
                host=args.host,
                port=args.port,
                port_file=args.port_file,
            )
        )
    except KeyboardInterrupt:
        pass
    return 0


def _cmd_experiments(args: argparse.Namespace) -> int:
    from .analysis import (
        default_context,
        run_fig3,
        run_fig4,
        run_speedup,
        run_table1,
        run_table2,
    )

    runners = {
        "table1": run_table1,
        "fig3": run_fig3,
        "table2": run_table2,
        "fig4": run_fig4,
        "speedup": run_speedup,
    }
    selected = list(runners) if args.which == "all" else [args.which]
    print("characterizing (one-time cost)...", file=sys.stderr)
    ctx = default_context()
    if args.output:
        from .analysis import markdown_report

        text = markdown_report(ctx, include_ablations=args.ablations)
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(text)
        print(f"report written to {args.output}")
        return 0
    for name in selected:
        print(f"\n=== {name} ===")
        print(runners[name](ctx).report())
    return 0


def _add_router_args(p: argparse.ArgumentParser) -> None:
    """Router knobs shared by `serve --fleet` and `route`."""
    p.add_argument(
        "--vnodes",
        type=int,
        default=128,
        metavar="N",
        help="virtual nodes per fleet node on the consistent-hash ring "
        "(default 128; load spread ~1/sqrt(vnodes))",
    )
    p.add_argument(
        "--health-interval",
        type=float,
        default=2.0,
        metavar="S",
        help="seconds between node healthz polls (default 2; 0 disables)",
    )
    p.add_argument(
        "--node-failures",
        type=int,
        default=3,
        metavar="N",
        help="consecutive transport failures before a node leaves the "
        "ring (default 3)",
    )
    p.add_argument(
        "--node-cooldown",
        type=float,
        default=5.0,
        metavar="S",
        help="seconds a down node waits before a half-open probe may "
        "re-admit it (default 5)",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Energy estimation for extensible processors (DATE 2003 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_program_options(p: argparse.ArgumentParser) -> None:
        p.add_argument("program", help="assembly source file")
        p.add_argument(
            "--extensions",
            default="",
            help="comma-separated custom instructions from the bundled library",
        )
        p.add_argument("--max-instructions", type=int, default=DEFAULT_MAX_INSTRUCTIONS)

    p = sub.add_parser("list-extensions", help="list the bundled custom instructions")
    p.set_defaults(func=_cmd_list_extensions)

    p = sub.add_parser("simulate", help="assemble and simulate a program")
    add_program_options(p)
    p.add_argument(
        "--engine",
        choices=ENGINES,
        default="auto",
        help="execution tier: auto picks superop unless per-retire "
        "visibility (--trace) forces the per-op compiled path",
    )
    p.add_argument("--trace", action="store_true", help="collect and print a trace")
    p.add_argument("--trace-limit", type=int, default=40)
    p.add_argument(
        "--dump-word",
        action="append",
        metavar="SYMBOL",
        help="print the 32-bit word at a data symbol after the run",
    )
    p.set_defaults(func=_cmd_simulate)

    p = sub.add_parser("assemble", help="assemble to a binary XPF object file")
    add_program_options(p)
    p.add_argument("-o", "--output", required=True, help="output .xpf path")
    p.set_defaults(func=_cmd_assemble)

    p = sub.add_parser("disasm", help="assemble and disassemble a program")
    add_program_options(p)
    p.set_defaults(func=_cmd_disasm)

    def add_operating_point(p: argparse.ArgumentParser, help_text: str) -> None:
        p.add_argument(
            "--operating-point",
            metavar="POINT",
            default=None,
            help=help_text + " (e.g. '65nm@1.1V@800MHz'; see docs/CALIBRATION.md)",
        )

    p = sub.add_parser("characterize", help="fit the macro-model over the bundled suite")
    p.add_argument("-o", "--output", default="macro_model.json")
    p.add_argument("--method", choices=("nnls", "ols", "ridge"), default="nnls")
    add_operating_point(
        p, "technology operating point to characterize the model at"
    )
    p.add_argument("--core-only", action="store_true", help="use only the 25-program core")
    p.add_argument(
        "--save-samples",
        metavar="PATH",
        help="persist the collected (variables, energy) samples as JSON",
    )
    p.add_argument(
        "--from-samples",
        metavar="PATH",
        help="re-fit from cached samples instead of re-running the suite",
    )
    p.add_argument(
        "--checkpoint",
        metavar="PATH",
        help="periodically write completed samples to this file (atomic)",
    )
    p.add_argument(
        "--checkpoint-every",
        type=int,
        default=5,
        metavar="N",
        help="checkpoint after every N completed test programs (default 5)",
    )
    p.add_argument(
        "--resume",
        action="store_true",
        help="resume from --checkpoint if it exists, skipping completed samples",
    )
    p.add_argument(
        "--max-failures",
        type=int,
        default=None,
        metavar="N",
        help="abort once more than N test programs fail (default: unlimited)",
    )
    p.add_argument(
        "--max-attempts",
        type=int,
        default=2,
        metavar="N",
        help="attempts per test program before recording a failure (default 2)",
    )
    p.add_argument("-v", "--verbose", action="store_true")
    p.set_defaults(func=_cmd_characterize)

    p = sub.add_parser("estimate", help="macro-model energy estimate (fast path)")
    p.add_argument("model", help="model JSON from `characterize`")
    p.add_argument(
        "program",
        nargs="+",
        help="assembly source file(s); several amortize the one-time setup",
    )
    p.add_argument(
        "--extensions",
        default="",
        help="comma-separated custom instructions from the bundled library",
    )
    p.add_argument("--max-instructions", type=int, default=DEFAULT_MAX_INSTRUCTIONS)
    p.add_argument("--variables", action="store_true", help="print the variable breakdown")
    add_operating_point(p, "rescale the model to this operating point first")
    p.add_argument(
        "--format",
        choices=("table", "json"),
        default="table",
        help="output format; json carries the model digest and operating "
        "point alongside each estimate (default table)",
    )
    p.set_defaults(func=_cmd_estimate)

    p = sub.add_parser(
        "explore", help="design-space exploration over the macro-model"
    )
    p.add_argument(
        "model", nargs="?", default=None, help="model JSON from `characterize`"
    )
    p.add_argument(
        "--space",
        default="reed_solomon",
        help="registered search space (see --list-spaces)",
    )
    p.add_argument(
        "--list-spaces",
        action="store_true",
        help="list the available search spaces (bundled and registered)",
    )
    p.add_argument(
        "--discovered",
        metavar="MANIFEST",
        help="register the discovered:<workload> space from a `discover "
        "--manifest` file before exploring",
    )
    p.add_argument(
        "--strategy",
        choices=("exhaustive", "random", "greedy"),
        default="exhaustive",
    )
    p.add_argument(
        "--budget", type=int, default=None, help="candidate budget (random strategy)"
    )
    p.add_argument("--seed", type=int, default=0, help="seed for random/greedy")
    p.add_argument(
        "--restarts", type=int, default=1, help="greedy hill-climb restarts"
    )
    p.add_argument(
        "--objective",
        choices=("energy", "cycles", "edp", "area", "time", "edp_seconds"),
        default="edp",
        help="ranking/climbing objective (default edp); time and "
        "edp_seconds need an operating point for the clock",
    )
    p.add_argument(
        "--operating-point",
        action="append",
        metavar="POINT",
        help="score against this technology operating point "
        "(e.g. '65nm@1.1V@800MHz'); repeat the flag to explore a "
        "scenario matrix, one exploration per point",
    )
    p.add_argument(
        "--op-axis",
        metavar="POINTS",
        help="comma-separated operating points added to the space as an "
        "extra knob, so one exploration ranks DVFS settings against "
        "micro-architecture choices",
    )
    p.add_argument(
        "--carbon",
        type=float,
        default=None,
        metavar="RPS",
        help="append a carbon/TCO overlay assuming RPS executions per second",
    )
    p.add_argument(
        "-j", "--jobs", type=int, default=1, help="parallel evaluation processes"
    )
    p.add_argument(
        "--cache",
        metavar="DIR",
        help="content-addressed on-disk result cache directory",
    )
    p.add_argument("--top-k", type=int, default=None, help="show only the best K points")
    p.add_argument(
        "--max-failures",
        type=int,
        default=None,
        metavar="N",
        help="abort once more than N candidates fail (default: unlimited)",
    )
    p.add_argument("--max-instructions", type=int, default=DEFAULT_MAX_INSTRUCTIONS)
    p.add_argument(
        "--format", choices=("table", "json", "csv"), default="table"
    )
    p.add_argument("-o", "--output", help="write the report to a file")
    p.add_argument(
        "--verify-top",
        type=int,
        default=None,
        metavar="K",
        help="cross-check the top-K ranking against the reference RTL estimator",
    )
    p.add_argument("-v", "--verbose", action="store_true")
    p.set_defaults(func=_cmd_explore)

    p = sub.add_parser("reference", help="reference RTL-level energy (slow path)")
    add_program_options(p)
    add_operating_point(p, "scale the RTL activity energies to this operating point")
    p.set_defaults(func=_cmd_reference)

    p = sub.add_parser(
        "discover",
        help="mine, legalize and score custom instructions from a profile",
    )
    p.add_argument("model", help="model JSON from `characterize`")
    p.add_argument(
        "--workload",
        default="reed_solomon",
        help="bundled workload whose software baseline is profiled "
        "(fir, reed_solomon)",
    )
    p.add_argument(
        "--top-k",
        type=int,
        default=8,
        help="legalized candidates carried into rewrite + scoring (default 8)",
    )
    p.add_argument(
        "--max-nodes",
        type=int,
        default=6,
        help="block-miner subgraph size bound (default 6)",
    )
    p.add_argument(
        "--max-ports",
        type=int,
        default=2,
        help="register-file read ports a candidate may use (default 2)",
    )
    p.add_argument(
        "--min-coverage",
        type=float,
        default=0.0,
        metavar="FRAC",
        help="drop candidates covering less than FRAC of dynamic instructions",
    )
    p.add_argument(
        "--max-latency",
        type=int,
        default=6,
        help="issue-cycle budget for a candidate datapath (default 6)",
    )
    p.add_argument(
        "-j", "--jobs", type=int, default=1, help="parallel verification processes"
    )
    p.add_argument("--max-instructions", type=int, default=DEFAULT_MAX_INSTRUCTIONS)
    p.add_argument("--format", choices=("table", "json"), default="table")
    p.add_argument("-o", "--output", help="write the report to a file")
    p.add_argument(
        "--manifest",
        metavar="PATH",
        help="also write the verified candidates as a manifest for "
        "`explore --discovered`",
    )
    p.add_argument("-v", "--verbose", action="store_true")
    p.set_defaults(func=_cmd_discover)

    p = sub.add_parser(
        "profile",
        help="streaming energy/execution profile (regions, timeline, hot spots)",
    )
    p.add_argument("model", help="model JSON from `characterize`")
    add_program_options(p)
    p.add_argument("--top", type=int, default=None, help="show only the hottest N rows")
    p.add_argument(
        "--timeline",
        type=int,
        default=None,
        metavar="N",
        help="add a per-interval energy timeline (N instructions per interval)",
    )
    p.add_argument(
        "--hot",
        action="store_true",
        help="add a hot-PC / basic-block execution histogram",
    )
    p.add_argument(
        "--cache-events",
        action="store_true",
        help="add cache-miss / uncached-fetch / interlock event counts",
    )
    p.add_argument(
        "--format",
        choices=("table", "json"),
        default="table",
        help="output format (default table)",
    )
    add_operating_point(p, "rescale the model to this operating point first")
    p.set_defaults(func=_cmd_profile)

    p = sub.add_parser(
        "serve", help="long-running batch estimation service (JSON over HTTP)"
    )
    p.add_argument("model", help="model JSON from `characterize`")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument(
        "--port", type=int, default=8731, help="TCP port (0 picks an ephemeral port)"
    )
    p.add_argument(
        "--workers",
        type=int,
        default=2,
        help="forked estimation workers (0 = in-process serial fallback)",
    )
    p.add_argument(
        "--queue-limit",
        type=int,
        default=64,
        metavar="N",
        help="pending-request bound before 429 backpressure (default 64)",
    )
    p.add_argument(
        "--batch-max",
        type=int,
        default=8,
        metavar="N",
        help="max requests dispatched to a worker as one batch (default 8)",
    )
    p.add_argument(
        "--batch-window-ms",
        type=float,
        default=5.0,
        metavar="MS",
        help="how long to gather a batch after the first request (default 5ms)",
    )
    p.add_argument(
        "--cache",
        metavar="DIR",
        help="shared on-disk result cache (same format as `explore --cache`)",
    )
    p.add_argument(
        "--no-dedupe",
        action="store_true",
        help="disable request coalescing and the in-memory result memo",
    )
    p.add_argument(
        "--timeout",
        type=float,
        default=30.0,
        metavar="S",
        help="per-batch worker timeout in seconds (default 30)",
    )
    p.add_argument(
        "--max-attempts",
        type=int,
        default=2,
        metavar="N",
        help="attempts per batch before failing its requests (default 2)",
    )
    p.add_argument(
        "--prewarm",
        metavar="NAMES",
        help="comma-separated bundled benchmarks to pre-compile before forking "
        "workers ('suite' = all 25)",
    )
    p.add_argument(
        "--quarantine-after",
        type=int,
        default=2,
        metavar="N",
        help="singleton pool crashes before a request key is quarantined "
        "(default 2)",
    )
    p.add_argument(
        "--breaker-failures",
        type=int,
        default=5,
        metavar="N",
        help="consecutive pool crashes that trip the circuit breaker into "
        "degraded inline serving (default 5)",
    )
    p.add_argument(
        "--breaker-cooldown",
        type=float,
        default=30.0,
        metavar="S",
        help="seconds an open breaker waits before probing the pool again "
        "(default 30)",
    )
    p.add_argument(
        "--drain-grace",
        type=float,
        default=10.0,
        metavar="S",
        help="seconds SIGTERM waits for in-flight work before forcing "
        "shutdown (default 10)",
    )
    p.add_argument(
        "--chaos",
        metavar="SPEC",
        help="inject deterministic service faults, e.g. "
        "'seed=7,crashes=3,hangs=1,resets=1,horizon=24,hang=2.5,poison=a|b' "
        "(testing only)",
    )
    p.add_argument(
        "--shared-cache",
        metavar="DIR",
        help="cross-node shared result-cache tier layered under --cache "
        "(any fleet node can answer keys another node computed)",
    )
    p.add_argument(
        "--port-file",
        metavar="PATH",
        help="write the bound port here once listening (for --port 0 "
        "supervisors: fleet manager, CI smokes)",
    )
    p.add_argument(
        "--fleet",
        type=int,
        default=0,
        metavar="N",
        help="spawn N node subprocesses behind a consistent-hash router "
        "on --host:--port instead of one in-process service",
    )
    p.add_argument(
        "--fleet-workdir",
        metavar="DIR",
        help="fleet scratch directory: node logs, port files, per-node "
        "and shared caches (default: a fresh temp dir)",
    )
    _add_router_args(p)
    p.set_defaults(func=_cmd_serve)

    p = sub.add_parser(
        "route",
        help="consistent-hash router over running `repro serve` nodes",
    )
    p.add_argument(
        "--nodes",
        required=True,
        metavar="ADDRS",
        help="comma-separated node addresses, e.g. "
        "'127.0.0.1:8731,127.0.0.1:8732'",
    )
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument(
        "--port", type=int, default=8730, help="TCP port (0 picks an ephemeral port)"
    )
    p.add_argument(
        "--port-file",
        metavar="PATH",
        help="write the bound port here once listening",
    )
    p.add_argument(
        "--forward-timeout",
        type=float,
        default=120.0,
        metavar="S",
        help="per-forward node response timeout in seconds (default 120)",
    )
    p.add_argument(
        "--soft-fraction",
        type=float,
        default=0.7,
        metavar="F",
        help="queue fill fraction where weighted load shedding starts "
        "(default 0.7; sheds 100%% at a full queue)",
    )
    _add_router_args(p)
    p.set_defaults(func=_cmd_route)

    p = sub.add_parser("experiments", help="regenerate the paper's tables/figures")
    p.add_argument(
        "which",
        nargs="?",
        default="all",
        choices=("all", "table1", "fig3", "table2", "fig4", "speedup"),
    )
    p.add_argument(
        "-o", "--output", help="write a combined Markdown report instead of printing"
    )
    p.add_argument(
        "--ablations", action="store_true", help="include ablation studies (slow)"
    )
    p.set_defaults(func=_cmd_experiments)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
