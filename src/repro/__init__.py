"""repro — Energy Estimation for Extensible Processors (DATE 2003), rebuilt.

An open, pure-Python reproduction of Fei, Ravi, Raghunathan & Jha's
regression energy macro-modeling methodology for extensible processors,
including every substrate it needs:

* :mod:`repro.isa` / :mod:`repro.asm` — an Xtensa-class base ISA with an
  assembler;
* :mod:`repro.hwlib` / :mod:`repro.tie` — the custom-hardware component
  library and the TIE-substitute custom-instruction framework;
* :mod:`repro.xtcore` — the extensible-core instruction-set simulator
  (caches, pipeline timing, execution statistics and traces);
* :mod:`repro.rtl` — the processor generator and the reference RTL-level
  energy estimator (the paper's WattWatcher ground truth);
* :mod:`repro.core` — **the paper's contribution**: the 21-variable
  hybrid macro-model template, variable extraction, regression fitting
  and the fast estimation path;
* :mod:`repro.programs` — verified characterization and application
  benchmark suites;
* :mod:`repro.analysis` — every table/figure of the evaluation as a
  runnable experiment.

Quick start::

    from repro.analysis import build_context, run_table2

    ctx = build_context()            # characterize the processor family
    print(run_table2(ctx).report())  # Table II: unseen-app accuracy
"""

from .core import Characterizer, EnergyMacroModel, default_template
from .rtl import RtlEnergyEstimator, generate_netlist, reference_energy
from .tie import TieSpec, TieState, compile_extension, compile_spec
from .xtcore import ProcessorConfig, Simulator, build_processor, simulate

__version__ = "1.0.0"

__all__ = [
    "Characterizer",
    "EnergyMacroModel",
    "ProcessorConfig",
    "RtlEnergyEstimator",
    "Simulator",
    "TieSpec",
    "TieState",
    "__version__",
    "build_processor",
    "compile_extension",
    "compile_spec",
    "default_template",
    "generate_netlist",
    "reference_energy",
    "simulate",
]
