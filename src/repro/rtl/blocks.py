"""Base-core hardware blocks and their ground-truth energy parameters.

The reference RTL-level estimator models the base processor at block
granularity: fetch unit, decoder, register file, ALU, optional multiplier,
shifter, load/store unit, caches, bus interface, pipeline control and
clock tree.  Each block has a mean *active* energy per access/cycle and an
*idle* (clock + leakage) energy per cycle.  Actual per-cycle energy is the
active energy scaled by a data-dependent switching-activity factor, which
is exactly the information the macro-model abstracts away — keeping its
fitting error realistically non-zero.

All energies are in arbitrary consistent units ("pJ-like"); the paper's
absolute numbers come from a 0.18 um commercial flow we cannot reproduce,
and only relative behaviour is meaningful here.
"""

from __future__ import annotations

import dataclasses
import zlib


@dataclasses.dataclass(frozen=True)
class CoreBlock:
    """One base-core hardware block with its nominal energy parameters."""

    name: str
    active_energy: float
    idle_energy: float

    def __post_init__(self) -> None:
        if self.active_energy < 0 or self.idle_energy < 0:
            raise ValueError(f"{self.name}: energies must be non-negative")


#: The base core's structural blocks.  ``base_multiplier`` is present
#: because the paper's configuration includes the 32-bit multiply option.
BASE_BLOCKS: tuple[CoreBlock, ...] = (
    CoreBlock("fetch_unit", active_energy=180.0, idle_energy=8.0),
    CoreBlock("instruction_decoder", active_energy=120.0, idle_energy=5.0),
    CoreBlock("register_file", active_energy=220.0, idle_energy=10.0),
    CoreBlock("alu", active_energy=260.0, idle_energy=8.0),
    CoreBlock("base_multiplier", active_energy=270.0, idle_energy=15.0),
    CoreBlock("base_shifter", active_energy=285.0, idle_energy=6.0),
    CoreBlock("load_store_unit", active_energy=240.0, idle_energy=8.0),
    CoreBlock("icache", active_energy=620.0, idle_energy=25.0),
    CoreBlock("dcache", active_energy=640.0, idle_energy=25.0),
    CoreBlock("bus_interface", active_energy=300.0, idle_energy=3.0),
    CoreBlock("pipeline_control", active_energy=90.0, idle_energy=4.0),
    CoreBlock("clock_tree", active_energy=110.0, idle_energy=0.0),
)

BLOCKS_BY_NAME: dict[str, CoreBlock] = {block.name: block for block in BASE_BLOCKS}

#: Per-event energies of the dynamic non-idealities.  These are what the
#: macro-model's N_cm / N_dm / N_uf / N_il coefficients should recover.
EVENT_ENERGY = {
    "icache_miss": 4200.0,
    "dcache_miss": 4600.0,
    "uncached_fetch": 3100.0,
    "interlock": 150.0,
}

# Expected spurious weight (analysis side) — re-exported for reports.
from ..hwlib import SPURIOUS_ACTIVATION_WEIGHT  # noqa: E402,F401

#: Physical input-stage factor of a spurious activation in the ground
#: truth: a base instruction driving the operand buses only exercises the
#: input logic cone of a tapped component, at the *actual* bus switching
#: density of that cycle.  ``SPURIOUS_ACTIVATION_WEIGHT`` (hwlib) is this
#: factor times the typical bus-to-datapath switching-density ratio.
SPURIOUS_INPUT_STAGE_WEIGHT = 0.5

#: Instruction mnemonics executed on the base multiplier / shifter blocks.
MULTIPLIER_MNEMONICS = frozenset({"mull", "mulh", "mulhu"})
SHIFTER_MNEMONICS = frozenset(
    {"sll", "srl", "sra", "rotl", "rotr", "slli", "srli", "srai", "roli", "rori"}
)


def stable_unit_variation(name: str, spread: float = 0.10) -> float:
    """Deterministic per-instance process/synthesis variation factor.

    Hash-derived (CRC32, *not* Python's randomized ``hash``) so that the
    same netlist always yields the same ground truth.  Returns a factor in
    ``[1 - spread, 1 + spread]``.
    """
    digest = zlib.crc32(name.encode("utf-8")) & 0xFFFFFFFF
    unit = digest / 0xFFFFFFFF  # in [0, 1]
    return 1.0 - spread + 2.0 * spread * unit
