"""Processor generator: configuration → structural netlist.

The paper's flow uses the Xtensa processor generator to emit synthesizable
RTL for each custom processor during characterization.  Our substitute
emits a block-level structural netlist: the base-core blocks, one
component per custom-hardware instance, and the auto-generated TIE control
logic (decoder extension, bypass/interlock logic) whose size scales with
the number and shape of custom instructions.

The netlist is what the reference RTL energy estimator "simulates"; it is
also introspectable (areas, per-category complexity) for reports/tests.
"""

from __future__ import annotations

import dataclasses
from typing import Mapping

from ..hwlib import CATEGORY_ORDER, ComponentCategory, ComponentInstance
from ..xtcore import ProcessorConfig
from .blocks import BASE_BLOCKS, CoreBlock, stable_unit_variation


@dataclasses.dataclass(frozen=True)
class ControlOverhead:
    """Auto-generated TIE integration logic (decoder, bypass, interlock).

    The TIE compiler generates this "for free" in the real flow; its energy
    is charged per custom-instruction execution and (decoder) per fetch.
    """

    decode_energy: float
    bypass_energy: float

    @staticmethod
    def for_config(config: ProcessorConfig) -> "ControlOverhead":
        n_custom = len(config.extensions)
        gpr_ports = sum(1 for impl in config.extensions if impl.accesses_gpr)
        # Bypass energy is paid per custom-instruction access; the network
        # grows with the number of GPR-coupled extensions, but unused
        # branches of it are operand-isolated, so the per-access cost has
        # only a mild size dependence.
        return ControlOverhead(
            decode_energy=0.15 * n_custom,
            bypass_energy=25.0 + 1.5 * gpr_ports,
        )


@dataclasses.dataclass(frozen=True)
class ProcessorNetlist:
    """The generated structural view of one processor instance."""

    config: ProcessorConfig
    base_blocks: tuple[CoreBlock, ...]
    custom_instances: tuple[ComponentInstance, ...]
    control: ControlOverhead

    @property
    def name(self) -> str:
        return self.config.name

    @property
    def custom_area(self) -> float:
        """Sum of custom-instance complexities — an area proxy."""
        return sum(instance.complexity for instance in self.custom_instances)

    def category_complexity(self) -> Mapping[ComponentCategory, float]:
        """Total instantiated complexity per component category."""
        totals: dict[ComponentCategory, float] = {}
        for instance in self.custom_instances:
            totals[instance.category] = totals.get(instance.category, 0.0) + instance.complexity
        return totals

    def instance_variation(self, instance_name: str) -> float:
        """The deterministic process-variation factor of one instance."""
        return stable_unit_variation(f"{self.name}/{instance_name}")

    def synthesis_report(self) -> str:
        """Textual report resembling a post-generation summary."""
        lines = [
            f"=== processor generator report: {self.name} ===",
            f"base core blocks: {len(self.base_blocks)}",
            f"custom instructions: {len(self.config.extensions)}",
            f"custom hardware instances: {len(self.custom_instances)} "
            f"(area proxy {self.custom_area:.1f})",
        ]
        complexity = self.category_complexity()
        for category in CATEGORY_ORDER:
            if category in complexity:
                lines.append(f"  {category.value:<14} complexity {complexity[category]:8.1f}")
        for impl in self.config.extensions:
            lines.append(
                f"  {impl.mnemonic:<14} latency {impl.latency} cycle(s), "
                f"{len(impl.instances)} instance(s), "
                f"{'GPR-coupled' if impl.accesses_gpr else 'standalone'}"
            )
        return "\n".join(lines)


def generate_netlist(config: ProcessorConfig) -> ProcessorNetlist:
    """Generate the structural netlist of ``config``.

    Equivalent of running the processor generator in the paper's step 4:
    required before RTL energy estimation, *not* required for applying
    the energy macro-model (that is the point of the paper).
    """
    return ProcessorNetlist(
        config=config,
        base_blocks=BASE_BLOCKS,
        custom_instances=config.custom_instances,
        control=ControlOverhead.for_config(config),
    )
