"""``repro.rtl`` — processor generator + reference RTL energy estimator."""

from .blocks import (
    BASE_BLOCKS,
    BLOCKS_BY_NAME,
    EVENT_ENERGY,
    SPURIOUS_ACTIVATION_WEIGHT,
    CoreBlock,
    stable_unit_variation,
)
from .estimator import EnergyReport, RtlEnergyEstimator, reference_energy
from .netlist import ControlOverhead, ProcessorNetlist, generate_netlist

__all__ = [
    "BASE_BLOCKS",
    "BLOCKS_BY_NAME",
    "ControlOverhead",
    "CoreBlock",
    "EVENT_ENERGY",
    "EnergyReport",
    "ProcessorNetlist",
    "RtlEnergyEstimator",
    "SPURIOUS_ACTIVATION_WEIGHT",
    "generate_netlist",
    "reference_energy",
    "stable_unit_variation",
]
