"""Reference RTL-level energy estimator (WattWatcher substitute).

This is the paper's *ground truth*: a slow, detailed, structural energy
simulation of the generated processor running one program.  It consumes
the dynamic execution stream and charges every hardware block — base-core
blocks, custom-hardware instances and auto-generated control logic —
per-cycle energies that depend on

* **switching activity**: Hamming distance between consecutive data
  values seen at each block's inputs (the standard CMOS dynamic-power
  proxy),
* **per-instance variation**: a deterministic synthesis/process factor
  per hardware instance,
* **events**: cache misses, uncached fetches and interlocks carry their
  own energy,
* **idle/clock energy**: every instantiated block burns idle energy each
  cycle.

Because the charge is per-instruction and data-dependent while the
macro-model sees only class-level aggregates, the macro-model's fit has
an irreducible error of a few percent — reproducing the paper's Fig. 3 /
Table II error profile rather than a degenerate exact fit.

Two consumption modes share one switching-activity accumulator:

* **streaming** (:meth:`RtlEnergyEstimator.observer` /
  :meth:`~RtlEnergyEstimator.estimate_program`): an observer subscribed
  to the simulator's retire-event stream computes data-dependent
  switching activity *online* — one pass, O(1) trace memory; and
* **materialized** (:meth:`~RtlEnergyEstimator.estimate`): the
  compatibility path over a ``collect_trace=True`` trace list.

Both walk identical arithmetic over identical per-instruction values, so
their energy reports agree exactly.
"""

from __future__ import annotations

import dataclasses
from typing import TYPE_CHECKING, Optional

from ..hwlib import ComponentInstance
from ..isa import InstructionClass, hamming_distance
from ..obs.protocol import SimObserver
from ..obs.session import run_session
from ..tech import OperatingPoint, TechCalibration, default_calibration
from ..xtcore import DEFAULT_MAX_INSTRUCTIONS, ProcessorConfig, SimulationResult
from ..asm import Program
from .blocks import (
    BLOCKS_BY_NAME,
    EVENT_ENERGY,
    MULTIPLIER_MNEMONICS,
    SHIFTER_MNEMONICS,
    SPURIOUS_INPUT_STAGE_WEIGHT,
    stable_unit_variation,
)
from .netlist import ProcessorNetlist, generate_netlist

if TYPE_CHECKING:  # pragma: no cover
    from ..obs.events import RetireEvent

#: Floor of the switching-activity factor: even a quiet block precharges
#: lines, clocks registers and drives control nets when accessed, so the
#: data-dependent part of a block's active energy is a minority share
#: (toggle in [0.55, 1.0] — a realistic ±20%-ish data swing).
_TOGGLE_FLOOR = 0.55


def _toggle_factor(previous: int, current: int, width: int = 32) -> float:
    """Activity factor in [_TOGGLE_FLOOR, 1.0] from input toggling."""
    if width <= 0:
        return _TOGGLE_FLOOR
    density = hamming_distance(previous, current, width) / width
    return _TOGGLE_FLOOR + (1.0 - _TOGGLE_FLOOR) * density


@dataclasses.dataclass
class EnergyReport:
    """Output of one reference estimation run."""

    program_name: str
    processor_name: str
    total: float
    by_block: dict[str, float]
    by_group: dict[str, float]
    cycles: int
    instructions: int

    @property
    def per_cycle(self) -> float:
        return self.total / self.cycles if self.cycles else 0.0

    def summary(self) -> str:
        lines = [
            f"RTL energy estimate: {self.program_name} on {self.processor_name}",
            f"  total {self.total:.1f} units over {self.cycles} cycles "
            f"({self.per_cycle:.1f}/cycle, {self.instructions} instructions)",
        ]
        for group, value in sorted(self.by_group.items(), key=lambda kv: -kv[1]):
            share = 100.0 * value / self.total if self.total else 0.0
            lines.append(f"  {group:<12} {value:12.1f}  ({share:4.1f}%)")
        return "\n".join(lines)


class _ActivityAccumulator:
    """Online switching-activity integration over one execution stream.

    Accepts :class:`~repro.obs.records.TraceRecord` and
    :class:`~repro.obs.events.RetireEvent` interchangeably (identical
    field layout) and never retains a reference past the
    :meth:`feed` call, so streaming consumption is O(1) in trace length.
    """

    def __init__(self, estimator: "RtlEnergyEstimator") -> None:
        self._est = estimator
        self.by_block: dict[str, float] = {name: 0.0 for name in estimator._blocks}
        for instance in estimator.netlist.custom_instances:
            self.by_block[instance.name] = 0.0
        self.by_block["tie_control"] = 0.0
        self.groups = {
            "base_core": 0.0,
            "custom_hw": 0.0,
            "events": 0.0,
            "control": 0.0,
            "idle": 0.0,
        }
        mean_toggle = (_TOGGLE_FLOOR + 1.0) / 2.0
        if estimator.data_dependent:
            self._toggle_of = _toggle_factor
        else:
            def toggle_of(previous: int, current: int, width: int = 32) -> float:
                return mean_toggle

            self._toggle_of = toggle_of
        # Activity history (per consumer context).
        self._prev_pc = 0
        self._prev_alu = (0, 0)
        self._prev_mul = (0, 0)
        self._prev_shift = (0, 0)
        self._prev_mem = 0
        self._prev_bus = (0, 0)
        self._prev_custom: dict[str, tuple[int, ...]] = {}

    def feed(self, record: "RetireEvent | object") -> None:
        """Charge every block touched by one retired instruction."""
        est = self._est
        by_block = self.by_block
        groups = self.groups
        blocks = est._blocks
        extensions = est.config.extension_index
        control = est.netlist.control
        toggle_of = self._toggle_of
        scale = est.energy_scale

        # Every unit of energy flows through this closure, so one factor
        # here rescales the whole report to the estimator's operating
        # point — exactly linear, matching EnergyMacroModel.at().
        def charge(block: str, amount: float, group: str) -> None:
            by_block[block] += amount * scale
            groups[group] += amount * scale

        operands = record.operands
        cycles = record.cycles

        # ---- fetch + decode (every instruction) ----------------------
        fetch_toggle = toggle_of(self._prev_pc, record.addr)
        charge("fetch_unit", blocks["fetch_unit"].active_energy * fetch_toggle, "base_core")
        self._prev_pc = record.addr
        decode_var = est._decode_variation.get(record.mnemonic)
        if decode_var is None:
            if est.data_dependent:
                decode_var = stable_unit_variation(
                    "decode/" + record.mnemonic, spread=0.06
                )
            else:
                decode_var = 1.0
            est._decode_variation[record.mnemonic] = decode_var
        charge(
            "instruction_decoder",
            blocks["instruction_decoder"].active_energy * decode_var,
            "base_core",
        )
        if not record.uncached_fetch:
            charge("icache", blocks["icache"].active_energy * fetch_toggle, "base_core")
        if extensions:
            # The generated TIE decoder examines every fetched opcode.
            charge("tie_control", control.decode_energy, "control")

        # ---- register file -------------------------------------------
        port_uses = len(operands) + (1 if record.result or record.iclass in (
            InstructionClass.ARITH, InstructionClass.LOAD, InstructionClass.CUSTOM
        ) else 0)
        if port_uses:
            # Decode, word-line precharge etc. dominate; the marginal
            # cost of extra ports is sub-linear.
            port_factor = 0.55 + 0.15 * min(port_uses, 3)
            charge(
                "register_file",
                blocks["register_file"].active_energy * port_factor,
                "base_core",
            )

        # ---- execution units ------------------------------------------
        iclass = record.iclass
        if iclass is InstructionClass.ARITH:
            a = operands[0] if operands else 0
            b = operands[1] if len(operands) > 1 else record.result
            if record.mnemonic in MULTIPLIER_MNEMONICS:
                toggle = (
                    toggle_of(self._prev_mul[0], a) + toggle_of(self._prev_mul[1], b)
                ) / 2.0
                self._prev_mul = (a, b)
                active_cycles = est._latency[record.mnemonic]
                charge(
                    "base_multiplier",
                    blocks["base_multiplier"].active_energy * toggle * active_cycles,
                    "base_core",
                )
            elif record.mnemonic in SHIFTER_MNEMONICS:
                toggle = toggle_of(self._prev_shift[0], a)
                self._prev_shift = (a, b)
                charge("base_shifter", blocks["base_shifter"].active_energy * toggle, "base_core")
            else:
                toggle = (
                    toggle_of(self._prev_alu[0], a) + toggle_of(self._prev_alu[1], b)
                ) / 2.0
                self._prev_alu = (a, b)
                # Iterative units (divide/remainder) keep the ALU busy
                # for every issue cycle.
                active_cycles = est._latency[record.mnemonic]
                charge(
                    "alu",
                    blocks["alu"].active_energy * toggle * active_cycles,
                    "base_core",
                )
        elif iclass in (InstructionClass.LOAD, InstructionClass.STORE):
            addr = record.mem_addr or 0
            toggle = toggle_of(self._prev_mem, addr)
            self._prev_mem = addr
            charge("load_store_unit", blocks["load_store_unit"].active_energy * toggle, "base_core")
            charge("dcache", blocks["dcache"].active_energy * toggle, "base_core")
        elif iclass in (
            InstructionClass.JUMP,
            InstructionClass.BRANCH_TAKEN,
            InstructionClass.BRANCH_UNTAKEN,
        ):
            # Compare/target logic rides on the ALU; taken control flow
            # additionally re-steers the fetch unit.
            charge("alu", blocks["alu"].active_energy * 0.6, "base_core")
            if iclass is not InstructionClass.BRANCH_UNTAKEN:
                charge("fetch_unit", blocks["fetch_unit"].active_energy * 0.8, "base_core")

        # ---- custom instruction execution ------------------------------
        if iclass is InstructionClass.CUSTOM:
            impl = extensions[record.mnemonic]
            previous = self._prev_custom.get(record.mnemonic)
            toggle = _TOGGLE_FLOOR + (1.0 - _TOGGLE_FLOOR) * 0.5
            if est.data_dependent and previous is not None and operands:
                widths = est._custom_widths.get(record.mnemonic, ())
                densities = [
                    hamming_distance(p, c, width) / width
                    for p, c, width in zip(
                        previous, operands, widths or (32,) * len(operands)
                    )
                ]
                mean_density = sum(densities) / len(densities)
                toggle = _TOGGLE_FLOOR + (1.0 - _TOGGLE_FLOOR) * mean_density
            self._prev_custom[record.mnemonic] = operands
            for instance in impl.instances:
                active = len(impl.active_cycles[instance.name])
                if not active:
                    continue
                energy = est._instance_energy[instance.name] * toggle * active
                charge(instance.name, energy, "custom_hw")
            # A multi-cycle custom instruction stalls issue but keeps
            # the decode latches, register-file ports and bypass logic
            # engaged every cycle it occupies the pipeline.
            extra_cycles = impl.latency - 1
            if extra_cycles:
                charge(
                    "instruction_decoder",
                    blocks["instruction_decoder"].active_energy * decode_var * extra_cycles,
                    "base_core",
                )
                if port_uses:
                    charge(
                        "register_file",
                        blocks["register_file"].active_energy * port_factor * extra_cycles,
                        "base_core",
                    )
            if impl.accesses_gpr:
                charge("tie_control", control.bypass_energy * impl.latency, "control")

        # ---- spurious operand-bus activation ----------------------------
        elif operands and est._taps:
            a = operands[0]
            b = operands[1] if len(operands) > 1 else 0
            bus_toggle = (
                toggle_of(self._prev_bus[0], a) + toggle_of(self._prev_bus[1], b)
            ) / 2.0
            self._prev_bus = (a, b)
            for instance, nominal in est._taps:
                charge(
                    instance.name,
                    nominal * SPURIOUS_INPUT_STAGE_WEIGHT * bus_toggle,
                    "custom_hw",
                )

        # ---- events ------------------------------------------------------
        if record.icache_miss:
            charge("bus_interface", EVENT_ENERGY["icache_miss"], "events")
        if record.dcache_miss:
            charge("bus_interface", EVENT_ENERGY["dcache_miss"], "events")
        if record.uncached_fetch:
            charge("bus_interface", EVENT_ENERGY["uncached_fetch"], "events")
        if record.interlock:
            charge("pipeline_control", EVENT_ENERGY["interlock"], "events")

        # ---- per-cycle clock / pipeline / idle ----------------------------
        charge("pipeline_control", blocks["pipeline_control"].active_energy * cycles, "base_core")
        charge("clock_tree", blocks["clock_tree"].active_energy * cycles, "base_core")
        idle = (est._base_idle_per_cycle + est._custom_idle_per_cycle) * cycles
        charge("clock_tree", idle, "idle")

    def finish(self, program_name: str, cycles: int, instructions: int) -> EnergyReport:
        """Package the accumulated charges into an :class:`EnergyReport`."""
        return EnergyReport(
            program_name=program_name,
            processor_name=self._est.config.name,
            total=sum(self.groups.values()),
            by_block=self.by_block,
            by_group=self.groups,
            cycles=cycles,
            instructions=instructions,
        )


class RtlEnergyObserver(SimObserver):
    """Streams retire events into a switching-activity accumulator.

    Register one on a :func:`repro.obs.run_session` run (no trace
    collection needed) and read :attr:`report` after the run — the
    streaming reference path: one pass, peak trace memory independent of
    instruction count.
    """

    wants_retire = True
    #: operand-result values feed the register-file port model
    needs_result = True

    def __init__(self, estimator: "RtlEnergyEstimator") -> None:
        self._estimator = estimator
        self._accumulator: Optional[_ActivityAccumulator] = None
        self._report: Optional[EnergyReport] = None

    def on_run_start(self, config: ProcessorConfig, program: Program) -> None:
        self._estimator._check_config(config, source="run")
        self._accumulator = _ActivityAccumulator(self._estimator)
        self._report = None

    def on_retire(self, event: "RetireEvent") -> None:
        self._accumulator.feed(event)

    def on_run_finish(self, result: SimulationResult) -> None:
        self._report = self._accumulator.finish(
            result.program.name,
            result.stats.total_cycles,
            result.stats.total_instructions,
        )

    @property
    def report(self) -> EnergyReport:
        if self._report is None:
            raise ValueError(
                "no energy report yet; the observer must complete a "
                "run_session() run before its report is read"
            )
        return self._report


class RtlEnergyEstimator:
    """Structural (slow, accurate) energy estimator over a netlist.

    ``data_dependent=False`` freezes every switching-activity factor at
    its distribution mean — an ablation mode that removes the information
    the macro-model cannot see.  With it the macro-model fit collapses to
    ~0% error, demonstrating that the estimation error measured in the
    main experiments comes from the class-level abstraction, not from the
    regression machinery.

    ``operating_point`` rescales every charged energy by the calibration
    table's first-order CMOS factor relative to the reference point —
    the same factor :meth:`EnergyMacroModel.at` applies to fitted
    coefficients, so macro-vs-reference comparisons stay apples-to-apples
    at any point.  ``None`` means the calibration reference (scale 1.0).
    """

    def __init__(
        self,
        netlist: ProcessorNetlist,
        data_dependent: bool = True,
        operating_point: "OperatingPoint | str | None" = None,
        calibration: Optional[TechCalibration] = None,
    ) -> None:
        self.netlist = netlist
        self.config = netlist.config
        self.data_dependent = data_dependent
        if operating_point is not None:
            cal = calibration or default_calibration()
            self.operating_point: Optional[OperatingPoint] = cal.validate(
                operating_point
            )
            self.energy_scale = cal.energy_scale(self.operating_point)
        else:
            self.operating_point = None
            self.energy_scale = 1.0
        self._blocks = BLOCKS_BY_NAME
        # Pre-resolve per-instance nominal energies (variation applied).
        self._instance_energy: dict[str, float] = {}
        self._instance_idle: dict[str, float] = {}
        for instance in netlist.custom_instances:
            variation = (
                netlist.instance_variation(instance.name) if data_dependent else 1.0
            )
            self._instance_energy[instance.name] = instance.unit_energy * variation
            self._instance_idle[instance.name] = (
                instance.unit_energy * instance.info.idle_fraction * variation
            )
        # Per-mnemonic decode variation: the within-class energy spread the
        # macro-model cannot observe.
        self._decode_variation: dict[str, float] = {}
        # Bus-tapped instance lists per extension (precomputed).
        self._taps: list[tuple[ComponentInstance, float]] = []
        for impl in self.config.extensions:
            for name in impl.bus_tapped:
                instance = impl.instance_by_name(name)
                self._taps.append((instance, self._instance_energy[name]))
        self._base_idle_per_cycle = sum(b.idle_energy for b in netlist.base_blocks)
        self._custom_idle_per_cycle = sum(self._instance_idle.values())
        #: issue-cycle latency per mnemonic (multi-cycle units stay active
        #: for every issue cycle)
        self._latency = {d.mnemonic: d.latency for d in self.config.isa}
        #: declared GPR-source widths per custom mnemonic, in operand order
        #: (toggle densities are relative to the datapath width actually
        #: wired to the operand, not the full 32-bit bus)
        self._custom_widths: dict[str, tuple[int, ...]] = {}
        for impl in self.config.extensions:
            widths = {
                node.payload: node.width
                for node in impl.spec.nodes
                if node.kind == "gpr_in"
            }
            ordered = tuple(widths[field] for field in ("rs", "rt") if field in widths)
            self._custom_widths[impl.mnemonic] = ordered

    # -- public API -----------------------------------------------------------

    def _check_config(self, other: ProcessorConfig, source: str) -> None:
        """Reject execution streams produced on a content-different config.

        Names can collide across content-different configs, so the error
        reports content fingerprints of both sides.
        """
        if other is self.config or other.fingerprint() == self.config.fingerprint():
            return
        noun = "trace" if source == "trace" else "simulation run"
        raise ValueError(
            f"{noun} was produced on {other.name!r} "
            f"(fingerprint {other.fingerprint()[:12]}), but this estimator "
            f"models {self.config.name!r} "
            f"(fingerprint {self.config.fingerprint()[:12]})"
        )

    def observer(self) -> RtlEnergyObserver:
        """A fresh streaming observer bound to this estimator's netlist."""
        return RtlEnergyObserver(self)

    def estimate(self, result: SimulationResult) -> EnergyReport:
        """Estimate the energy of a simulated run (requires a full trace).

        Compatibility path over a materialized trace; the streaming
        observer computes the identical report without one.
        """
        if result.trace is None:
            raise ValueError(
                "RTL estimation needs a full execution trace; simulate with "
                "collect_trace=True, or use the streaming observer() / "
                "estimate_program() path which needs no trace at all"
            )
        self._check_config(result.config, source="trace")
        accumulator = _ActivityAccumulator(self)
        for record in result.trace:
            accumulator.feed(record)
        return accumulator.finish(
            result.program.name,
            result.stats.total_cycles,
            result.stats.total_instructions,
        )

    def estimate_program(
        self, program: Program, max_instructions: int = DEFAULT_MAX_INSTRUCTIONS
    ) -> tuple[EnergyReport, SimulationResult]:
        """Full reference path: simulation with *online* energy accumulation.

        Streams the run through :class:`RtlEnergyObserver` — no trace is
        materialized, so peak memory is independent of instruction count.
        The returned :class:`SimulationResult` therefore has
        ``trace=None``; call :meth:`estimate` on a ``collect_trace=True``
        run if the trace itself is needed.
        """
        observer = self.observer()
        result = run_session(
            self.config,
            program,
            observers=(observer,),
            max_instructions=max_instructions,
        )
        return observer.report, result


def reference_energy(
    config: ProcessorConfig,
    program: Program,
    max_instructions: int = DEFAULT_MAX_INSTRUCTIONS,
    operating_point: "OperatingPoint | str | None" = None,
) -> tuple[EnergyReport, SimulationResult]:
    """One-shot: generate the netlist and run the reference estimator."""
    estimator = RtlEnergyEstimator(
        generate_netlist(config), operating_point=operating_point
    )
    return estimator.estimate_program(program, max_instructions=max_instructions)
