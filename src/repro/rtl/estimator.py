"""Reference RTL-level energy estimator (WattWatcher substitute).

This is the paper's *ground truth*: a slow, detailed, structural energy
simulation of the generated processor running one program.  It walks the
full dynamic execution trace and charges every hardware block — base-core
blocks, custom-hardware instances and auto-generated control logic —
per-cycle energies that depend on

* **switching activity**: Hamming distance between consecutive data
  values seen at each block's inputs (the standard CMOS dynamic-power
  proxy),
* **per-instance variation**: a deterministic synthesis/process factor
  per hardware instance,
* **events**: cache misses, uncached fetches and interlocks carry their
  own energy,
* **idle/clock energy**: every instantiated block burns idle energy each
  cycle.

Because the charge is per-instruction and data-dependent while the
macro-model sees only class-level aggregates, the macro-model's fit has
an irreducible error of a few percent — reproducing the paper's Fig. 3 /
Table II error profile rather than a degenerate exact fit.
"""

from __future__ import annotations

import dataclasses

from ..hwlib import ComponentInstance
from ..isa import InstructionClass, hamming_distance
from ..xtcore import ProcessorConfig, SimulationResult, Simulator
from ..asm import Program
from .blocks import (
    BLOCKS_BY_NAME,
    EVENT_ENERGY,
    MULTIPLIER_MNEMONICS,
    SHIFTER_MNEMONICS,
    SPURIOUS_INPUT_STAGE_WEIGHT,
    stable_unit_variation,
)
from .netlist import ProcessorNetlist, generate_netlist

#: Floor of the switching-activity factor: even a quiet block precharges
#: lines, clocks registers and drives control nets when accessed, so the
#: data-dependent part of a block's active energy is a minority share
#: (toggle in [0.55, 1.0] — a realistic ±20%-ish data swing).
_TOGGLE_FLOOR = 0.55


def _toggle_factor(previous: int, current: int, width: int = 32) -> float:
    """Activity factor in [_TOGGLE_FLOOR, 1.0] from input toggling."""
    if width <= 0:
        return _TOGGLE_FLOOR
    density = hamming_distance(previous, current, width) / width
    return _TOGGLE_FLOOR + (1.0 - _TOGGLE_FLOOR) * density


@dataclasses.dataclass
class EnergyReport:
    """Output of one reference estimation run."""

    program_name: str
    processor_name: str
    total: float
    by_block: dict[str, float]
    by_group: dict[str, float]
    cycles: int
    instructions: int

    @property
    def per_cycle(self) -> float:
        return self.total / self.cycles if self.cycles else 0.0

    def summary(self) -> str:
        lines = [
            f"RTL energy estimate: {self.program_name} on {self.processor_name}",
            f"  total {self.total:.1f} units over {self.cycles} cycles "
            f"({self.per_cycle:.1f}/cycle, {self.instructions} instructions)",
        ]
        for group, value in sorted(self.by_group.items(), key=lambda kv: -kv[1]):
            share = 100.0 * value / self.total if self.total else 0.0
            lines.append(f"  {group:<12} {value:12.1f}  ({share:4.1f}%)")
        return "\n".join(lines)


class RtlEnergyEstimator:
    """Structural (slow, accurate) energy estimator over a netlist.

    ``data_dependent=False`` freezes every switching-activity factor at
    its distribution mean — an ablation mode that removes the information
    the macro-model cannot see.  With it the macro-model fit collapses to
    ~0% error, demonstrating that the estimation error measured in the
    main experiments comes from the class-level abstraction, not from the
    regression machinery.
    """

    def __init__(self, netlist: ProcessorNetlist, data_dependent: bool = True) -> None:
        self.netlist = netlist
        self.config = netlist.config
        self.data_dependent = data_dependent
        self._blocks = BLOCKS_BY_NAME
        # Pre-resolve per-instance nominal energies (variation applied).
        self._instance_energy: dict[str, float] = {}
        self._instance_idle: dict[str, float] = {}
        for instance in netlist.custom_instances:
            variation = (
                netlist.instance_variation(instance.name) if data_dependent else 1.0
            )
            self._instance_energy[instance.name] = instance.unit_energy * variation
            self._instance_idle[instance.name] = (
                instance.unit_energy * instance.info.idle_fraction * variation
            )
        # Per-mnemonic decode variation: the within-class energy spread the
        # macro-model cannot observe.
        self._decode_variation: dict[str, float] = {}
        # Bus-tapped instance lists per extension (precomputed).
        self._taps: list[tuple[ComponentInstance, float]] = []
        for impl in self.config.extensions:
            for name in impl.bus_tapped:
                instance = impl.instance_by_name(name)
                self._taps.append((instance, self._instance_energy[name]))
        self._base_idle_per_cycle = sum(b.idle_energy for b in netlist.base_blocks)
        self._custom_idle_per_cycle = sum(self._instance_idle.values())
        #: issue-cycle latency per mnemonic (multi-cycle units stay active
        #: for every issue cycle)
        self._latency = {d.mnemonic: d.latency for d in self.config.isa}
        #: declared GPR-source widths per custom mnemonic, in operand order
        #: (toggle densities are relative to the datapath width actually
        #: wired to the operand, not the full 32-bit bus)
        self._custom_widths: dict[str, tuple[int, ...]] = {}
        for impl in self.config.extensions:
            widths = {
                node.payload: node.width
                for node in impl.spec.nodes
                if node.kind == "gpr_in"
            }
            ordered = tuple(widths[field] for field in ("rs", "rt") if field in widths)
            self._custom_widths[impl.mnemonic] = ordered

    # -- public API -----------------------------------------------------------

    def estimate(self, result: SimulationResult) -> EnergyReport:
        """Estimate the energy of a simulated run (requires a full trace)."""
        if result.trace is None:
            raise ValueError(
                "RTL estimation needs a full execution trace; simulate with collect_trace=True"
            )
        if (
            result.config is not self.config
            and result.config.fingerprint() != self.config.fingerprint()
        ):
            raise ValueError(
                f"trace was produced on {result.config.name!r}, "
                f"but this estimator models {self.config.name!r}"
            )

        by_block: dict[str, float] = {name: 0.0 for name in self._blocks}
        for instance in self.netlist.custom_instances:
            by_block[instance.name] = 0.0
        by_block["tie_control"] = 0.0

        groups = {"base_core": 0.0, "custom_hw": 0.0, "events": 0.0, "control": 0.0, "idle": 0.0}

        blocks = self._blocks
        extensions = self.config.extension_index
        control = self.netlist.control
        mean_toggle = (_TOGGLE_FLOOR + 1.0) / 2.0

        if self.data_dependent:
            toggle_of = _toggle_factor
        else:
            def toggle_of(previous: int, current: int, width: int = 32) -> float:
                return mean_toggle

        # Activity history (per consumer context).
        prev_pc = 0
        prev_alu = (0, 0)
        prev_mul = (0, 0)
        prev_shift = (0, 0)
        prev_mem = 0
        prev_bus = (0, 0)
        prev_custom: dict[str, tuple[int, ...]] = {}

        def charge(block: str, amount: float, group: str) -> None:
            by_block[block] += amount
            groups[group] += amount

        for record in result.trace:
            operands = record.operands
            cycles = record.cycles

            # ---- fetch + decode (every instruction) ----------------------
            fetch_toggle = toggle_of(prev_pc, record.addr)
            charge("fetch_unit", blocks["fetch_unit"].active_energy * fetch_toggle, "base_core")
            prev_pc = record.addr
            decode_var = self._decode_variation.get(record.mnemonic)
            if decode_var is None:
                if self.data_dependent:
                    decode_var = stable_unit_variation(
                        "decode/" + record.mnemonic, spread=0.06
                    )
                else:
                    decode_var = 1.0
                self._decode_variation[record.mnemonic] = decode_var
            charge(
                "instruction_decoder",
                blocks["instruction_decoder"].active_energy * decode_var,
                "base_core",
            )
            if not record.uncached_fetch:
                charge("icache", blocks["icache"].active_energy * fetch_toggle, "base_core")
            if extensions:
                # The generated TIE decoder examines every fetched opcode.
                charge("tie_control", control.decode_energy, "control")

            # ---- register file -------------------------------------------
            port_uses = len(operands) + (1 if record.result or record.iclass in (
                InstructionClass.ARITH, InstructionClass.LOAD, InstructionClass.CUSTOM
            ) else 0)
            if port_uses:
                # Decode, word-line precharge etc. dominate; the marginal
                # cost of extra ports is sub-linear.
                port_factor = 0.55 + 0.15 * min(port_uses, 3)
                charge(
                    "register_file",
                    blocks["register_file"].active_energy * port_factor,
                    "base_core",
                )

            # ---- execution units ------------------------------------------
            iclass = record.iclass
            if iclass is InstructionClass.ARITH:
                a = operands[0] if operands else 0
                b = operands[1] if len(operands) > 1 else record.result
                if record.mnemonic in MULTIPLIER_MNEMONICS:
                    toggle = (
                        toggle_of(prev_mul[0], a) + toggle_of(prev_mul[1], b)
                    ) / 2.0
                    prev_mul = (a, b)
                    active_cycles = self._latency[record.mnemonic]
                    charge(
                        "base_multiplier",
                        blocks["base_multiplier"].active_energy * toggle * active_cycles,
                        "base_core",
                    )
                elif record.mnemonic in SHIFTER_MNEMONICS:
                    toggle = toggle_of(prev_shift[0], a)
                    prev_shift = (a, b)
                    charge("base_shifter", blocks["base_shifter"].active_energy * toggle, "base_core")
                else:
                    toggle = (
                        toggle_of(prev_alu[0], a) + toggle_of(prev_alu[1], b)
                    ) / 2.0
                    prev_alu = (a, b)
                    # Iterative units (divide/remainder) keep the ALU busy
                    # for every issue cycle.
                    active_cycles = self._latency[record.mnemonic]
                    charge(
                        "alu",
                        blocks["alu"].active_energy * toggle * active_cycles,
                        "base_core",
                    )
            elif iclass in (InstructionClass.LOAD, InstructionClass.STORE):
                addr = record.mem_addr or 0
                toggle = toggle_of(prev_mem, addr)
                prev_mem = addr
                charge("load_store_unit", blocks["load_store_unit"].active_energy * toggle, "base_core")
                charge("dcache", blocks["dcache"].active_energy * toggle, "base_core")
            elif iclass in (
                InstructionClass.JUMP,
                InstructionClass.BRANCH_TAKEN,
                InstructionClass.BRANCH_UNTAKEN,
            ):
                # Compare/target logic rides on the ALU; taken control flow
                # additionally re-steers the fetch unit.
                charge("alu", blocks["alu"].active_energy * 0.6, "base_core")
                if iclass is not InstructionClass.BRANCH_UNTAKEN:
                    charge("fetch_unit", blocks["fetch_unit"].active_energy * 0.8, "base_core")

            # ---- custom instruction execution ------------------------------
            if iclass is InstructionClass.CUSTOM:
                impl = extensions[record.mnemonic]
                previous = prev_custom.get(record.mnemonic)
                toggle = _TOGGLE_FLOOR + (1.0 - _TOGGLE_FLOOR) * 0.5
                if self.data_dependent and previous is not None and operands:
                    widths = self._custom_widths.get(record.mnemonic, ())
                    densities = [
                        hamming_distance(p, c, width) / width
                        for p, c, width in zip(
                            previous, operands, widths or (32,) * len(operands)
                        )
                    ]
                    mean_density = sum(densities) / len(densities)
                    toggle = _TOGGLE_FLOOR + (1.0 - _TOGGLE_FLOOR) * mean_density
                prev_custom[record.mnemonic] = operands
                for instance in impl.instances:
                    active = len(impl.active_cycles[instance.name])
                    if not active:
                        continue
                    energy = self._instance_energy[instance.name] * toggle * active
                    charge(instance.name, energy, "custom_hw")
                # A multi-cycle custom instruction stalls issue but keeps
                # the decode latches, register-file ports and bypass logic
                # engaged every cycle it occupies the pipeline.
                extra_cycles = impl.latency - 1
                if extra_cycles:
                    charge(
                        "instruction_decoder",
                        blocks["instruction_decoder"].active_energy * decode_var * extra_cycles,
                        "base_core",
                    )
                    if port_uses:
                        charge(
                            "register_file",
                            blocks["register_file"].active_energy * port_factor * extra_cycles,
                            "base_core",
                        )
                if impl.accesses_gpr:
                    charge("tie_control", control.bypass_energy * impl.latency, "control")

            # ---- spurious operand-bus activation ----------------------------
            elif operands and self._taps:
                a = operands[0]
                b = operands[1] if len(operands) > 1 else 0
                bus_toggle = (
                    toggle_of(prev_bus[0], a) + toggle_of(prev_bus[1], b)
                ) / 2.0
                prev_bus = (a, b)
                for instance, nominal in self._taps:
                    charge(
                        instance.name,
                        nominal * SPURIOUS_INPUT_STAGE_WEIGHT * bus_toggle,
                        "custom_hw",
                    )

            # ---- events ------------------------------------------------------
            if record.icache_miss:
                charge("bus_interface", EVENT_ENERGY["icache_miss"], "events")
            if record.dcache_miss:
                charge("bus_interface", EVENT_ENERGY["dcache_miss"], "events")
            if record.uncached_fetch:
                charge("bus_interface", EVENT_ENERGY["uncached_fetch"], "events")
            if record.interlock:
                charge("pipeline_control", EVENT_ENERGY["interlock"], "events")

            # ---- per-cycle clock / pipeline / idle ----------------------------
            charge("pipeline_control", blocks["pipeline_control"].active_energy * cycles, "base_core")
            charge("clock_tree", blocks["clock_tree"].active_energy * cycles, "base_core")
            idle = (self._base_idle_per_cycle + self._custom_idle_per_cycle) * cycles
            charge("clock_tree", idle, "idle")

        total = sum(groups.values())
        return EnergyReport(
            program_name=result.program.name,
            processor_name=self.config.name,
            total=total,
            by_block=by_block,
            by_group=groups,
            cycles=result.stats.total_cycles,
            instructions=result.stats.total_instructions,
        )

    def estimate_program(
        self, program: Program, max_instructions: int = 5_000_000
    ) -> tuple[EnergyReport, SimulationResult]:
        """Full reference path: trace-collecting simulation + estimation."""
        result = Simulator(
            self.config, program, collect_trace=True, max_instructions=max_instructions
        ).run()
        return self.estimate(result), result


def reference_energy(
    config: ProcessorConfig,
    program: Program,
    max_instructions: int = 5_000_000,
) -> tuple[EnergyReport, SimulationResult]:
    """One-shot: generate the netlist and run the reference estimator."""
    estimator = RtlEnergyEstimator(generate_netlist(config))
    return estimator.estimate_program(program, max_instructions=max_instructions)
