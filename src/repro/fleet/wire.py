"""Router-side HTTP client: forward a request to one node, read the reply.

The router speaks to nodes over the same tiny HTTP/1.1 subset the nodes
serve (:mod:`repro.serve.http`), with stdlib asyncio streams and no
third-party dependencies.  One connection per forward keeps failure
semantics trivial — a dead node surfaces as a refused connect or a torn
read on *this* request only, which is exactly the signal the health
monitor wants.

All transport-level trouble (refused, reset, torn, timeout) is
normalized into :class:`NodeUnreachable` so the router's re-route loop
handles one exception type; HTTP-level errors (a node answering 4xx/5xx)
are *not* transport failures and are relayed to the client untouched.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass
from typing import Optional

#: Bound on a node response body the router will buffer (metrics included).
MAX_RESPONSE_BYTES = 8 * 1024 * 1024


class NodeUnreachable(Exception):
    """A node could not be reached or did not answer a whole response."""

    def __init__(self, address: str, reason: str) -> None:
        super().__init__(f"node {address} unreachable: {reason}")
        self.address = address
        self.reason = reason


@dataclass
class NodeResponse:
    """One complete HTTP response read back from a node."""

    status: int
    headers: dict[str, str]
    body: bytes

    def json(self) -> object:
        return json.loads(self.body)

    @property
    def content_type(self) -> str:
        return self.headers.get("content-type", "application/json")


def split_address(address: str) -> tuple[str, int]:
    """``"host:port"`` → ``(host, port)`` (IPv4/hostname form)."""
    host, sep, port = address.rpartition(":")
    if not sep or not host:
        raise ValueError(f"node address must look like host:port, got {address!r}")
    return host, int(port)


async def _read_response(
    reader: asyncio.StreamReader, address: str
) -> NodeResponse:
    status_line = await reader.readline()
    parts = status_line.decode("latin-1").split(None, 2)
    if len(parts) < 2 or not parts[1].isdigit():
        raise NodeUnreachable(address, f"malformed status line {status_line!r}")
    status = int(parts[1])
    headers: dict[str, str] = {}
    while True:
        line = await reader.readline()
        if line in (b"\r\n", b"\n", b""):
            break
        name, sep, value = line.decode("latin-1").partition(":")
        if sep:
            headers[name.strip().lower()] = value.strip()
    length_header = headers.get("content-length")
    if length_header is None:
        body = await reader.read(MAX_RESPONSE_BYTES)
    else:
        length = int(length_header)
        if length > MAX_RESPONSE_BYTES:
            raise NodeUnreachable(address, f"response of {length} bytes too large")
        body = await reader.readexactly(length)
    return NodeResponse(status=status, headers=headers, body=body)


async def node_request(
    address: str,
    method: str,
    path: str,
    body: Optional[bytes] = None,
    timeout: float = 30.0,
) -> NodeResponse:
    """One request/response round trip against ``host:port``.

    Raises :class:`NodeUnreachable` for every transport-shaped failure;
    returns whatever HTTP status the node answered otherwise.
    """
    host, port = split_address(address)
    writer: Optional[asyncio.StreamWriter] = None

    async def round_trip() -> NodeResponse:
        nonlocal writer
        reader, writer = await asyncio.open_connection(host, port)
        payload = body or b""
        head = (
            f"{method} {path} HTTP/1.1\r\n"
            f"Host: {address}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(payload)}\r\n"
            f"Connection: close\r\n\r\n"
        ).encode("latin-1")
        writer.write(head + payload)
        await writer.drain()
        return await _read_response(reader, address)

    try:
        # wait_for rather than asyncio.timeout(): the support floor is 3.10
        return await asyncio.wait_for(round_trip(), timeout)
    except NodeUnreachable:
        raise
    except (OSError, asyncio.IncompleteReadError, asyncio.TimeoutError, TimeoutError) as exc:
        raise NodeUnreachable(address, f"{type(exc).__name__}: {exc}") from exc
    finally:
        if writer is not None:
            writer.close()
            try:
                await writer.wait_closed()
            except Exception:  # noqa: BLE001 — close races are uninteresting
                pass


async def node_get_json(address: str, path: str, timeout: float = 10.0) -> object:
    """GET ``path`` from a node and decode the JSON body (or raise)."""
    response = await node_request(address, "GET", path, timeout=timeout)
    if response.status != 200:
        raise NodeUnreachable(
            address, f"GET {path} answered {response.status}"
        )
    try:
        return response.json()
    except json.JSONDecodeError as exc:
        raise NodeUnreachable(address, f"GET {path} returned bad JSON: {exc}")
