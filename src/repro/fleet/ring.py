"""Consistent-hash routing of content-addressed request keys.

The service's request key is already a sha256 content address, so the
natural shard function is a consistent-hash ring: each node owns
``vnodes`` pseudo-random points on a 64-bit circle, and a key is served
by the node owning the first point at or after the key's own position.

Why a ring and not ``hash(key) % N``: when a node joins or leaves, the
modulo scheme remaps almost *every* key (all cached state on every node
is suddenly cold), while the ring moves only the keys that landed on the
departed node's arcs — **~K/N of K keys**, bounded and local.  The
per-node shared-over-local cache tier (see
:class:`repro.dse.cache.TieredResultCache`) absorbs even those moves:
a remapped key's score is a shared-tier hit on its new owner.

Virtual nodes flatten the load: one point per node makes arc lengths
exponentially skewed (the largest arc is ~``ln N / N`` of the circle),
while ``vnodes`` points per node concentrate each node's total share
around ``1/N`` with relative spread ``~1/sqrt(vnodes)``.  The default
of 128 keeps every node within a few tens of percent of fair share.

Everything is deterministic: points are sha256 of ``"{node}#{replica}"``,
so every router instance — across processes, restarts, hosts — computes
the identical ring from the same membership.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Iterable, Iterator, Optional

DEFAULT_VNODES = 128


def _point(label: str) -> int:
    """A stable 64-bit ring position for an arbitrary label."""
    return int.from_bytes(
        hashlib.sha256(label.encode("utf-8")).digest()[:8], "big"
    )


class HashRing:
    """A consistent-hash ring over named nodes.

    ``node_for(key)`` is O(log(N * vnodes)); membership changes are
    O(vnodes log(N * vnodes)).  Node names are opaque strings (the fleet
    uses ``host:port`` addresses).
    """

    def __init__(self, nodes: Iterable[str] = (), vnodes: int = DEFAULT_VNODES) -> None:
        if vnodes < 1:
            raise ValueError(f"vnodes must be >= 1, got {vnodes}")
        self.vnodes = vnodes
        self._points: list[tuple[int, str]] = []  # sorted (position, node)
        self._nodes: set[str] = set()
        for node in nodes:
            self.add(node)

    # -- membership --------------------------------------------------------

    def add(self, node: str) -> bool:
        """Add a node (idempotent); True when membership changed."""
        if not node:
            raise ValueError("node name must be non-empty")
        if node in self._nodes:
            return False
        self._nodes.add(node)
        for replica in range(self.vnodes):
            bisect.insort(self._points, (_point(f"{node}#{replica}"), node))
        return True

    def remove(self, node: str) -> bool:
        """Remove a node (idempotent); True when membership changed."""
        if node not in self._nodes:
            return False
        self._nodes.discard(node)
        self._points = [entry for entry in self._points if entry[1] != node]
        return True

    def __contains__(self, node: str) -> bool:
        return node in self._nodes

    def __len__(self) -> int:
        return len(self._nodes)

    @property
    def nodes(self) -> tuple[str, ...]:
        return tuple(sorted(self._nodes))

    # -- lookup ------------------------------------------------------------

    def node_for(self, key: str) -> Optional[str]:
        """The node owning ``key``, or None on an empty ring."""
        if not self._points:
            return None
        index = bisect.bisect_right(self._points, (_point(key), "￿"))
        if index == len(self._points):
            index = 0  # wrap past the top of the circle
        return self._points[index][1]

    def preference(self, key: str) -> Iterator[str]:
        """Distinct nodes in ring order starting at ``key``'s owner.

        This is the re-route order: if the owner is unreachable the next
        distinct node clockwise takes the key, which is exactly where the
        key would live had the owner never joined — so retries agree with
        the rebalanced ring.
        """
        if not self._points:
            return
        start = bisect.bisect_right(self._points, (_point(key), "￿"))
        seen: set[str] = set()
        total = len(self._points)
        for offset in range(total):
            node = self._points[(start + offset) % total][1]
            if node not in seen:
                seen.add(node)
                yield node

    # -- introspection -----------------------------------------------------

    def assignments(self, keys: Iterable[str]) -> dict[str, str]:
        """key → owning node, for remap/balance analysis and tests."""
        table: dict[str, str] = {}
        for key in keys:
            node = self.node_for(key)
            if node is not None:
                table[key] = node
        return table

    def snapshot(self) -> dict:
        """The /healthz view: membership and ring geometry."""
        return {
            "nodes": list(self.nodes),
            "vnodes": self.vnodes,
            "points": len(self._points),
        }
