"""Node process lifecycle: spawn, discover, kill, drain.

:class:`FleetManager` turns ``repro serve --fleet N`` into N real
``python -m repro serve`` child processes — each a full single-node
service (own worker pool, own queue, own per-node disk cache) — plus
the shared cache directory they all tier under.  Ports are ephemeral:
each child binds port 0 and publishes the bound port through
``--port-file``, which the manager polls; there is no port-collision
window and no config file.

The manager is deliberately synchronous (plain ``subprocess`` +
polling): it runs *before* the router's event loop exists and its job —
fork children, learn addresses, forward signals — has no concurrency to
exploit.  Chaos tooling (the fleet bench and smoke) reuses
:meth:`kill` to SIGKILL a node mid-soak and :meth:`spawn_node` to grow
the fleet.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import time
from dataclasses import dataclass, field
from typing import Optional, Sequence


class FleetSpawnError(RuntimeError):
    """A node failed to come up (died early or never published a port)."""


@dataclass
class FleetNode:
    """One managed node process."""

    index: int
    process: subprocess.Popen
    port_file: str
    cache_dir: str
    log_path: str
    address: Optional[str] = None

    @property
    def alive(self) -> bool:
        return self.process.poll() is None


@dataclass
class FleetManager:
    """Spawn and supervise N `repro serve` node processes."""

    model_path: str
    workdir: str
    host: str = "127.0.0.1"
    workers: int = 0
    queue_limit: int = 64
    batch_max: int = 8
    node_args: Sequence[str] = ()
    python: str = sys.executable
    shared_cache: Optional[str] = None
    nodes: list[FleetNode] = field(default_factory=list)

    @property
    def shared_cache_dir(self) -> str:
        return self.shared_cache or os.path.join(self.workdir, "shared-cache")

    def _node_command(self, index: int, node: FleetNode) -> list[str]:
        return [
            self.python,
            "-m",
            "repro",
            "serve",
            self.model_path,
            "--host",
            self.host,
            "--port",
            "0",
            "--port-file",
            node.port_file,
            "--workers",
            str(self.workers),
            "--queue-limit",
            str(self.queue_limit),
            "--batch-max",
            str(self.batch_max),
            "--cache",
            node.cache_dir,
            "--shared-cache",
            self.shared_cache_dir,
            *self.node_args,
        ]

    def spawn_node(self, index: Optional[int] = None) -> FleetNode:
        """Fork one node process (does not wait for readiness)."""
        if index is None:
            index = len(self.nodes)
        os.makedirs(self.workdir, exist_ok=True)
        port_file = os.path.join(self.workdir, f"node{index}.port")
        if os.path.exists(port_file):
            os.unlink(port_file)  # never read a previous incarnation's port
        cache_dir = os.path.join(self.workdir, f"node{index}-cache")
        log_path = os.path.join(self.workdir, f"node{index}.log")
        node = FleetNode(
            index=index,
            process=None,  # type: ignore[arg-type] — set just below
            port_file=port_file,
            cache_dir=cache_dir,
            log_path=log_path,
        )
        env = dict(os.environ)
        # children must resolve the same `repro` package as the parent,
        # however the parent was launched (installed, src-layout, test run)
        package_root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        existing = env.get("PYTHONPATH")
        env["PYTHONPATH"] = (
            package_root if not existing else package_root + os.pathsep + existing
        )
        log = open(log_path, "ab")
        try:
            node.process = subprocess.Popen(
                self._node_command(index, node),
                stdout=log,
                stderr=subprocess.STDOUT,
                env=env,
                start_new_session=True,  # shield nodes from the parent's ^C
            )
        finally:
            log.close()
        self.nodes.append(node)
        return node

    def start(self, count: int) -> None:
        """Spawn ``count`` nodes (addresses become known in wait_ready)."""
        if count < 1:
            raise ValueError(f"fleet size must be >= 1, got {count}")
        for _ in range(count):
            self.spawn_node()

    def wait_ready(self, timeout: float = 60.0) -> list[str]:
        """Block until every node published its port; return addresses.

        A node that exits before publishing fails the whole fleet with
        its log tail — a half-up fleet routes requests into the void.
        """
        deadline = time.monotonic() + timeout
        for node in self.nodes:
            while node.address is None:
                if not node.alive:
                    raise FleetSpawnError(
                        f"node {node.index} exited with "
                        f"{node.process.returncode} before binding; log tail:\n"
                        f"{self._log_tail(node)}"
                    )
                port = self._read_port(node.port_file)
                if port is not None:
                    node.address = f"{self.host}:{port}"
                    break
                if time.monotonic() >= deadline:
                    raise FleetSpawnError(
                        f"node {node.index} did not publish a port within "
                        f"{timeout}s; log tail:\n{self._log_tail(node)}"
                    )
                time.sleep(0.05)
        return self.addresses()

    @staticmethod
    def _read_port(path: str) -> Optional[int]:
        try:
            with open(path, encoding="utf-8") as handle:
                text = handle.read().strip()
        except OSError:
            return None
        return int(text) if text.isdigit() else None

    def _log_tail(self, node: FleetNode, lines: int = 20) -> str:
        try:
            with open(node.log_path, encoding="utf-8", errors="replace") as handle:
                return "".join(handle.readlines()[-lines:])
        except OSError:
            return "<no log>"

    def addresses(self) -> list[str]:
        return [node.address for node in self.nodes if node.address is not None]

    def live_nodes(self) -> list[FleetNode]:
        return [node for node in self.nodes if node.alive]

    # -- chaos / teardown --------------------------------------------------

    def kill(self, index: int, sig: int = signal.SIGKILL) -> FleetNode:
        """Send ``sig`` to one node (SIGKILL = an abrupt machine loss)."""
        node = self.nodes[index]
        if node.alive:
            node.process.send_signal(sig)
        return node

    def stop(self, grace: float = 15.0) -> None:
        """SIGTERM everything (nodes drain in-flight work), then reap."""
        for node in self.nodes:
            if node.alive:
                node.process.send_signal(signal.SIGTERM)
        deadline = time.monotonic() + grace
        for node in self.nodes:
            remaining = max(0.1, deadline - time.monotonic())
            try:
                node.process.wait(timeout=remaining)
            except subprocess.TimeoutExpired:
                node.process.kill()
                node.process.wait()

    def __enter__(self) -> "FleetManager":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.stop()
