"""The fleet router: one front door over N estimation nodes.

:class:`FleetRouter` implements the same duck-typed service contract as
:class:`~repro.serve.server.EstimationService` (``start`` / ``stop`` /
``dispatch_http`` / ``chaos``), so the existing asyncio TCP transport
(:class:`~repro.serve.server.EstimationServer`) serves it unchanged —
the fleet adds a routing tier, not a second HTTP stack.

The request path::

    parse (validated at the edge) → routing_key → admission check
    against the owner's gossiped queue posture → consistent-hash owner
    → forward → on transport failure: breaker + re-route to the next
    distinct node clockwise → relay the node's response verbatim

Endpoints:

========================  ==================================================
``POST /estimate``        routed by workload content (see fleet.routing)
``POST /explore``         routed by body hash (any healthy node will do)
``GET  /healthz``         ring membership, per-node breakers, load table
``GET  /metrics``         router counters + per-node payloads + fleet sums
========================  ==================================================

Exactly-once, fleet-wide: a re-routed request may reach a node whose
predecessor already simulated the key, but estimates are content
addressed — the memo, per-node cache or shared tier answers, so the
client gets exactly one response and the fleet runs each distinct
workload's simulation once.
"""

from __future__ import annotations

import asyncio
import contextlib
import time
from typing import Optional, Sequence

from ..serve.api import ApiError, parse_estimate
from ..serve.http import (
    HttpProtocolError,
    HttpRequest,
    format_response,
    json_response,
    text_response,
)
from ..serve.metrics import LatencyWindow
from .admission import DEFAULT_SOFT_FRACTION, AdmissionController
from .health import (
    DEFAULT_NODE_COOLDOWN,
    DEFAULT_NODE_FAILURES,
    FleetHealthMonitor,
)
from .ring import DEFAULT_VNODES, HashRing
from .routing import routing_key
from .wire import NodeUnreachable, node_get_json, node_request

#: Simulation-tally fields summed into the fleet-aggregate view.
SIM_FIELDS = (
    "runs_started",
    "runs_finished",
    "instructions",
    "cycles",
    "icache_misses",
    "dcache_misses",
    "sim_seconds",
)

#: Node counters summed into the fleet-aggregate view (a subset with
#: fleet-wide meaning; per-node detail stays under ``nodes``).
FLEET_COUNTER_FIELDS = (
    "requests_total",
    "estimate_requests",
    "explore_requests",
    "responses_ok",
    "responses_error",
    "coalesced_total",
    "memo_hits_total",
    "disk_cache_hits_total",
    "duplicates_merged",
    "rejected_total",
    "timeouts_total",
    "batches_dispatched",
    "batched_requests",
    "failures_total",
    "pool_restarts_total",
    "worker_crashes_total",
)


class RouterMetrics:
    """The router's own counters (node counters live on the nodes)."""

    COUNTERS = (
        "requests_total",
        "estimate_requests",
        "explore_requests",
        "forwarded_total",
        "reroutes_total",
        "forward_failures_total",
        "shed_total",
        "no_nodes_total",
        "responses_ok",
        "responses_error",
        "health_polls_total",
    )

    def __init__(self) -> None:
        self.started_at = time.time()
        self.counters: dict[str, int] = {name: 0 for name in self.COUNTERS}
        self.forwards_by_node: dict[str, int] = {}
        self.latency = LatencyWindow()

    def incr(self, name: str, amount: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + amount

    def count_forward(self, node: str) -> None:
        self.counters["forwarded_total"] += 1
        self.forwards_by_node[node] = self.forwards_by_node.get(node, 0) + 1

    def snapshot(self) -> dict:
        return {
            "uptime_seconds": time.time() - self.started_at,
            "counters": dict(self.counters),
            "forwards_by_node": dict(sorted(self.forwards_by_node.items())),
            "latency": self.latency.snapshot(),
        }


class FleetRouter:
    """Routing + health + admission over a fixed fleet of node addresses."""

    #: :class:`EstimationServer` transport contract (the router never
    #: injects connection-level chaos itself; nodes own their chaos plans).
    chaos = None

    def __init__(
        self,
        nodes: Sequence[str],
        vnodes: int = DEFAULT_VNODES,
        forward_timeout: float = 120.0,
        health_interval: float = 2.0,
        node_failures: int = DEFAULT_NODE_FAILURES,
        node_cooldown: float = DEFAULT_NODE_COOLDOWN,
        soft_fraction: float = DEFAULT_SOFT_FRACTION,
    ) -> None:
        if not nodes:
            raise ValueError("a fleet needs at least one node address")
        self.ring = HashRing(vnodes=vnodes)
        self.health = FleetHealthMonitor(
            self.ring,
            nodes,
            failure_threshold=node_failures,
            cooldown=node_cooldown,
        )
        self.admission = AdmissionController(soft_fraction=soft_fraction)
        self.metrics = RouterMetrics()
        self.forward_timeout = forward_timeout
        self.health_interval = health_interval
        self._health_task: Optional[asyncio.Task] = None

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> None:
        if self._health_task is None and self.health_interval > 0:
            self._health_task = asyncio.create_task(
                self._health_loop(), name="repro-fleet-health"
            )

    async def stop(self) -> None:
        if self._health_task is not None:
            self._health_task.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await self._health_task
            self._health_task = None

    async def drain(self, grace: Optional[float] = None) -> bool:
        """The router holds no queued work; draining is instantaneous."""
        return True

    # -- health polling ----------------------------------------------------

    async def _health_loop(self) -> None:
        while True:
            await asyncio.sleep(self.health_interval)
            await self.poll_health()

    async def poll_health(self) -> None:
        """One sweep: probe every node's /healthz, refresh ring + gossip."""
        self.metrics.incr("health_polls_total")
        self.health.refresh()  # time-driven open → half-open rejoins
        nodes = self.health.nodes
        results = await asyncio.gather(
            *(
                node_get_json(node, "/healthz", timeout=self.health_interval + 3.0)
                for node in nodes
            ),
            return_exceptions=True,
        )
        for node, result in zip(nodes, results):
            if isinstance(result, BaseException):
                self.health.record_failure(node)
                self.admission.forget(node)
                continue
            self.health.record_success(node)
            if isinstance(result, dict):
                queue = result.get("queue", {})
                if isinstance(queue, dict) and "depth" in queue:
                    self.admission.observe_depth(
                        node,
                        int(queue.get("depth", 0)),
                        int(queue.get("limit", 0)),
                    )

    # -- HTTP dispatch -----------------------------------------------------

    async def dispatch_http(self, request: HttpRequest) -> bytes:
        keep_alive = request.keep_alive
        try:
            return await self._route(request)
        except HttpProtocolError as exc:
            return json_response(
                exc.status,
                {"error": "protocol", "message": str(exc)},
                keep_alive=False,
            )
        except ApiError as exc:
            self.metrics.incr("responses_error")
            return json_response(
                exc.status, exc.to_payload(), exc.headers, keep_alive=keep_alive
            )
        except Exception as exc:  # noqa: BLE001 — a request must never kill the loop
            self.metrics.incr("responses_error")
            return json_response(
                500,
                {"error": "internal", "message": f"{type(exc).__name__}: {exc}"},
                keep_alive=keep_alive,
            )

    async def _route(self, request: HttpRequest) -> bytes:
        path, method = request.path, request.method
        if path == "/healthz":
            if method != "GET":
                raise ApiError(405, "use GET /healthz", code="method_not_allowed")
            return json_response(
                200, self.health_payload(), keep_alive=request.keep_alive
            )
        if path == "/metrics":
            if method != "GET":
                raise ApiError(405, "use GET /metrics", code="method_not_allowed")
            payload = await self.metrics_payload()
            if request.query.get("format") == "prom":
                return text_response(
                    200, render_fleet_prometheus(payload), keep_alive=request.keep_alive
                )
            return json_response(200, payload, keep_alive=request.keep_alive)
        if path == "/estimate":
            if method != "POST":
                raise ApiError(405, "use POST /estimate", code="method_not_allowed")
            self.metrics.incr("requests_total")
            self.metrics.incr("estimate_requests")
            # validate at the edge: a malformed request is answered here,
            # never forwarded — and the parse yields the routing key
            req = parse_estimate(request.json())
            return await self._forward(
                request, "/estimate", routing_key(req), check_admission=True
            )
        if path == "/explore":
            if method != "POST":
                raise ApiError(405, "use POST /explore", code="method_not_allowed")
            self.metrics.incr("requests_total")
            self.metrics.incr("explore_requests")
            # explorations are not content-addressed at the router; a
            # stable body hash spreads them while keeping re-submissions
            # of the identical sweep on one node
            import hashlib

            key = hashlib.sha256(request.body).hexdigest()
            return await self._forward(
                request, "/explore", key, check_admission=True
            )
        raise ApiError(404, f"no such endpoint {path!r}", code="not_found")

    async def _forward(
        self,
        request: HttpRequest,
        path: str,
        key: str,
        check_admission: bool,
    ) -> bytes:
        began = time.perf_counter()
        self.health.refresh()
        candidates = list(self.ring.preference(key))
        if not candidates:
            self.metrics.incr("no_nodes_total")
            self.metrics.incr("responses_error")
            raise ApiError(
                503,
                "no reachable fleet nodes "
                f"({len(self.health.down_nodes)} down)",
                code="fleet_down",
                headers={"Retry-After": str(self.admission.retry_after())},
            )
        owner = candidates[0]
        if check_admission and not self.admission.admit(owner):
            self.metrics.incr("shed_total")
            self.metrics.incr("responses_error")
            raise ApiError(
                429,
                f"node {owner} is saturated "
                f"({self.admission.shed_fraction(owner):.0%} of new work shed)",
                code="fleet_overloaded",
                headers={"Retry-After": str(self.admission.retry_after())},
            )
        last_error: Optional[NodeUnreachable] = None
        for attempt, node in enumerate(candidates):
            try:
                response = await node_request(
                    node,
                    "POST",
                    path,
                    request.body,
                    timeout=self.forward_timeout,
                )
            except NodeUnreachable as exc:
                # breaker the node out of the ring and take the next
                # distinct node clockwise — where the key now lives
                self.metrics.incr("forward_failures_total")
                self.health.record_failure(node)
                self.admission.forget(node)
                last_error = exc
                continue
            self.health.record_success(node)
            self.admission.observe_gossip(node, response.headers)
            self.admission.record_completion()
            if attempt > 0:
                self.metrics.incr("reroutes_total", attempt)
            self.metrics.count_forward(node)
            self.metrics.latency.record(time.perf_counter() - began)
            self.metrics.incr(
                "responses_ok" if response.status < 400 else "responses_error"
            )
            return format_response(
                response.status,
                response.body,
                response.content_type,
                {"X-Repro-Node": node},
                keep_alive=request.keep_alive,
            )
        self.metrics.incr("no_nodes_total")
        self.metrics.incr("responses_error")
        raise ApiError(
            503,
            f"every candidate node unreachable for this key "
            f"(last: {last_error})",
            code="fleet_unreachable",
            headers={"Retry-After": str(self.admission.retry_after())},
        )

    # -- introspection -----------------------------------------------------

    def health_payload(self) -> dict:
        down = self.health.down_nodes
        if len(self.ring) == 0:
            status = "down"
        elif down:
            status = "degraded"
        else:
            status = "ok"
        return {
            "status": status,
            "role": "router",
            "uptime_seconds": time.time() - self.metrics.started_at,
            "fleet": {
                "nodes_configured": len(self.health.nodes),
                "nodes_routable": len(self.ring),
                "nodes_down": list(down),
            },
            "health": self.health.snapshot(),
            "admission": self.admission.snapshot(),
        }

    async def metrics_payload(self) -> dict:
        """Router counters, per-node payloads, and fleet-aggregate sums.

        Node metrics are fetched live and concurrently; a node that
        cannot answer contributes an ``error`` stanza instead of sums
        (so the aggregate under-counts during an outage rather than
        blocking the endpoint).
        """
        nodes = self.health.nodes
        results = await asyncio.gather(
            *(node_get_json(node, "/metrics", timeout=10.0) for node in nodes),
            return_exceptions=True,
        )
        node_payloads: dict[str, dict] = {}
        fleet_counters = {name: 0 for name in FLEET_COUNTER_FIELDS}
        fleet_sim = {name: 0 for name in SIM_FIELDS}
        nodes_reporting = 0
        for node, result in zip(nodes, results):
            if isinstance(result, BaseException) or not isinstance(result, dict):
                node_payloads[node] = {"error": str(result)}
                continue
            nodes_reporting += 1
            node_payloads[node] = result
            counters = result.get("counters", {})
            for name in FLEET_COUNTER_FIELDS:
                value = counters.get(name)
                if isinstance(value, (int, float)):
                    fleet_counters[name] += int(value)
            simulation = result.get("simulation", {})
            for name in SIM_FIELDS:
                value = simulation.get(name)
                if isinstance(value, (int, float)):
                    fleet_sim[name] += value
        return {
            "router": {
                **self.metrics.snapshot(),
                "health": self.health.snapshot(),
                "admission": self.admission.snapshot(),
            },
            "fleet": {
                "nodes_configured": len(nodes),
                "nodes_reporting": nodes_reporting,
                "counters": fleet_counters,
                "simulation": fleet_sim,
            },
            "nodes": node_payloads,
        }


def render_fleet_prometheus(payload: dict) -> str:
    """Flatten the router/fleet metrics payload to Prometheus text."""
    lines: list[str] = []

    def emit(name: str, value, labels: str = "") -> None:
        if isinstance(value, float):
            lines.append(f"repro_fleet_{name}{labels} {value:.6g}")
        else:
            lines.append(f"repro_fleet_{name}{labels} {value}")

    router = payload["router"]
    emit("router_uptime_seconds", router["uptime_seconds"])
    for name, value in sorted(router["counters"].items()):
        emit(f"router_{name}", value)
    for node, count in sorted(router.get("forwards_by_node", {}).items()):
        emit("router_forwards", count, f'{{node="{node}"}}')
    fleet = payload["fleet"]
    emit("nodes_configured", fleet["nodes_configured"])
    emit("nodes_reporting", fleet["nodes_reporting"])
    for name, value in sorted(fleet["counters"].items()):
        emit(name, value)
    for name, value in sorted(fleet["simulation"].items()):
        emit(f"sim_{name}", value)
    return "\n".join(lines) + "\n"


async def run_router(
    router: FleetRouter,
    host: str = "127.0.0.1",
    port: int = 8730,
    announce=print,
    port_file: Optional[str] = None,
) -> None:
    """Serve the router until SIGTERM/SIGINT (the ``repro route`` CLI)."""
    import signal
    from typing import cast

    from ..serve.server import EstimationServer, EstimationService, write_port_file

    # the router satisfies the transport's duck-typed service contract
    server = EstimationServer(cast(EstimationService, router), host, port)
    await server.start()
    if port_file is not None:
        write_port_file(port_file, server.port)
    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    for signum in (signal.SIGINT, signal.SIGTERM):
        with contextlib.suppress(NotImplementedError):  # non-unix loops
            loop.add_signal_handler(signum, stop.set)
    announce(
        f"repro route: listening on {server.address} "
        f"({len(router.health.nodes)} node(s): {', '.join(router.health.nodes)})"
    )
    try:
        await stop.wait()
    finally:
        announce("repro route: shutting down")
        await server.stop()
