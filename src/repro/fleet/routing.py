"""The router's shard key for estimate requests.

The *exact* dedup identity of a request — the
:func:`repro.serve.api.request_key` content address — requires building
the processor config and assembling the program, which is precisely the
work the router must **not** do per request.  Routing only needs a
cheaper invariant: *equal workloads hash equal*.  So the router keys on
the validated wire fields that determine the workload:

    (benchmark | program source + name's irrelevance, extensions,
     max_instructions, canonical operating point)

Two requests with the same routing key necessarily have the same
``request_key`` (the fields above determine config, program image and
budget), so consistent-hash routing sends every duplicate of a workload
to the same node, where the node's memo/coalescer merges them exactly.
The converse misses are harmless: a workload spelled differently (e.g.
the same assembly under a different inline ``name``) may route to a
different node, where the shared cache tier still dedupes the
simulation fleet-wide.

``name`` is deliberately **excluded** for inline programs — program
names are cosmetic in the dedup key, so they must not split routing
either.
"""

from __future__ import annotations

import hashlib

from ..serve.api import EstimateRequest

#: Version tag folded into every routing key (bump to reshuffle shards).
ROUTING_FORMAT = "repro-fleet-route/1"


def routing_key(request: EstimateRequest) -> str:
    """The consistent-hash shard key of one validated estimate request."""
    blob = "\n".join(
        [
            ROUTING_FORMAT,
            request.benchmark or "",
            request.source or "",
            ",".join(request.extensions),
            str(request.max_instructions),
            request.operating_point or "",
        ]
    )
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()
