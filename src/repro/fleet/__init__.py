"""``repro.fleet`` — the multi-node serving topology.

One router in front of N single-node estimation services (each a full
:mod:`repro.serve` stack) turns the estimation server into a fleet:

* :class:`HashRing` / :func:`routing_key` — consistent-hash sharding of
  the request's workload content across nodes, with bounded (~K/N)
  remapping when membership changes;
* :class:`TieredResultCache` (in :mod:`repro.dse.cache`) — each node's
  local cache layered over one cross-node shared tier, so any node can
  answer any key the fleet has ever computed;
* :class:`AdmissionController` — queue-depth gossip (response headers +
  healthz polls), weighted load shedding, computed ``Retry-After``;
* :class:`FleetHealthMonitor` — a per-node
  :class:`~repro.serve.supervise.CircuitBreaker` driving ring
  membership: dead nodes leave (their keys re-route), cooled-down nodes
  rejoin half-open and the next request is the probe;
* :class:`FleetRouter` / :func:`run_router` — the front door
  (``repro route --nodes ...``), reusing the single-node asyncio
  transport;
* :class:`FleetManager` / ``repro serve --fleet N`` — node subprocess
  lifecycle with port-file discovery.

See docs/SERVING.md ("Fleet topology") for the full story and the
failure-mode runbook.
"""

from .admission import AdmissionController, NodeLoad
from .health import FleetHealthMonitor
from .manager import FleetManager, FleetNode, FleetSpawnError
from .ring import HashRing
from .router import FleetRouter, RouterMetrics, run_router
from .routing import routing_key
from .wire import NodeResponse, NodeUnreachable, node_get_json, node_request

__all__ = [
    "AdmissionController",
    "FleetHealthMonitor",
    "FleetManager",
    "FleetNode",
    "FleetRouter",
    "FleetSpawnError",
    "HashRing",
    "NodeLoad",
    "NodeResponse",
    "NodeUnreachable",
    "RouterMetrics",
    "node_get_json",
    "node_request",
    "routing_key",
    "run_router",
]
