"""Node health tracking: circuit breakers driving ring membership.

Each node gets its own :class:`~repro.serve.supervise.CircuitBreaker`
(the same primitive that guards the in-process worker pool — PR 6's
supervision machinery reused one level up).  The monitor keeps the
routing ring consistent with breaker state:

* **closed / half-open** → the node owns its arcs.  Half-open is
  deliberately routable: after the cooldown the next request whose key
  lands on the node *is* the probe, and its outcome closes or re-opens
  the breaker — no separate probe traffic needed.
* **open** → the node is removed from the ring, so its keys remap to
  the next node clockwise (~K/N keys, see :mod:`repro.fleet.ring`) and
  no client waits on a dead socket.

Failures are recorded by the router on transport errors (refused,
reset, torn read, timeout) and by the background health poll; any
success — forwarded request or healthz poll — closes the breaker and
restores membership immediately.
"""

from __future__ import annotations

import time
from typing import Callable, Iterable

from ..serve.supervise import BREAKER_OPEN, CircuitBreaker
from .ring import HashRing

#: Fleet default: open a node's breaker after this many consecutive
#: transport failures.  Lower than the pool breaker's 5 — a dead process
#: fails every probe, and each failure costs a client-visible re-route.
DEFAULT_NODE_FAILURES = 3

#: Fleet default cooldown before a down node is probed again (seconds).
DEFAULT_NODE_COOLDOWN = 5.0


class FleetHealthMonitor:
    """Per-node breakers, synchronized into a :class:`HashRing`."""

    def __init__(
        self,
        ring: HashRing,
        nodes: Iterable[str] = (),
        failure_threshold: int = DEFAULT_NODE_FAILURES,
        cooldown: float = DEFAULT_NODE_COOLDOWN,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.ring = ring
        self.failure_threshold = failure_threshold
        self.cooldown = cooldown
        self._clock = clock
        self._breakers: dict[str, CircuitBreaker] = {}
        #: ring-membership transitions (monotonic counters)
        self.nodes_removed_total = 0
        self.nodes_restored_total = 0
        for node in nodes:
            self.add_node(node)

    def add_node(self, node: str) -> None:
        """Track a node (idempotent); a fresh node starts routable."""
        if node not in self._breakers:
            self._breakers[node] = CircuitBreaker(
                failure_threshold=self.failure_threshold,
                cooldown=self.cooldown,
                clock=self._clock,
            )
        self._sync(node)

    @property
    def nodes(self) -> tuple[str, ...]:
        return tuple(sorted(self._breakers))

    def breaker_for(self, node: str) -> CircuitBreaker:
        return self._breakers[node]

    # -- signal intake -----------------------------------------------------

    def record_failure(self, node: str) -> bool:
        """One transport failure against ``node``; True if it left the ring."""
        breaker = self._breakers.get(node)
        if breaker is None:
            return False
        breaker.record_failure()
        return self._sync(node) == "removed"

    def record_success(self, node: str) -> bool:
        """One successful exchange with ``node``; True if it rejoined."""
        breaker = self._breakers.get(node)
        if breaker is None:
            return False
        breaker.record_success()
        return self._sync(node) == "restored"

    # -- ring synchronization ----------------------------------------------

    def _sync(self, node: str) -> str:
        """Align one node's ring membership with its breaker state."""
        routable = self._breakers[node].state != BREAKER_OPEN
        if routable:
            if self.ring.add(node):
                self.nodes_restored_total += 1
                return "restored"
        else:
            if self.ring.remove(node):
                self.nodes_removed_total += 1
                return "removed"
        return "unchanged"

    def refresh(self) -> None:
        """Re-sync every node (open → half-open transitions are time-driven,
        so cooled-down nodes rejoin the ring here even with no traffic)."""
        for node in self._breakers:
            self._sync(node)

    def routable(self, node: str) -> bool:
        breaker = self._breakers.get(node)
        return breaker is not None and breaker.state != BREAKER_OPEN

    @property
    def down_nodes(self) -> tuple[str, ...]:
        return tuple(
            sorted(
                node
                for node, breaker in self._breakers.items()
                if breaker.state == BREAKER_OPEN
            )
        )

    def snapshot(self) -> dict:
        return {
            "nodes": {
                node: breaker.snapshot()
                for node, breaker in sorted(self._breakers.items())
            },
            "ring": self.ring.snapshot(),
            "nodes_removed_total": self.nodes_removed_total,
            "nodes_restored_total": self.nodes_restored_total,
        }
