"""Fleet admission control: gossip-fed, weighted, deterministic shedding.

The router learns each node's queue posture two ways, both free:

* **passive gossip** — every node stamps ``X-Repro-Queue-Depth`` /
  ``X-Repro-Queue-Limit`` on every response, so the hottest nodes are
  also the most-recently observed;
* **active polls** — the background health loop reads ``/healthz``,
  refreshing nodes that happen to get no traffic.

Admission is decided *before* forwarding, against the target node's
last-known fill fraction:

* below ``soft_fraction`` of the queue limit → admit;
* at or above the limit → shed (the node would answer 429 anyway;
  shedding at the router saves the round trip);
* in between → shed a *fraction* of traffic that ramps linearly from 0
  at the soft threshold to 1 at the limit.  The fraction is enforced
  with an error-diffusion accumulator instead of a random draw, so the
  shed rate is exact and every run is reproducible.

Shed responses carry a computed ``Retry-After``: observed fleet-wide
queue depth over the observed fleet-wide drain rate (an exponentially
decayed completions-per-second estimate), the same arithmetic each node
applies locally (:mod:`repro.serve.admission`).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Mapping, Optional

from ..serve.admission import DrainRateEstimator, retry_after_seconds

#: Header names the nodes stamp on every response (lowercased on read).
QUEUE_DEPTH_HEADER = "x-repro-queue-depth"
QUEUE_LIMIT_HEADER = "x-repro-queue-limit"

#: Start shedding a ramping fraction of traffic above this queue fill.
DEFAULT_SOFT_FRACTION = 0.7

#: Forget a node's load report after this long without a fresher one.
DEFAULT_STALE_AFTER = 10.0


@dataclass
class NodeLoad:
    """One node's last-reported queue posture."""

    depth: int
    limit: int
    observed_at: float

    @property
    def fraction(self) -> float:
        return self.depth / self.limit if self.limit > 0 else 0.0


class AdmissionController:
    """Decide, per forward, whether the target node should take more work."""

    def __init__(
        self,
        soft_fraction: float = DEFAULT_SOFT_FRACTION,
        stale_after: float = DEFAULT_STALE_AFTER,
        drain_tau: float = 10.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if not 0.0 < soft_fraction <= 1.0:
            raise ValueError(
                f"soft_fraction must be in (0, 1], got {soft_fraction}"
            )
        self.soft_fraction = soft_fraction
        self.stale_after = stale_after
        self._clock = clock
        self._loads: dict[str, NodeLoad] = {}
        # error-diffusion state: fractional shed decisions accumulate here
        # and shed one request each time the debt crosses a whole unit
        self._shed_debt = 0.0
        self.drain = DrainRateEstimator(tau=drain_tau, clock=clock)
        self.admitted_total = 0
        self.shed_total = 0

    # -- gossip intake -----------------------------------------------------

    def observe_gossip(self, node: str, headers: Mapping[str, str]) -> None:
        """Fold one response's queue-posture headers into the table."""
        depth = headers.get(QUEUE_DEPTH_HEADER)
        limit = headers.get(QUEUE_LIMIT_HEADER)
        if depth is None or limit is None:
            return
        try:
            self._loads[node] = NodeLoad(
                depth=int(depth), limit=int(limit), observed_at=self._clock()
            )
        except ValueError:
            pass  # a garbled header is not worth failing a request over

    def observe_depth(self, node: str, depth: int, limit: int) -> None:
        """Fold an actively polled queue posture (healthz) into the table."""
        self._loads[node] = NodeLoad(
            depth=depth, limit=limit, observed_at=self._clock()
        )

    def forget(self, node: str) -> None:
        """Drop a node's report (it left the fleet or went dark)."""
        self._loads.pop(node, None)

    def record_completion(self, n: int = 1) -> None:
        """One (or ``n``) requests finished fleet-wide: a drain event."""
        self.drain.record(n)

    # -- the admission decision --------------------------------------------

    def _current_load(self, node: str) -> Optional[NodeLoad]:
        load = self._loads.get(node)
        if load is None:
            return None
        if self._clock() - load.observed_at > self.stale_after:
            return None  # stale gossip must not shed traffic forever
        return load

    def shed_fraction(self, node: str) -> float:
        """How much of ``node``'s new traffic should be shed right now."""
        load = self._current_load(node)
        if load is None:
            return 0.0
        fraction = load.fraction
        if fraction >= 1.0:
            return 1.0
        if fraction <= self.soft_fraction:
            return 0.0
        return (fraction - self.soft_fraction) / (1.0 - self.soft_fraction)

    def admit(self, node: str) -> bool:
        """Whether to forward one more request to ``node``.

        A full node sheds unconditionally; a node in the soft band sheds
        its ramp fraction exactly, via error diffusion.
        """
        fraction = self.shed_fraction(node)
        if fraction >= 1.0:
            self.shed_total += 1
            return False
        if fraction > 0.0:
            self._shed_debt += fraction
            if self._shed_debt >= 1.0:
                self._shed_debt -= 1.0
                self.shed_total += 1
                return False
        self.admitted_total += 1
        return True

    def retry_after(self) -> int:
        """Seconds a shed client should back off: fleet depth over drain."""
        depth = sum(
            load.depth
            for node in self._loads
            if (load := self._current_load(node)) is not None
        )
        return retry_after_seconds(max(1, depth), self.drain.rate)

    # -- introspection -----------------------------------------------------

    def snapshot(self) -> dict:
        now = self._clock()
        return {
            "soft_fraction": self.soft_fraction,
            "admitted_total": self.admitted_total,
            "shed_total": self.shed_total,
            "drain": self.drain.snapshot(),
            "retry_after_s": self.retry_after(),
            "nodes": {
                node: {
                    "depth": load.depth,
                    "limit": load.limit,
                    "fraction": round(load.fraction, 4),
                    "age_seconds": round(now - load.observed_at, 3),
                    "stale": (now - load.observed_at) > self.stale_after,
                }
                for node, load in sorted(self._loads.items())
            },
        }
