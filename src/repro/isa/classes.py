"""Instruction classes used by the energy macro-model.

The paper clusters the base-processor ISA into six energy classes
(arithmetic, load, store, jump, branch-taken and branch-untaken); the
macro-model's instruction-level variables count the *cycles* spent in each
class.  Custom (TIE-substitute) instructions form their own class: their
energy is captured by the structural variables plus the side-effect
variable ``N_sd`` rather than by a per-class coefficient.
"""

from __future__ import annotations

import enum


class InstructionClass(enum.Enum):
    """Energy class of an instruction, after the paper's clustering.

    ``BRANCH`` is a *static* class: a branch instruction is resolved
    dynamically into :attr:`BRANCH_TAKEN` or :attr:`BRANCH_UNTAKEN` by the
    instruction-set simulator, which is where cycle counts are attributed.
    """

    ARITH = "arith"
    LOAD = "load"
    STORE = "store"
    JUMP = "jump"
    BRANCH = "branch"
    BRANCH_TAKEN = "branch_taken"
    BRANCH_UNTAKEN = "branch_untaken"
    CUSTOM = "custom"
    SYSTEM = "system"

    @property
    def is_dynamic(self) -> bool:
        """True for classes that only exist in dynamic traces, not the ISA."""
        return self in (InstructionClass.BRANCH_TAKEN, InstructionClass.BRANCH_UNTAKEN)


#: The six base-ISA classes that own an instruction-level macro-model
#: variable, in the order used by the macro-model template (Eq. 3).
BASE_ENERGY_CLASSES = (
    InstructionClass.ARITH,
    InstructionClass.LOAD,
    InstructionClass.STORE,
    InstructionClass.JUMP,
    InstructionClass.BRANCH_TAKEN,
    InstructionClass.BRANCH_UNTAKEN,
)
