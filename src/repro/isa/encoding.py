"""Fixed-width 32-bit binary encoding of ``xtcore`` instructions.

The macro-model itself never needs binary encodings (it consumes traces),
but the memory image fed to the instruction cache, the disassembler, and
round-trip testing all do.  The encoding is deliberately simple: an 8-bit
opcode (the instruction's stable index in its :class:`InstructionSet`)
followed by format-dependent fields.

Field layout (bit ranges, msb:lsb)::

    all      opcode  31:24
    R3       rd 23:18   rs 17:12   rt 11:6
    R2       rd 23:18   rs 17:12
    RS1                 rs 17:12
    I/SHI    rd 23:18   rs 17:12   imm12 11:0   (signed for I, 0..31 for SHI)
    LI       rd 23:18              imm12 11:0   (signed)
    UI       rd 23:18   imm18 17:0
    M        rt 23:18   rs 17:12   imm12 11:0   (signed byte offset)
    B2       rs 23:18   rt 17:12   off12 11:0   (signed word offset)
    B1       rs 23:18              off12 11:0
    BI       rs 23:18   imm6 17:12 off12 11:0   (imm6 signed except bbs/bbc)
    J                   off24 23:0               (signed word offset)
    N        (zero)

Branch and jump offsets are encoded relative to the instruction's own
address in units of instruction words; decoded :class:`Instruction`
objects always carry *absolute* byte targets in ``imm``.
"""

from __future__ import annotations

from .bits import fits_signed, fits_unsigned, to_signed, to_unsigned
from .instructions import (
    INSTRUCTION_BYTES,
    Instruction,
    InstructionDef,
    InstructionSet,
)


class EncodingError(ValueError):
    """An operand does not fit its encoding field."""


#: BI-format instructions whose 6-bit immediate is unsigned (bit indices).
_UNSIGNED_IMM6 = frozenset({"bbs", "bbc"})


def _check_reg(mnemonic: str, name: str, value: int | None) -> int:
    if value is None:
        raise EncodingError(f"{mnemonic}: missing register operand {name}")
    if not 0 <= value < 64:
        raise EncodingError(f"{mnemonic}: register a{value} out of range for {name}")
    return value


def _word_offset(mnemonic: str, target: int, addr: int, bits: int) -> int:
    delta = target - addr
    if delta % INSTRUCTION_BYTES:
        raise EncodingError(f"{mnemonic}: target {target:#x} not word-aligned relative to {addr:#x}")
    words = delta // INSTRUCTION_BYTES
    if not fits_signed(words, bits):
        raise EncodingError(f"{mnemonic}: branch/jump offset {words} words exceeds {bits}-bit range")
    return to_unsigned(words, bits)


def encode(definition: InstructionDef, ins: Instruction, isa: InstructionSet) -> int:
    """Encode one decoded instruction into its 32-bit word."""
    opcode = isa.opcode(ins.mnemonic)
    word = opcode << 24
    fmt = definition.fmt
    mnemonic = ins.mnemonic

    if fmt == "R3":
        word |= _check_reg(mnemonic, "rd", ins.rd) << 18
        word |= _check_reg(mnemonic, "rs", ins.rs) << 12
        word |= _check_reg(mnemonic, "rt", ins.rt) << 6
    elif fmt == "R2":
        word |= _check_reg(mnemonic, "rd", ins.rd) << 18
        word |= _check_reg(mnemonic, "rs", ins.rs) << 12
    elif fmt == "RS1":
        word |= _check_reg(mnemonic, "rs", ins.rs) << 12
    elif fmt == "RD1":
        word |= _check_reg(mnemonic, "rd", ins.rd) << 18
    elif fmt in ("I", "IU", "SHI"):
        word |= _check_reg(mnemonic, "rd", ins.rd) << 18
        word |= _check_reg(mnemonic, "rs", ins.rs) << 12
        imm = ins.imm if ins.imm is not None else 0
        if fmt == "SHI":
            if not 0 <= imm <= 31:
                raise EncodingError(f"{mnemonic}: shift amount {imm} outside 0..31")
            word |= imm
        elif fmt == "IU":
            if not fits_unsigned(imm, 12):
                raise EncodingError(f"{mnemonic}: immediate {imm} outside unsigned 12-bit range")
            word |= imm
        else:
            if not fits_signed(imm, 12):
                raise EncodingError(f"{mnemonic}: immediate {imm} outside signed 12-bit range")
            word |= to_unsigned(imm, 12)
    elif fmt == "LI":
        word |= _check_reg(mnemonic, "rd", ins.rd) << 18
        imm = ins.imm if ins.imm is not None else 0
        if not fits_signed(imm, 12):
            raise EncodingError(f"{mnemonic}: immediate {imm} outside signed 12-bit range")
        word |= to_unsigned(imm, 12)
    elif fmt == "UI":
        word |= _check_reg(mnemonic, "rd", ins.rd) << 18
        imm = ins.imm if ins.imm is not None else 0
        if not fits_unsigned(imm, 18):
            raise EncodingError(f"{mnemonic}: immediate {imm} outside unsigned 18-bit range")
        word |= imm
    elif fmt == "M":
        word |= _check_reg(mnemonic, "rt", ins.rt) << 18
        word |= _check_reg(mnemonic, "rs", ins.rs) << 12
        imm = ins.imm if ins.imm is not None else 0
        if not fits_signed(imm, 12):
            raise EncodingError(f"{mnemonic}: memory offset {imm} outside signed 12-bit range")
        word |= to_unsigned(imm, 12)
    elif fmt == "B2":
        word |= _check_reg(mnemonic, "rs", ins.rs) << 18
        word |= _check_reg(mnemonic, "rt", ins.rt) << 12
        word |= _word_offset(mnemonic, ins.imm or 0, ins.addr, 12)
    elif fmt == "B1":
        word |= _check_reg(mnemonic, "rs", ins.rs) << 18
        word |= _word_offset(mnemonic, ins.imm or 0, ins.addr, 12)
    elif fmt == "BI":
        word |= _check_reg(mnemonic, "rs", ins.rs) << 18
        imm6 = ins.rt if ins.rt is not None else 0
        if mnemonic in _UNSIGNED_IMM6:
            if not fits_unsigned(imm6, 6):
                raise EncodingError(f"{mnemonic}: bit index {imm6} outside 0..63")
            word |= imm6 << 12
        else:
            if not fits_signed(imm6, 6):
                raise EncodingError(f"{mnemonic}: immediate {imm6} outside signed 6-bit range")
            word |= to_unsigned(imm6, 6) << 12
        word |= _word_offset(mnemonic, ins.imm or 0, ins.addr, 12)
    elif fmt == "J":
        word |= _word_offset(mnemonic, ins.imm or 0, ins.addr, 24)
    elif fmt == "N":
        pass
    else:  # pragma: no cover - formats are validated at definition time
        raise EncodingError(f"{mnemonic}: unknown format {fmt}")
    return word


def decode(word: int, addr: int, isa: InstructionSet) -> Instruction:
    """Decode a 32-bit word at ``addr`` back into an :class:`Instruction`."""
    opcode = (word >> 24) & 0xFF
    mnemonic = isa.mnemonic_for(opcode)
    definition = isa.lookup(mnemonic)
    fmt = definition.fmt

    rd = rs = rt = imm = None
    if fmt == "R3":
        rd, rs, rt = (word >> 18) & 63, (word >> 12) & 63, (word >> 6) & 63
    elif fmt == "R2":
        rd, rs = (word >> 18) & 63, (word >> 12) & 63
    elif fmt == "RS1":
        rs = (word >> 12) & 63
    elif fmt == "RD1":
        rd = (word >> 18) & 63
    elif fmt == "I":
        rd, rs = (word >> 18) & 63, (word >> 12) & 63
        imm = to_signed(word & 0xFFF, 12)
    elif fmt in ("IU", "SHI"):
        rd, rs = (word >> 18) & 63, (word >> 12) & 63
        imm = word & 0xFFF
    elif fmt == "LI":
        rd = (word >> 18) & 63
        imm = to_signed(word & 0xFFF, 12)
    elif fmt == "UI":
        rd = (word >> 18) & 63
        imm = word & 0x3FFFF
    elif fmt == "M":
        rt, rs = (word >> 18) & 63, (word >> 12) & 63
        imm = to_signed(word & 0xFFF, 12)
    elif fmt == "B2":
        rs, rt = (word >> 18) & 63, (word >> 12) & 63
        imm = addr + to_signed(word & 0xFFF, 12) * INSTRUCTION_BYTES
    elif fmt == "B1":
        rs = (word >> 18) & 63
        imm = addr + to_signed(word & 0xFFF, 12) * INSTRUCTION_BYTES
    elif fmt == "BI":
        rs = (word >> 18) & 63
        raw6 = (word >> 12) & 63
        rt = raw6 if mnemonic in _UNSIGNED_IMM6 else to_signed(raw6, 6)
        imm = addr + to_signed(word & 0xFFF, 12) * INSTRUCTION_BYTES
    elif fmt == "J":
        imm = addr + to_signed(word & 0xFFFFFF, 24) * INSTRUCTION_BYTES
    elif fmt == "N":
        pass
    else:  # pragma: no cover
        raise EncodingError(f"{mnemonic}: unknown format {fmt}")

    return Instruction(mnemonic=mnemonic, rd=rd, rs=rs, rt=rt, imm=imm, addr=addr)
