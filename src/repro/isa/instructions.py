"""The base instruction set of the extensible core (Xtensa substitute).

The paper's target is Tensilica's Xtensa: a 32-bit, five-stage, in-order
RISC whose base ISA defines roughly 80 instructions, extended per
application with custom (TIE) instructions.  This module defines an open
ISA of the same shape — ``xtcore`` — with executable semantics for every
instruction.  The energy macro-model never looks at individual opcodes:
it only sees the class-level cycle counts defined in
:mod:`repro.isa.classes`, which is exactly why clustering the ISA as the
paper does is sufficient for estimation.

Instruction formats
-------------------

========  ============================  ==================================
format    assembly operands             fields used
========  ============================  ==================================
``R3``    ``rd, rs, rt``                three registers
``R2``    ``rd, rs``                    two registers
``RS1``   ``rs``                        one source register
``I``     ``rd, rs, imm``               two registers + 12-bit signed imm
``SHI``   ``rd, rs, imm``               shift-by-immediate (0..31)
``LI``    ``rd, imm``                   12-bit signed immediate load
``UI``    ``rd, imm``                   18-bit upper-immediate load
``M``     ``rt, rs, imm``               memory: ``rt`` data, ``rs`` base
``B2``    ``rs, rt, target``            compare-two-registers branch
``B1``    ``rs, target``                compare-with-zero branch
``BI``    ``rs, imm, target``           compare-with-immediate branch
``J``     ``target``                    24-bit jump/call offset
``N``     (none)                        no operands
========  ============================  ==================================

Branch/jump ``target`` operands are program-counter labels in assembly and
absolute byte addresses in decoded form (the assembler resolves them and
the encoder re-relativizes them).
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Iterable, Mapping, Optional, Protocol, Sequence

from .bits import (
    WORD_BITS,
    byte_swap,
    count_leading_zeros,
    count_trailing_zeros,
    popcount,
    rotate_left,
    rotate_right,
    sign_extend,
    to_signed,
    to_unsigned,
    truncate,
)
from .classes import InstructionClass

#: Number of general-purpose registers (the paper's Xtensa configuration
#: uses a generic register file of 64 32-bit registers).
NUM_REGISTERS = 64

#: Architectural link register (written by ``call``/``callx``).
LINK_REGISTER = 0

#: Conventional stack pointer (assembler convention only, not enforced).
STACK_REGISTER = 1

#: Byte size of every instruction (fixed-width encoding).
INSTRUCTION_BYTES = 4


class ExecContext(Protocol):
    """The machine-state interface instruction semantics execute against.

    Implemented by the instruction-set simulator; a minimal in-memory
    implementation is provided for unit tests in :mod:`repro.isa.state`.
    """

    pc: int

    def get(self, reg: int) -> int:
        """Read a general-purpose register (unsigned 32-bit value)."""

    def set(self, reg: int, value: int) -> None:
        """Write a general-purpose register (value truncated to 32 bits)."""

    def load(self, addr: int, size: int, signed: bool) -> int:
        """Load ``size`` bytes from memory, optionally sign-extending."""

    def store(self, addr: int, value: int, size: int) -> None:
        """Store the low ``size`` bytes of ``value`` to memory."""

    def halt(self) -> None:
        """Request simulation stop after the current instruction."""


@dataclasses.dataclass(frozen=True)
class Instruction:
    """A decoded (or assembled) instruction instance.

    Fields not used by the instruction's format are ``None``.  ``imm``
    holds immediates *and* resolved absolute branch/jump targets.
    """

    mnemonic: str
    rd: Optional[int] = None
    rs: Optional[int] = None
    rt: Optional[int] = None
    imm: Optional[int] = None
    addr: int = 0

    def __str__(self) -> str:
        parts: list[str] = []
        if self.rd is not None:
            parts.append(f"a{self.rd}")
        if self.rs is not None:
            parts.append(f"a{self.rs}")
        if self.rt is not None:
            parts.append(f"a{self.rt}")
        if self.imm is not None:
            parts.append(str(self.imm))
        joined = ", ".join(parts)
        return f"{self.mnemonic} {joined}".strip()


Semantics = Callable[[ExecContext, Instruction], Optional[int]]

#: operand-field layout per format: which of (rd, rs, rt, imm) are used,
#: in assembly-operand order.
FORMAT_FIELDS: Mapping[str, tuple[str, ...]] = {
    "R3": ("rd", "rs", "rt"),
    "R2": ("rd", "rs"),
    "RS1": ("rs",),
    "RD1": ("rd",),
    "I": ("rd", "rs", "imm"),
    "IU": ("rd", "rs", "imm"),
    "SHI": ("rd", "rs", "imm"),
    "LI": ("rd", "imm"),
    "UI": ("rd", "imm"),
    "M": ("rt", "rs", "imm"),
    "B2": ("rs", "rt", "imm"),
    "B1": ("rs", "imm"),
    "BI": ("rs", "imm2", "imm"),
    "J": ("imm",),
    "N": (),
}

#: formats whose ``imm`` operand is a code label/address.
BRANCHING_FORMATS = frozenset({"B2", "B1", "BI", "J"})


@dataclasses.dataclass(frozen=True)
class InstructionDef:
    """Static definition of one instruction: class, timing and semantics.

    ``latency`` is the number of issue cycles the instruction occupies in
    the five-stage pipeline under ideal conditions (no stalls or misses);
    the simulator adds stall and penalty cycles on top.  ``imm2`` (used by
    the ``BI`` format) rides in the high bits of the ``imm`` field during
    assembly and is folded into :attr:`Instruction.rt` at decode time —
    see :mod:`repro.asm.assembler`.
    """

    mnemonic: str
    fmt: str
    iclass: InstructionClass
    semantics: Semantics
    latency: int = 1
    description: str = ""
    extra_writes: tuple[int, ...] = ()

    def __post_init__(self) -> None:
        if self.fmt not in FORMAT_FIELDS:
            raise ValueError(f"unknown instruction format {self.fmt!r}")
        if self.latency < 1:
            raise ValueError(f"{self.mnemonic}: latency must be >= 1")

    @property
    def is_branch(self) -> bool:
        return self.iclass is InstructionClass.BRANCH

    @property
    def is_control_flow(self) -> bool:
        return self.iclass in (InstructionClass.BRANCH, InstructionClass.JUMP)

    def source_registers(self, ins: Instruction) -> tuple[int, ...]:
        """Registers read by this instruction instance."""
        if self.fmt in ("R3", "B2"):
            return (ins.rs, ins.rt)  # type: ignore[return-value]
        if self.fmt in ("R2", "I", "IU", "SHI", "B1", "BI", "RS1"):
            return (ins.rs,)  # type: ignore[return-value]
        if self.fmt == "M":
            if self.iclass is InstructionClass.STORE:
                return (ins.rs, ins.rt)  # type: ignore[return-value]
            return (ins.rs,)  # type: ignore[return-value]
        return ()

    def dest_registers(self, ins: Instruction) -> tuple[int, ...]:
        """Registers written by this instruction instance."""
        dests: list[int] = []
        if self.fmt in ("R3", "R2", "RD1", "I", "IU", "SHI", "LI", "UI"):
            dests.append(ins.rd)  # type: ignore[arg-type]
        elif self.fmt == "M" and self.iclass is InstructionClass.LOAD:
            dests.append(ins.rt)  # type: ignore[arg-type]
        dests.extend(self.extra_writes)
        return tuple(dests)

    def resolve_timing(
        self, branch_taken_penalty: int
    ) -> tuple[InstructionClass, InstructionClass, int, int]:
        """Resolve retire class and issue cycles for both control outcomes.

        Returns ``(class_untaken, class_taken, issue_untaken, issue_taken)``
        where "taken" means the semantics redirected the pc.  BRANCH splits
        into the taken/untaken energy classes with the flush penalty on the
        taken side; JUMP always redirects and always pays the penalty; every
        other class is outcome-independent.  This is the whole per-retire
        class/latency decision tree, evaluated once at program-compile time
        instead of per retired instruction.
        """
        if self.iclass is InstructionClass.BRANCH:
            return (
                InstructionClass.BRANCH_UNTAKEN,
                InstructionClass.BRANCH_TAKEN,
                self.latency,
                self.latency + branch_taken_penalty,
            )
        if self.iclass is InstructionClass.JUMP:
            latency = self.latency + branch_taken_penalty
            return (self.iclass, self.iclass, latency, latency)
        return (self.iclass, self.iclass, self.latency, self.latency)


# ---------------------------------------------------------------------------
# Semantics factories.  Each factory returns a Semantics callable; keeping
# them tiny and table-driven keeps the 80+ definitions below readable.
# ---------------------------------------------------------------------------


def _alu3(op: Callable[[int, int], int]) -> Semantics:
    """rd <- op(rs, rt) over unsigned 32-bit values."""

    def semantics(ctx: ExecContext, ins: Instruction) -> None:
        ctx.set(ins.rd, truncate(op(ctx.get(ins.rs), ctx.get(ins.rt))))

    return semantics


def _alu3_signed(op: Callable[[int, int], int]) -> Semantics:
    """rd <- op(rs, rt) with both operands interpreted as signed."""

    def semantics(ctx: ExecContext, ins: Instruction) -> None:
        a = to_signed(ctx.get(ins.rs))
        b = to_signed(ctx.get(ins.rt))
        ctx.set(ins.rd, to_unsigned(op(a, b)))

    return semantics


def _alu2(op: Callable[[int], int]) -> Semantics:
    """rd <- op(rs)."""

    def semantics(ctx: ExecContext, ins: Instruction) -> None:
        ctx.set(ins.rd, truncate(op(ctx.get(ins.rs))))

    return semantics


def _alui(op: Callable[[int, int], int]) -> Semantics:
    """rd <- op(rs, sign-extended immediate)."""

    def semantics(ctx: ExecContext, ins: Instruction) -> None:
        ctx.set(ins.rd, truncate(op(ctx.get(ins.rs), to_unsigned(ins.imm))))

    return semantics


def _alui_zx(op: Callable[[int, int], int]) -> Semantics:
    """rd <- op(rs, zero-extended 12-bit immediate).

    Logical immediates zero-extend so that ``movhi``+``ori`` can compose an
    arbitrary 24-bit constant — the expansion of the ``la``/``li`` pseudo
    instructions in the assembler.
    """

    def semantics(ctx: ExecContext, ins: Instruction) -> None:
        ctx.set(ins.rd, truncate(op(ctx.get(ins.rs), ins.imm & 0xFFF)))

    return semantics


def _shift_imm(op: Callable[[int, int], int]) -> Semantics:
    """rd <- op(rs, shift-amount immediate)."""

    def semantics(ctx: ExecContext, ins: Instruction) -> None:
        ctx.set(ins.rd, truncate(op(ctx.get(ins.rs), ins.imm & 31)))

    return semantics


def _shift_reg(op: Callable[[int, int], int]) -> Semantics:
    """rd <- op(rs, rt & 31)."""

    def semantics(ctx: ExecContext, ins: Instruction) -> None:
        ctx.set(ins.rd, truncate(op(ctx.get(ins.rs), ctx.get(ins.rt) & 31)))

    return semantics


def _load(size: int, signed: bool) -> Semantics:
    """rt <- mem[rs + imm] (size bytes, optional sign extension)."""

    def semantics(ctx: ExecContext, ins: Instruction) -> None:
        addr = truncate(ctx.get(ins.rs) + to_unsigned(ins.imm))
        ctx.set(ins.rt, ctx.load(addr, size, signed))

    return semantics


def _store(size: int) -> Semantics:
    """mem[rs + imm] <- rt (low ``size`` bytes)."""

    def semantics(ctx: ExecContext, ins: Instruction) -> None:
        addr = truncate(ctx.get(ins.rs) + to_unsigned(ins.imm))
        ctx.store(addr, ctx.get(ins.rt), size)

    return semantics


def _branch2(cond: Callable[[int, int], bool], signed: bool) -> Semantics:
    """Branch to ``imm`` when cond(rs, rt) holds."""

    def semantics(ctx: ExecContext, ins: Instruction) -> Optional[int]:
        a, b = ctx.get(ins.rs), ctx.get(ins.rt)
        if signed:
            a, b = to_signed(a), to_signed(b)
        return ins.imm if cond(a, b) else None

    return semantics


def _branch1(cond: Callable[[int], bool], signed: bool) -> Semantics:
    """Branch to ``imm`` when cond(rs) holds."""

    def semantics(ctx: ExecContext, ins: Instruction) -> Optional[int]:
        a = ctx.get(ins.rs)
        if signed:
            a = to_signed(a)
        return ins.imm if cond(a) else None

    return semantics


def _branch_imm(cond: Callable[[int, int], bool], signed: bool) -> Semantics:
    """Branch to ``imm`` when cond(rs, small-immediate-in-rt) holds.

    ``BI``-format instructions carry their comparison immediate in the
    ``rt`` field (folded there by the assembler).
    """

    def semantics(ctx: ExecContext, ins: Instruction) -> Optional[int]:
        a = ctx.get(ins.rs)
        b = to_unsigned(ins.rt)
        if signed:
            a, b = to_signed(a), to_signed(ins.rt)
        return ins.imm if cond(a, b) else None

    return semantics


def _branch_bit(want_set: bool) -> Semantics:
    """Branch when bit ``rt`` of ``rs`` is set (bbs) / clear (bbc)."""

    def semantics(ctx: ExecContext, ins: Instruction) -> Optional[int]:
        bit = (ctx.get(ins.rs) >> (ins.rt & 31)) & 1
        return ins.imm if bool(bit) == want_set else None

    return semantics


def _sem_j(ctx: ExecContext, ins: Instruction) -> int:
    return ins.imm


def _sem_jx(ctx: ExecContext, ins: Instruction) -> int:
    return truncate(ctx.get(ins.rs))


def _sem_call(ctx: ExecContext, ins: Instruction) -> int:
    ctx.set(LINK_REGISTER, truncate(ctx.pc + INSTRUCTION_BYTES))
    return ins.imm


def _sem_callx(ctx: ExecContext, ins: Instruction) -> int:
    target = truncate(ctx.get(ins.rs))
    ctx.set(LINK_REGISTER, truncate(ctx.pc + INSTRUCTION_BYTES))
    return target


def _sem_ret(ctx: ExecContext, ins: Instruction) -> int:
    return truncate(ctx.get(LINK_REGISTER))


def _sem_nop(ctx: ExecContext, ins: Instruction) -> None:
    return None


def _sem_halt(ctx: ExecContext, ins: Instruction) -> None:
    ctx.halt()


def _sem_break(ctx: ExecContext, ins: Instruction) -> None:
    raise BreakpointHit(ctx.pc)


def _conditional_move(cond: Callable[[int], bool]) -> Semantics:
    """rd <- rs when cond(signed rt) holds (Xtensa MOVEQZ family)."""

    def semantics(ctx: ExecContext, ins: Instruction) -> None:
        if cond(to_signed(ctx.get(ins.rt))):
            ctx.set(ins.rd, ctx.get(ins.rs))

    return semantics


def _mul_high(signed: bool) -> Semantics:
    """rd <- high 32 bits of the 64-bit product of rs and rt."""

    def semantics(ctx: ExecContext, ins: Instruction) -> None:
        a, b = ctx.get(ins.rs), ctx.get(ins.rt)
        if signed:
            a, b = to_signed(a), to_signed(b)
        ctx.set(ins.rd, to_unsigned((a * b) >> WORD_BITS))

    return semantics


def _div(op: Callable[[int, int], int], signed: bool, is_remainder: bool = False) -> Semantics:
    """rd <- op(rs, rt) with divide-by-zero producing all-ones / dividend."""

    def semantics(ctx: ExecContext, ins: Instruction) -> None:
        a, b = ctx.get(ins.rs), ctx.get(ins.rt)
        if signed:
            a, b = to_signed(a), to_signed(b)
        if b == 0:
            # RISC-style: quotient of all ones, remainder = dividend.
            result = a if is_remainder else -1
        else:
            result = op(a, b)
        ctx.set(ins.rd, to_unsigned(result))

    return semantics


def _quo_op(a: int, b: int) -> int:
    q = abs(a) // abs(b)
    return -q if (a < 0) != (b < 0) else q


def _rem_op(a: int, b: int) -> int:
    r = abs(a) % abs(b)
    return -r if a < 0 else r


class BreakpointHit(RuntimeError):
    """Raised when the ``break`` instruction executes."""

    def __init__(self, pc: int) -> None:
        super().__init__(f"break instruction executed at pc={pc:#010x}")
        self.pc = pc


def _d(
    mnemonic: str,
    fmt: str,
    iclass: InstructionClass,
    semantics: Semantics,
    description: str,
    latency: int = 1,
    extra_writes: tuple[int, ...] = (),
) -> InstructionDef:
    return InstructionDef(
        mnemonic=mnemonic,
        fmt=fmt,
        iclass=iclass,
        semantics=semantics,
        latency=latency,
        description=description,
        extra_writes=extra_writes,
    )


_A = InstructionClass.ARITH
_L = InstructionClass.LOAD
_S = InstructionClass.STORE
_J = InstructionClass.JUMP
_B = InstructionClass.BRANCH
_Y = InstructionClass.SYSTEM


def _base_definitions() -> list[InstructionDef]:
    """Build the full base-ISA table (~86 instructions)."""
    defs = [
        # --- register-register arithmetic/logic -------------------------
        _d("add", "R3", _A, _alu3(lambda a, b: a + b), "rd = rs + rt"),
        _d("sub", "R3", _A, _alu3(lambda a, b: a - b), "rd = rs - rt"),
        _d("and", "R3", _A, _alu3(lambda a, b: a & b), "rd = rs & rt"),
        _d("or", "R3", _A, _alu3(lambda a, b: a | b), "rd = rs | rt"),
        _d("xor", "R3", _A, _alu3(lambda a, b: a ^ b), "rd = rs ^ rt"),
        _d("nor", "R3", _A, _alu3(lambda a, b: ~(a | b)), "rd = ~(rs | rt)"),
        _d("andn", "R3", _A, _alu3(lambda a, b: a & ~b), "rd = rs & ~rt"),
        _d("orn", "R3", _A, _alu3(lambda a, b: a | ~b), "rd = rs | ~rt"),
        _d("xnor", "R3", _A, _alu3(lambda a, b: ~(a ^ b)), "rd = ~(rs ^ rt)"),
        _d("addx2", "R3", _A, _alu3(lambda a, b: (a << 1) + b), "rd = rs*2 + rt"),
        _d("addx4", "R3", _A, _alu3(lambda a, b: (a << 2) + b), "rd = rs*4 + rt"),
        _d("addx8", "R3", _A, _alu3(lambda a, b: (a << 3) + b), "rd = rs*8 + rt"),
        _d("subx2", "R3", _A, _alu3(lambda a, b: (a << 1) - b), "rd = rs*2 - rt"),
        _d("subx4", "R3", _A, _alu3(lambda a, b: (a << 2) - b), "rd = rs*4 - rt"),
        _d("slt", "R3", _A, _alu3_signed(lambda a, b: int(a < b)), "rd = rs <s rt"),
        _d("sltu", "R3", _A, _alu3(lambda a, b: int((a & 0xFFFFFFFF) < (b & 0xFFFFFFFF))), "rd = rs <u rt"),
        _d("min", "R3", _A, _alu3_signed(min), "rd = min_s(rs, rt)"),
        _d("max", "R3", _A, _alu3_signed(max), "rd = max_s(rs, rt)"),
        _d("minu", "R3", _A, _alu3(min), "rd = min_u(rs, rt)"),
        _d("maxu", "R3", _A, _alu3(max), "rd = max_u(rs, rt)"),
        # --- multiply / divide option (the paper's config includes the
        #     32-bit multiplication instruction) -------------------------
        _d("mull", "R3", _A, _alu3(lambda a, b: a * b), "rd = low32(rs * rt)"),
        _d("mulh", "R3", _A, _mul_high(signed=True), "rd = high32(rs *s rt)"),
        _d("mulhu", "R3", _A, _mul_high(signed=False), "rd = high32(rs *u rt)"),
        _d("quos", "R3", _A, _div(_quo_op, signed=True), "rd = rs /s rt"),
        _d("quou", "R3", _A, _div(lambda a, b: a // b, signed=False), "rd = rs /u rt"),
        _d("rems", "R3", _A, _div(_rem_op, signed=True, is_remainder=True), "rd = rs %s rt"),
        _d("remu", "R3", _A, _div(lambda a, b: a % b, signed=False, is_remainder=True), "rd = rs %u rt"),
        # --- register shifts --------------------------------------------
        _d("sll", "R3", _A, _shift_reg(lambda a, s: a << s), "rd = rs << (rt&31)"),
        _d("srl", "R3", _A, _shift_reg(lambda a, s: a >> s), "rd = rs >>u (rt&31)"),
        _d("sra", "R3", _A, _shift_reg(lambda a, s: to_signed(a) >> s), "rd = rs >>s (rt&31)"),
        _d("rotl", "R3", _A, _shift_reg(rotate_left), "rd = rotl(rs, rt&31)"),
        _d("rotr", "R3", _A, _shift_reg(rotate_right), "rd = rotr(rs, rt&31)"),
        # --- two-operand unary ops --------------------------------------
        _d("mov", "R2", _A, _alu2(lambda a: a), "rd = rs"),
        _d("neg", "R2", _A, _alu2(lambda a: -a), "rd = -rs"),
        _d("not", "R2", _A, _alu2(lambda a: ~a), "rd = ~rs"),
        _d("abs", "R2", _A, _alu2(lambda a: abs(to_signed(a))), "rd = |rs|"),
        _d("sext8", "R2", _A, _alu2(lambda a: sign_extend(a, 8)), "rd = sext8(rs)"),
        _d("sext16", "R2", _A, _alu2(lambda a: sign_extend(a, 16)), "rd = sext16(rs)"),
        _d("zext8", "R2", _A, _alu2(lambda a: a & 0xFF), "rd = rs & 0xff"),
        _d("zext16", "R2", _A, _alu2(lambda a: a & 0xFFFF), "rd = rs & 0xffff"),
        _d("clz", "R2", _A, _alu2(count_leading_zeros), "rd = count-leading-zeros(rs)"),
        _d("ctz", "R2", _A, _alu2(count_trailing_zeros), "rd = count-trailing-zeros(rs)"),
        _d("popc", "R2", _A, _alu2(popcount), "rd = population-count(rs)"),
        _d("bswap", "R2", _A, _alu2(byte_swap), "rd = byte-reverse(rs)"),
        # --- conditional moves ------------------------------------------
        _d("moveqz", "R3", _A, _conditional_move(lambda t: t == 0), "rd = rs if rt == 0"),
        _d("movnez", "R3", _A, _conditional_move(lambda t: t != 0), "rd = rs if rt != 0"),
        _d("movltz", "R3", _A, _conditional_move(lambda t: t < 0), "rd = rs if rt <s 0"),
        _d("movgez", "R3", _A, _conditional_move(lambda t: t >= 0), "rd = rs if rt >=s 0"),
        # --- immediate arithmetic/logic ---------------------------------
        _d("addi", "I", _A, _alui(lambda a, i: a + i), "rd = rs + imm12"),
        _d("addmi", "I", _A, _alui(lambda a, i: a + (i << 8)), "rd = rs + (imm12 << 8)"),
        _d("andi", "IU", _A, _alui_zx(lambda a, i: a & i), "rd = rs & uimm12"),
        _d("ori", "IU", _A, _alui_zx(lambda a, i: a | i), "rd = rs | uimm12"),
        _d("xori", "IU", _A, _alui_zx(lambda a, i: a ^ i), "rd = rs ^ uimm12"),
        _d("slti", "I", _A, lambda ctx, ins: ctx.set(ins.rd, int(to_signed(ctx.get(ins.rs)) < ins.imm)), "rd = rs <s imm12"),
        _d("sltiu", "I", _A, lambda ctx, ins: ctx.set(ins.rd, int(ctx.get(ins.rs) < to_unsigned(ins.imm))), "rd = rs <u imm12"),
        _d("slli", "SHI", _A, _shift_imm(lambda a, s: a << s), "rd = rs << imm5"),
        _d("srli", "SHI", _A, _shift_imm(lambda a, s: a >> s), "rd = rs >>u imm5"),
        _d("srai", "SHI", _A, _shift_imm(lambda a, s: to_signed(a) >> s), "rd = rs >>s imm5"),
        _d("roli", "SHI", _A, _shift_imm(rotate_left), "rd = rotl(rs, imm5)"),
        _d("rori", "SHI", _A, _shift_imm(rotate_right), "rd = rotr(rs, imm5)"),
        # --- immediate loads --------------------------------------------
        _d("movi", "LI", _A, lambda ctx, ins: ctx.set(ins.rd, to_unsigned(ins.imm)), "rd = imm12 (sign-extended)"),
        _d("movhi", "UI", _A, lambda ctx, ins: ctx.set(ins.rd, truncate((ins.imm & 0x3FFFF) << 12)), "rd = uimm18 << 12"),
        # --- memory loads ------------------------------------------------
        _d("l32i", "M", _L, _load(4, signed=False), "rt = mem32[rs + imm]"),
        _d("l16ui", "M", _L, _load(2, signed=False), "rt = zext(mem16[rs + imm])"),
        _d("l16si", "M", _L, _load(2, signed=True), "rt = sext(mem16[rs + imm])"),
        _d("l8ui", "M", _L, _load(1, signed=False), "rt = zext(mem8[rs + imm])"),
        _d("l8si", "M", _L, _load(1, signed=True), "rt = sext(mem8[rs + imm])"),
        # --- memory stores -----------------------------------------------
        _d("s32i", "M", _S, _store(4), "mem32[rs + imm] = rt"),
        _d("s16i", "M", _S, _store(2), "mem16[rs + imm] = rt"),
        _d("s8i", "M", _S, _store(1), "mem8[rs + imm] = rt"),
        # --- jumps / calls ------------------------------------------------
        _d("j", "J", _J, _sem_j, "pc = target"),
        _d("jx", "RS1", _J, _sem_jx, "pc = rs"),
        _d("call", "J", _J, _sem_call, "a0 = pc+4; pc = target", extra_writes=(LINK_REGISTER,)),
        _d("callx", "RS1", _J, _sem_callx, "a0 = pc+4; pc = rs", extra_writes=(LINK_REGISTER,)),
        _d("ret", "N", _J, _sem_ret, "pc = a0"),
        # --- branches (two-register compares) ----------------------------
        _d("beq", "B2", _B, _branch2(lambda a, b: a == b, signed=False), "branch if rs == rt"),
        _d("bne", "B2", _B, _branch2(lambda a, b: a != b, signed=False), "branch if rs != rt"),
        _d("blt", "B2", _B, _branch2(lambda a, b: a < b, signed=True), "branch if rs <s rt"),
        _d("bge", "B2", _B, _branch2(lambda a, b: a >= b, signed=True), "branch if rs >=s rt"),
        _d("bltu", "B2", _B, _branch2(lambda a, b: a < b, signed=False), "branch if rs <u rt"),
        _d("bgeu", "B2", _B, _branch2(lambda a, b: a >= b, signed=False), "branch if rs >=u rt"),
        # --- branches (compare with zero) --------------------------------
        _d("beqz", "B1", _B, _branch1(lambda a: a == 0, signed=False), "branch if rs == 0"),
        _d("bnez", "B1", _B, _branch1(lambda a: a != 0, signed=False), "branch if rs != 0"),
        _d("bltz", "B1", _B, _branch1(lambda a: a < 0, signed=True), "branch if rs <s 0"),
        _d("bgez", "B1", _B, _branch1(lambda a: a >= 0, signed=True), "branch if rs >=s 0"),
        # --- branches (compare with small immediate / bit tests) ---------
        _d("beqi", "BI", _B, _branch_imm(lambda a, b: a == b, signed=True), "branch if rs == imm6"),
        _d("bnei", "BI", _B, _branch_imm(lambda a, b: a != b, signed=True), "branch if rs != imm6"),
        _d("blti", "BI", _B, _branch_imm(lambda a, b: a < b, signed=True), "branch if rs <s imm6"),
        _d("bgei", "BI", _B, _branch_imm(lambda a, b: a >= b, signed=True), "branch if rs >=s imm6"),
        _d("bbs", "BI", _B, _branch_bit(want_set=True), "branch if bit imm6 of rs is set"),
        _d("bbc", "BI", _B, _branch_bit(want_set=False), "branch if bit imm6 of rs is clear"),
        # --- system -------------------------------------------------------
        _d("nop", "N", _Y, _sem_nop, "no operation"),
        _d("halt", "N", _Y, _sem_halt, "stop simulation"),
        _d("break", "N", _Y, _sem_break, "raise BreakpointHit"),
    ]
    return defs


class InstructionSet:
    """A named collection of instruction definitions with stable opcodes.

    The base ISA is immutable; :meth:`extend` returns a *new* instruction
    set with custom-instruction definitions appended — mirroring the way a
    TIE extension produces a new processor instance without touching the
    base core.
    """

    def __init__(self, name: str, definitions: Iterable[InstructionDef]) -> None:
        self.name = name
        self._defs: dict[str, InstructionDef] = {}
        self._opcodes: dict[str, int] = {}
        for definition in definitions:
            if definition.mnemonic in self._defs:
                raise ValueError(f"duplicate mnemonic {definition.mnemonic!r}")
            self._opcodes[definition.mnemonic] = len(self._defs)
            self._defs[definition.mnemonic] = definition

    def __contains__(self, mnemonic: str) -> bool:
        return mnemonic in self._defs

    def __len__(self) -> int:
        return len(self._defs)

    def __iter__(self):
        return iter(self._defs.values())

    def lookup(self, mnemonic: str) -> InstructionDef:
        """Return the definition for ``mnemonic`` (KeyError if unknown)."""
        try:
            return self._defs[mnemonic]
        except KeyError:
            raise KeyError(f"unknown instruction {mnemonic!r} in ISA {self.name!r}") from None

    def opcode(self, mnemonic: str) -> int:
        """Return the stable numeric opcode assigned to ``mnemonic``."""
        try:
            return self._opcodes[mnemonic]
        except KeyError:
            raise KeyError(f"unknown instruction {mnemonic!r} in ISA {self.name!r}") from None

    def mnemonic_for(self, opcode: int) -> str:
        """Inverse of :meth:`opcode`."""
        for mnemonic, code in self._opcodes.items():
            if code == opcode:
                return mnemonic
        raise KeyError(f"no instruction with opcode {opcode} in ISA {self.name!r}")

    def extend(self, name: str, extra: Sequence[InstructionDef]) -> "InstructionSet":
        """Return a new instruction set with ``extra`` definitions appended."""
        return InstructionSet(name, list(self._defs.values()) + list(extra))

    def by_class(self, iclass: InstructionClass) -> list[InstructionDef]:
        """All definitions whose static class is ``iclass``."""
        return [d for d in self._defs.values() if d.iclass is iclass]


def base_isa() -> InstructionSet:
    """Construct the base ``xtcore`` instruction set (fresh instance)."""
    return InstructionSet("xtcore-base", _base_definitions())


#: Shared immutable base-ISA instance for callers that don't extend it.
BASE_ISA = base_isa()
