"""Bit-level helpers shared by the ISA semantics, assembler and RTL models.

All architectural values are carried around as non-negative Python integers
that fit the relevant bit-width; these helpers convert between that unsigned
representation and signed interpretations, and provide the small amount of
bit arithmetic (masking, rotation, population counts, Hamming distance) that
the instruction semantics and the activity-based energy models need.
"""

from __future__ import annotations

WORD_BITS = 32
WORD_MASK = (1 << WORD_BITS) - 1


def mask(width: int) -> int:
    """Return an all-ones mask of ``width`` bits."""
    if width < 0:
        raise ValueError(f"width must be non-negative, got {width}")
    return (1 << width) - 1


def truncate(value: int, width: int = WORD_BITS) -> int:
    """Truncate ``value`` to an unsigned ``width``-bit integer."""
    return value & mask(width)


def to_signed(value: int, width: int = WORD_BITS) -> int:
    """Interpret an unsigned ``width``-bit integer as two's complement."""
    value = truncate(value, width)
    sign_bit = 1 << (width - 1)
    if value & sign_bit:
        return value - (1 << width)
    return value


def to_unsigned(value: int, width: int = WORD_BITS) -> int:
    """Encode a (possibly negative) integer as unsigned two's complement."""
    return value & mask(width)


def fits_signed(value: int, width: int) -> bool:
    """Return True if ``value`` is representable as a signed ``width``-bit int."""
    lo = -(1 << (width - 1))
    hi = (1 << (width - 1)) - 1
    return lo <= value <= hi


def fits_unsigned(value: int, width: int) -> bool:
    """Return True if ``value`` is representable as an unsigned ``width``-bit int."""
    return 0 <= value <= mask(width)


def sign_extend(value: int, from_width: int, to_width: int = WORD_BITS) -> int:
    """Sign-extend a ``from_width``-bit value to ``to_width`` bits (unsigned repr)."""
    return to_unsigned(to_signed(value, from_width), to_width)


def zero_extend(value: int, from_width: int) -> int:
    """Zero-extend (i.e. truncate to) a ``from_width``-bit value."""
    return truncate(value, from_width)


def rotate_left(value: int, amount: int, width: int = WORD_BITS) -> int:
    """Rotate a ``width``-bit value left by ``amount`` (mod width)."""
    amount %= width
    value = truncate(value, width)
    return truncate((value << amount) | (value >> (width - amount)), width)


def rotate_right(value: int, amount: int, width: int = WORD_BITS) -> int:
    """Rotate a ``width``-bit value right by ``amount`` (mod width)."""
    return rotate_left(value, width - (amount % width), width)


def popcount(value: int) -> int:
    """Number of set bits of a non-negative integer."""
    if value < 0:
        raise ValueError("popcount is defined on non-negative integers")
    return value.bit_count()


def count_leading_zeros(value: int, width: int = WORD_BITS) -> int:
    """Count leading zero bits of a ``width``-bit value (== width for zero)."""
    value = truncate(value, width)
    if value == 0:
        return width
    return width - value.bit_length()


def count_trailing_zeros(value: int, width: int = WORD_BITS) -> int:
    """Count trailing zero bits of a ``width``-bit value (== width for zero)."""
    value = truncate(value, width)
    if value == 0:
        return width
    return (value & -value).bit_length() - 1


def byte_swap(value: int, width: int = WORD_BITS) -> int:
    """Reverse the byte order of a ``width``-bit value (width multiple of 8)."""
    if width % 8:
        raise ValueError(f"byte_swap requires a width multiple of 8, got {width}")
    value = truncate(value, width)
    nbytes = width // 8
    return int.from_bytes(value.to_bytes(nbytes, "little"), "big")


def hamming_distance(a: int, b: int, width: int = WORD_BITS) -> int:
    """Number of differing bits between two ``width``-bit values.

    This is the canonical switching-activity proxy used by the RTL-level
    reference energy estimator: the dynamic energy of a CMOS block is taken
    to be proportional to the number of toggling nets at its inputs.
    """
    return popcount(truncate(a ^ b, width))


def hamming_weight_fraction(value: int, width: int = WORD_BITS) -> float:
    """Fraction of set bits in a ``width``-bit value (in [0, 1])."""
    if width == 0:
        return 0.0
    return popcount(truncate(value, width)) / width
