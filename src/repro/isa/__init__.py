"""``repro.isa`` — the base instruction set of the extensible core.

Public surface:

* :data:`BASE_ISA` / :func:`base_isa` — the ~86-instruction base ISA.
* :class:`Instruction`, :class:`InstructionDef`, :class:`InstructionSet`.
* :class:`InstructionClass` and :data:`BASE_ENERGY_CLASSES` — the paper's
  six-way energy clustering of the base ISA.
* :func:`encode` / :func:`decode` — fixed-width 32-bit binary encoding.
* :class:`MachineState` — bare functional machine state for semantics.
"""

from .bits import (
    WORD_BITS,
    WORD_MASK,
    hamming_distance,
    mask,
    sign_extend,
    to_signed,
    to_unsigned,
    truncate,
)
from .classes import BASE_ENERGY_CLASSES, InstructionClass
from .encoding import EncodingError, decode, encode
from .instructions import (
    BASE_ISA,
    INSTRUCTION_BYTES,
    LINK_REGISTER,
    NUM_REGISTERS,
    STACK_REGISTER,
    BreakpointHit,
    ExecContext,
    Instruction,
    InstructionDef,
    InstructionSet,
    base_isa,
)
from .state import MachineState, SparseMemory

__all__ = [
    "BASE_ENERGY_CLASSES",
    "BASE_ISA",
    "BreakpointHit",
    "EncodingError",
    "ExecContext",
    "INSTRUCTION_BYTES",
    "Instruction",
    "InstructionClass",
    "InstructionDef",
    "InstructionSet",
    "LINK_REGISTER",
    "MachineState",
    "NUM_REGISTERS",
    "STACK_REGISTER",
    "SparseMemory",
    "WORD_BITS",
    "WORD_MASK",
    "base_isa",
    "decode",
    "encode",
    "hamming_distance",
    "mask",
    "sign_extend",
    "to_signed",
    "to_unsigned",
    "truncate",
]
