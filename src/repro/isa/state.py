"""Minimal machine state implementing :class:`repro.isa.instructions.ExecContext`.

The full instruction-set simulator in :mod:`repro.xtcore.iss` wraps this
state with pipeline timing, caches and tracing; keeping the bare functional
state here lets ISA semantics be unit-tested in isolation and gives the TIE
semantics evaluator a place to execute against.
"""

from __future__ import annotations

from .bits import sign_extend, truncate
from .instructions import NUM_REGISTERS


class SparseMemory:
    """A byte-addressable sparse memory backed by fixed-size pages.

    Unwritten bytes read as zero, which matches the behaviour of zero-
    initialized simulation RAM and keeps program images small.
    """

    PAGE_BITS = 12
    PAGE_SIZE = 1 << PAGE_BITS

    def __init__(self) -> None:
        self._pages: dict[int, bytearray] = {}

    def _page_for(self, addr: int, create: bool) -> bytearray | None:
        page_index = addr >> self.PAGE_BITS
        page = self._pages.get(page_index)
        if page is None and create:
            page = bytearray(self.PAGE_SIZE)
            self._pages[page_index] = page
        return page

    def read_byte(self, addr: int) -> int:
        page = self._page_for(addr, create=False)
        if page is None:
            return 0
        return page[addr & (self.PAGE_SIZE - 1)]

    def write_byte(self, addr: int, value: int) -> None:
        page = self._page_for(addr, create=True)
        assert page is not None
        page[addr & (self.PAGE_SIZE - 1)] = value & 0xFF

    def read(self, addr: int, size: int) -> int:
        """Little-endian read of ``size`` bytes."""
        offset = addr & (self.PAGE_SIZE - 1)
        if offset + size <= self.PAGE_SIZE:
            page = self._pages.get(addr >> self.PAGE_BITS)
            if page is None:
                return 0
            return int.from_bytes(page[offset : offset + size], "little")
        value = 0
        for i in range(size):
            value |= self.read_byte(addr + i) << (8 * i)
        return value

    def write(self, addr: int, value: int, size: int) -> None:
        """Little-endian write of the low ``size`` bytes of ``value``."""
        offset = addr & (self.PAGE_SIZE - 1)
        if offset + size <= self.PAGE_SIZE:
            page_index = addr >> self.PAGE_BITS
            page = self._pages.get(page_index)
            if page is None:
                page = bytearray(self.PAGE_SIZE)
                self._pages[page_index] = page
            page[offset : offset + size] = (value & ((1 << (8 * size)) - 1)).to_bytes(
                size, "little"
            )
            return
        for i in range(size):
            self.write_byte(addr + i, (value >> (8 * i)) & 0xFF)

    def write_bytes(self, addr: int, data: bytes) -> None:
        pos = 0
        size = len(data)
        while pos < size:
            offset = (addr + pos) & (self.PAGE_SIZE - 1)
            chunk = min(size - pos, self.PAGE_SIZE - offset)
            page = self._page_for(addr + pos, create=True)
            page[offset : offset + chunk] = data[pos : pos + chunk]
            pos += chunk

    def read_bytes(self, addr: int, size: int) -> bytes:
        out = bytearray()
        pos = 0
        while pos < size:
            offset = (addr + pos) & (self.PAGE_SIZE - 1)
            chunk = min(size - pos, self.PAGE_SIZE - offset)
            page = self._pages.get((addr + pos) >> self.PAGE_BITS)
            out += page[offset : offset + chunk] if page is not None else bytes(chunk)
            pos += chunk
        return bytes(out)

    @property
    def touched_pages(self) -> int:
        """Number of pages that have been materialized (for tests)."""
        return len(self._pages)

    def snapshot(self) -> dict[int, bytes]:
        """Immutable copy of all materialized pages, keyed by page index.

        Pages of all zeroes compare equal to absent pages, so snapshots
        of two memories hold the same bytes iff their normalized
        snapshots are equal — used by the discovery pipeline's
        differential verifier.
        """
        zero = bytes(self.PAGE_SIZE)
        return {
            index: bytes(page)
            for index, page in sorted(self._pages.items())
            if bytes(page) != zero
        }


class MachineState:
    """Registers + memory + pc: the functional core of the simulator."""

    def __init__(self, num_registers: int = NUM_REGISTERS) -> None:
        self.num_registers = num_registers
        self.regs = [0] * num_registers
        self.memory = SparseMemory()
        self.pc = 0
        self.halted = False
        #: Custom (TIE-substitute) state registers, keyed by register name.
        #: Initialized by the processor model from the extension specs.
        self.tie_state: dict[str, int] = {}

    def get(self, reg: int) -> int:
        if not 0 <= reg < self.num_registers:
            raise IndexError(f"register index a{reg} out of range")
        return self.regs[reg]

    def set(self, reg: int, value: int) -> None:
        if not 0 <= reg < self.num_registers:
            raise IndexError(f"register index a{reg} out of range")
        self.regs[reg] = truncate(value)

    def load(self, addr: int, size: int, signed: bool) -> int:
        value = self.memory.read(truncate(addr), size)
        if signed:
            value = sign_extend(value, size * 8)
        return value

    def store(self, addr: int, value: int, size: int) -> None:
        self.memory.write(truncate(addr), value, size)

    def halt(self) -> None:
        self.halted = True
