"""``repro.hwlib`` — the 10-category custom-hardware component library."""

from .components import (
    CATEGORY_ORDER,
    CATEGORY_TABLE,
    REFERENCE_WIDTH,
    SPURIOUS_ACTIVATION_WEIGHT,
    CategoryInfo,
    ComplexityLaw,
    ComponentCategory,
    ComponentInstance,
    category_info,
)

__all__ = [
    "CATEGORY_ORDER",
    "CATEGORY_TABLE",
    "CategoryInfo",
    "ComplexityLaw",
    "ComponentCategory",
    "ComponentInstance",
    "REFERENCE_WIDTH",
    "SPURIOUS_ACTIVATION_WEIGHT",
    "category_info",
]
