"""The custom-hardware component library (paper Section IV-B.1).

Custom (TIE-substitute) instructions are built from library primitives.
For efficiency the paper classifies the primitives into ten categories,
each owning one structural macro-model variable:

1. multiplier; 2. adder/subtractor/comparators; 3. bit-wise logic,
reduction logic and multiplexers; 4. shifter; 5. custom registers; and
the specialized TIE modules 6. TIE mult; 7. TIE mac; 8. TIE add;
9. TIE csa; 10. table.

The energy consumption of a component depends significantly on its
bit-width ``w`` (or entries x width for a table).  The paper models that
dependence with a complexity function ``C``: linear (``C ∝ w``) for
adders, muxes, etc., and quadratic (``C ∝ w²``) for multipliers.  We
normalize the quadratic law by a 32-bit reference so that a 32-bit
multiplier and a 32-bit adder have the *same* complexity value and the
fitted per-unit-complexity coefficients stay mutually comparable (this
matches the paper's per-cycle-per-bit reporting of Table I).
"""

from __future__ import annotations

import dataclasses
import enum

#: Reference bit-width used to normalize super-linear complexity laws.
REFERENCE_WIDTH = 32

#: *Expected* weight of a spurious activation (custom-hardware inputs
#: toggled by the shared operand buses during a base-instruction cycle)
#: relative to a genuine architected active cycle.  Used by the dynamic
#: resource-usage analysis when it folds spurious activations into the
#: structural macro-model variables.
#:
#: The value is the product of the physical input-stage factor (~0.5: a
#: spurious event only exercises a component's input logic cone) and the
#: ratio of typical operand-bus switching activity to typical custom-
#: datapath switching activity (~0.78): base-instruction bus values
#: (addresses, counters) toggle fewer bits per cycle than the data a
#: custom datapath is built to chew.  The reference RTL estimator
#: computes the same quantity from *actual* per-cycle toggling; the
#: difference between the realized and expected weight is a deliberate,
#: honest source of macro-model error.
SPURIOUS_ACTIVATION_WEIGHT = 0.39


class ComplexityLaw(enum.Enum):
    """How a component category's complexity scales with bit-width."""

    LINEAR = "linear"
    QUADRATIC = "quadratic"
    TABLE = "table"

    def complexity(self, width: int, entries: int = 0) -> float:
        """Evaluate the law: the complexity ``C`` in 32-bit equivalents.

        Normalizing by :data:`REFERENCE_WIDTH` keeps every category's
        complexity around 1.0 for a 32-bit instance, so the fitted
        per-unit-complexity coefficients land on the same scale as the
        category unit energies (and as the paper's Table I values).
        """
        if width <= 0:
            raise ValueError(f"bit-width must be positive, got {width}")
        if self is ComplexityLaw.LINEAR:
            return width / REFERENCE_WIDTH
        if self is ComplexityLaw.QUADRATIC:
            return (width / REFERENCE_WIDTH) ** 2
        if entries <= 0:
            raise ValueError(f"table components need a positive entry count, got {entries}")
        return float(entries * width) / (REFERENCE_WIDTH * REFERENCE_WIDTH)


class ComponentCategory(enum.Enum):
    """The paper's ten custom-hardware component categories."""

    MULT = "mult"
    ADD_SUB_CMP = "add_sub_cmp"
    LOGIC_RED_MUX = "logic_red_mux"
    SHIFTER = "shifter"
    CUSTOM_REG = "custom_reg"
    TIE_MULT = "tie_mult"
    TIE_MAC = "tie_mac"
    TIE_ADD = "tie_add"
    TIE_CSA = "tie_csa"
    TABLE = "table"


@dataclasses.dataclass(frozen=True)
class CategoryInfo:
    """Static properties of one component category.

    ``unit_energy`` is the *ground-truth* mean energy (arbitrary pJ-like
    units) consumed per active cycle per unit of complexity; the reference
    RTL estimator perturbs it with data-dependent switching activity and
    per-instance variation.  The regression macro-model is expected to
    recover values close to these — that recovery is itself a test.
    ``idle_fraction`` is the fraction of unit energy burnt per idle cycle
    (clock/leakage) once the hardware is instantiated.
    """

    category: ComponentCategory
    display_name: str
    law: ComplexityLaw
    unit_energy: float
    idle_fraction: float

    def complexity(self, width: int, entries: int = 0) -> float:
        return self.law.complexity(width, entries)


#: Table-I-inspired ground-truth energy parameters per category.  The
#: display names match the paper's Table I row labels.
CATEGORY_TABLE: dict[ComponentCategory, CategoryInfo] = {
    info.category: info
    for info in (
        CategoryInfo(ComponentCategory.MULT, "*", ComplexityLaw.QUADRATIC, 152.0, 0.002),
        CategoryInfo(ComponentCategory.ADD_SUB_CMP, "+/-/comp", ComplexityLaw.LINEAR, 70.0, 0.002),
        CategoryInfo(ComponentCategory.LOGIC_RED_MUX, "log/red/mux", ComplexityLaw.LINEAR, 12.0, 0.002),
        CategoryInfo(ComponentCategory.SHIFTER, "shifter", ComplexityLaw.LINEAR, 377.0, 0.002),
        CategoryInfo(ComponentCategory.CUSTOM_REG, "custom register", ComplexityLaw.LINEAR, 177.0, 0.002),
        CategoryInfo(ComponentCategory.TIE_MULT, "TIE_mult", ComplexityLaw.QUADRATIC, 165.0, 0.002),
        CategoryInfo(ComponentCategory.TIE_MAC, "TIE_mac", ComplexityLaw.QUADRATIC, 190.0, 0.002),
        CategoryInfo(ComponentCategory.TIE_ADD, "TIE_add", ComplexityLaw.LINEAR, 69.0, 0.002),
        CategoryInfo(ComponentCategory.TIE_CSA, "TIE_csa", ComplexityLaw.LINEAR, 37.0, 0.002),
        CategoryInfo(ComponentCategory.TABLE, "table", ComplexityLaw.TABLE, 27.0, 0.001),
    )
}

#: Stable ordering of categories — the order of the structural variables
#: in the macro-model template (and of the Table I custom-hardware rows).
CATEGORY_ORDER: tuple[ComponentCategory, ...] = tuple(CATEGORY_TABLE)


def category_info(category: ComponentCategory) -> CategoryInfo:
    """Look up the static info record of a category."""
    return CATEGORY_TABLE[category]


@dataclasses.dataclass(frozen=True)
class ComponentInstance:
    """One physical instance of a library component in a custom datapath.

    Created by the TIE compiler (one per operator node) and referenced by
    both the structural macro-model variables (through its complexity) and
    the reference RTL estimator (through its unit energy + variation).
    """

    name: str
    category: ComponentCategory
    width: int
    entries: int = 0

    def __post_init__(self) -> None:
        if self.width <= 0:
            raise ValueError(f"{self.name}: bit-width must be positive")
        info = CATEGORY_TABLE[self.category]
        if info.law is ComplexityLaw.TABLE and self.entries <= 0:
            raise ValueError(f"{self.name}: table component needs entries > 0")

    @property
    def info(self) -> CategoryInfo:
        return CATEGORY_TABLE[self.category]

    @property
    def complexity(self) -> float:
        """The unit-less complexity ``C`` of this instance."""
        return self.info.complexity(self.width, self.entries)

    @property
    def unit_energy(self) -> float:
        """Ground-truth mean active energy per cycle of this instance."""
        return self.info.unit_energy * self.complexity
