#!/usr/bin/env bash
# Fleet smoke: boot `repro serve --fleet 3` (three node subprocesses behind
# one consistent-hash router) on ephemeral ports, prove cross-node dedup via
# the fleet /metrics aggregate (M distinct keys -> M simulations regardless
# of which node each request hit), SIGKILL one node mid-soak, assert every
# request is still answered exactly once, then verify SIGTERM produces a
# clean shutdown that reaps the surviving nodes.
# Run identically by CI and locally:  bash scripts/ci/smoke_fleet.sh
#
# When SMOKE_ARTIFACT_DIR is set, the final fleet /metrics payload and all
# fleet logs are copied there for upload on failure.
set -euo pipefail

SCRIPT_DIR="$(cd "$(dirname "${BASH_SOURCE[0]}")" && pwd)"
ROOT="$(cd "$SCRIPT_DIR/../.." && pwd)"
export PYTHONPATH="$ROOT/src${PYTHONPATH:+:$PYTHONPATH}"

WORK="$(mktemp -d)"
FLEET_PID=""
ROUTER_PORT=""
dump_artifacts() {
    [ -n "${SMOKE_ARTIFACT_DIR:-}" ] || return 0
    mkdir -p "$SMOKE_ARTIFACT_DIR"
    # best-effort live /metrics grab: meaningful when we die mid-soak with
    # the router still up (on success the client already wrote a snapshot)
    if [ -n "$ROUTER_PORT" ] && [ ! -s "$SMOKE_ARTIFACT_DIR/fleet_metrics.json" ]; then
        python -c 'import sys, urllib.request; sys.stdout.write(urllib.request.urlopen(f"http://127.0.0.1:{sys.argv[1]}/metrics", timeout=10).read().decode())' \
            "$ROUTER_PORT" > "$SMOKE_ARTIFACT_DIR/fleet_metrics.json" 2>/dev/null || true
        [ -s "$SMOKE_ARTIFACT_DIR/fleet_metrics.json" ] \
            || rm -f "$SMOKE_ARTIFACT_DIR/fleet_metrics.json"
    fi
    cp "$WORK/fleet.log" "$SMOKE_ARTIFACT_DIR/" 2>/dev/null || true
    cp "$WORK"/fleet/node*.log "$SMOKE_ARTIFACT_DIR/" 2>/dev/null || true
}
cleanup() {
    dump_artifacts
    [ -n "$FLEET_PID" ] && kill "$FLEET_PID" 2>/dev/null || true
    rm -rf "$WORK"
}
trap cleanup EXIT

python "$SCRIPT_DIR/make_smoke_model.py" "$WORK/smoke-model.json"

python -m repro serve "$WORK/smoke-model.json" --fleet 3 --port 0 \
    --port-file "$WORK/router.port" --fleet-workdir "$WORK/fleet" \
    --workers 0 --health-interval 0.5 --node-failures 1 --node-cooldown 30 \
    > "$WORK/fleet.log" 2>&1 &
FLEET_PID=$!

# the router writes its ephemeral port to the port file once every node is
# up and the router socket is bound
for _ in $(seq 1 300); do
    [ -s "$WORK/router.port" ] && break
    kill -0 "$FLEET_PID" 2>/dev/null || { cat "$WORK/fleet.log"; exit 1; }
    sleep 0.1
done
ROUTER_PORT="$(cat "$WORK/router.port")"
[ -n "$ROUTER_PORT" ] || { echo "no router port published"; cat "$WORK/fleet.log"; exit 1; }

# the victim for the mid-soak kill: node 0's announce line carries its pid
# and address ("repro serve: node 0 pid 1234 at http://127.0.0.1:45678")
VICTIM_PID="$(sed -n 's/^repro serve: node 0 pid \([0-9]*\) .*/\1/p' "$WORK/fleet.log")"
VICTIM_ADDR="$(sed -n 's#^repro serve: node 0 pid [0-9]* at http://\(.*\)#\1#p' "$WORK/fleet.log")"
[ -n "$VICTIM_PID" ] && [ -n "$VICTIM_ADDR" ] || {
    echo "no node announce line"; cat "$WORK/fleet.log"; exit 1;
}

python "$SCRIPT_DIR/fleet_smoke_client.py" "$ROUTER_PORT" "$VICTIM_PID" "$VICTIM_ADDR"

# clean shutdown: SIGTERM must stop the router and reap the survivors
kill -TERM "$FLEET_PID"
STATUS=0
wait "$FLEET_PID" || STATUS=$?
FLEET_PID=""
[ "$STATUS" -eq 0 ] || { echo "fleet exited $STATUS"; cat "$WORK/fleet.log"; exit 1; }
grep -q "repro route: shutting down" "$WORK/fleet.log"
grep -q "repro serve: stopping fleet nodes" "$WORK/fleet.log"
echo "smoke_fleet: OK (cross-node dedup, node kill survived, clean shutdown)"
