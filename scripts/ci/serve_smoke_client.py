"""The client half of the serve smoke: prove coalescing over the wire.

POSTs the same estimate request twice to a running ``repro serve``
instance, asserts both answers agree, then reads ``/metrics`` and
asserts the duplicate was merged (memo, coalesce, or disk — any tier
counts; all of them mean the second request paid no simulation).

    python scripts/ci/serve_smoke_client.py PORT
"""

from __future__ import annotations

import http.client
import json
import sys

BODY = {
    "program": {
        "source": (
            "    .data\n"
            "out: .word 0\n"
            "    .text\n"
            "main:\n"
            "    movi a2, 25\n"
            "    movi a3, 0\n"
            "loop:\n"
            "    add a3, a3, a2\n"
            "    addi a2, a2, -1\n"
            "    bnez a2, loop\n"
            "    la a4, out\n"
            "    s32i a3, a4, 0\n"
            "    halt\n"
        ),
        "name": "ci_smoke",
    },
    "max_instructions": 10_000,
}


def request(port: int, method: str, path: str, body: dict | None = None):
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=60)
    try:
        payload = None if body is None else json.dumps(body)
        headers = {"Content-Type": "application/json"} if payload else {}
        conn.request(method, path, payload, headers)
        response = conn.getresponse()
        return response.status, json.loads(response.read())
    finally:
        conn.close()


def main(argv: list[str]) -> int:
    port = int(argv[1])

    status, health = request(port, "GET", "/healthz")
    assert status == 200 and health["status"] == "ok", (status, health)

    status, first = request(port, "POST", "/estimate", BODY)
    assert status == 200, (status, first)
    status, second = request(port, "POST", "/estimate", BODY)
    assert status == 200, (status, second)
    assert second["key"] == first["key"], (first, second)
    assert second["energy"] == first["energy"], (first, second)
    assert first["dedup"] == "fresh", first
    assert second["dedup"] in ("memo", "coalesced", "disk"), second

    status, metrics = request(port, "GET", "/metrics")
    assert status == 200, (status, metrics)
    counters = metrics["counters"]
    assert counters["estimate_requests"] == 2, counters
    assert counters["duplicates_merged"] >= 1, counters
    assert metrics["simulation"]["runs_finished"] == 1, metrics["simulation"]

    print(
        "serve smoke: energy "
        f"{first['energy']:.1f}, second request answered via "
        f"{second['dedup']!r}, {counters['duplicates_merged']} duplicate(s) "
        "merged, 1 simulation total"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
