#!/usr/bin/env bash
# Estimation-service smoke: boot `repro serve` on an ephemeral port, POST
# two duplicate estimate requests, assert via /metrics that the duplicate
# coalesced away, then verify SIGTERM produces a clean drained shutdown.
# Run identically by CI and locally:  bash scripts/ci/smoke_serve.sh
set -euo pipefail

SCRIPT_DIR="$(cd "$(dirname "${BASH_SOURCE[0]}")" && pwd)"
ROOT="$(cd "$SCRIPT_DIR/../.." && pwd)"
export PYTHONPATH="$ROOT/src${PYTHONPATH:+:$PYTHONPATH}"

WORK="$(mktemp -d)"
SERVER_PID=""
PORT=""
dump_artifacts() {
    [ -n "${SMOKE_ARTIFACT_DIR:-}" ] || return 0
    mkdir -p "$SMOKE_ARTIFACT_DIR"
    if [ -n "$PORT" ]; then
        python -c 'import sys, urllib.request; sys.stdout.write(urllib.request.urlopen(f"http://127.0.0.1:{sys.argv[1]}/metrics", timeout=10).read().decode())' \
            "$PORT" > "$SMOKE_ARTIFACT_DIR/serve_metrics.json" 2>/dev/null || true
        [ -s "$SMOKE_ARTIFACT_DIR/serve_metrics.json" ] \
            || rm -f "$SMOKE_ARTIFACT_DIR/serve_metrics.json"
    fi
    cp "$WORK/serve.log" "$SMOKE_ARTIFACT_DIR/serve.log" 2>/dev/null || true
}
cleanup() {
    dump_artifacts
    [ -n "$SERVER_PID" ] && kill "$SERVER_PID" 2>/dev/null || true
    rm -rf "$WORK"
}
trap cleanup EXIT

python "$SCRIPT_DIR/make_smoke_model.py" "$WORK/smoke-model.json"

python -m repro serve "$WORK/smoke-model.json" --port 0 --workers 0 \
    > "$WORK/serve.log" 2>&1 &
SERVER_PID=$!

# wait for the announce line that carries the ephemeral port
for _ in $(seq 1 100); do
    grep -q "listening on" "$WORK/serve.log" && break
    kill -0 "$SERVER_PID" 2>/dev/null || { cat "$WORK/serve.log"; exit 1; }
    sleep 0.1
done
PORT="$(sed -n 's#.*listening on http://127\.0\.0\.1:\([0-9]*\).*#\1#p' "$WORK/serve.log")"
[ -n "$PORT" ] || { echo "no port announced"; cat "$WORK/serve.log"; exit 1; }

python "$SCRIPT_DIR/serve_smoke_client.py" "$PORT"

# clean shutdown: SIGTERM must drain and exit 0
kill -TERM "$SERVER_PID"
STATUS=0
wait "$SERVER_PID" || STATUS=$?
SERVER_PID=""
[ "$STATUS" -eq 0 ] || { echo "server exited $STATUS"; cat "$WORK/serve.log"; exit 1; }
grep -q "shutting down" "$WORK/serve.log"
echo "smoke_serve: OK (coalescing proven, clean shutdown)"
