#!/usr/bin/env bash
# Instruction-discovery smoke: mine + legalize candidates from the FIR
# software profile, verify and score them with a synthetic macro-model,
# then feed the resulting manifest back into the explorer.
# Run identically by CI and locally:  bash scripts/ci/smoke_discover.sh
set -euo pipefail

SCRIPT_DIR="$(cd "$(dirname "${BASH_SOURCE[0]}")" && pwd)"
ROOT="$(cd "$SCRIPT_DIR/../.." && pwd)"
export PYTHONPATH="$ROOT/src${PYTHONPATH:+:$PYTHONPATH}"

WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT

python "$SCRIPT_DIR/make_smoke_model.py" "$WORK/smoke-model.json"

python -m repro discover "$WORK/smoke-model.json" --workload fir \
    --top-k 3 --format json -o "$WORK/report.json" \
    --manifest "$WORK/fir-manifest.json" -v

python - "$WORK/report.json" <<'EOF'
import json, sys

report = json.load(open(sys.argv[1]))
assert report["legalized"] >= 1, f"no legalized candidates: {report}"
assert report["candidates"], f"no verified+scored candidates: {report}"
for cand in report["candidates"]:
    assert cand["energy"] > 0 and cand["cycles"] > 0, cand
print(
    f"discover: {report['mined']} mined, {report['legalized']} legalized, "
    f"{len(report['candidates'])} scored"
)
EOF

# the manifest round-trips into a registered explorer space
python -m repro explore --discovered "$WORK/fir-manifest.json" --list-spaces \
    | tee "$WORK/spaces.txt"
grep -q "\[registered\] space discovered:fir:" "$WORK/spaces.txt"

python -m repro explore "$WORK/smoke-model.json" \
    --discovered "$WORK/fir-manifest.json" --space discovered:fir \
    --strategy random --budget 4 --seed 1

echo "smoke_discover: OK"
