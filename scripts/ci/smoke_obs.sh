#!/usr/bin/env bash
# Observability smoke: streaming profile over a committed loop program in
# both table and JSON form, then the observer equivalence test suite.
# Run identically by CI and locally:  bash scripts/ci/smoke_obs.sh
set -euo pipefail

SCRIPT_DIR="$(cd "$(dirname "${BASH_SOURCE[0]}")" && pwd)"
ROOT="$(cd "$SCRIPT_DIR/../.." && pwd)"
export PYTHONPATH="$ROOT/src${PYTHONPATH:+:$PYTHONPATH}"

WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT

python "$SCRIPT_DIR/make_smoke_model.py" "$WORK/smoke-model.json"

python -m repro profile "$WORK/smoke-model.json" "$SCRIPT_DIR/smoke_loop.s" \
    --timeline 16 --hot --cache-events

python -m repro profile "$WORK/smoke-model.json" "$SCRIPT_DIR/smoke_loop.s" \
    --timeline 16 --hot --cache-events --format json \
    > "$WORK/profile.json"
python "$SCRIPT_DIR/check_profile_payload.py" "$WORK/profile.json"

python -m pytest "$ROOT/tests/obs" -q
echo "smoke_obs: OK"
