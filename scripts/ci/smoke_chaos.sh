#!/usr/bin/env bash
# Chaos smoke: boot `repro serve` with a fork pool and a seeded chaos
# plan that kills real worker processes mid-run and poisons one program
# name, drive traffic through the faults, and assert via /metrics that
# the pool respawned and the poison was quarantined while everyone else
# kept getting answers.  Ends with SIGTERM -> drained exit 0.
# Run identically by CI and locally:  bash scripts/ci/smoke_chaos.sh
set -euo pipefail

SCRIPT_DIR="$(cd "$(dirname "${BASH_SOURCE[0]}")" && pwd)"
ROOT="$(cd "$SCRIPT_DIR/../.." && pwd)"
export PYTHONPATH="$ROOT/src${PYTHONPATH:+:$PYTHONPATH}"

# two scheduled worker crashes early in the run + one poisoned name;
# horizon 6 keeps both scheduled kills inside the six good singleton
# batches (which retry and exonerate), never overlapping the poison's
# own crash dispatches — so the crash arithmetic below is exact
CRASHES=2
CHAOS_SPEC="seed=9,crashes=$CRASHES,horizon=6,poison=ci_poison"

WORK="$(mktemp -d)"
SERVER_PID=""
PORT=""
dump_artifacts() {
    [ -n "${SMOKE_ARTIFACT_DIR:-}" ] || return 0
    mkdir -p "$SMOKE_ARTIFACT_DIR"
    if [ -n "$PORT" ]; then
        python -c 'import sys, urllib.request; sys.stdout.write(urllib.request.urlopen(f"http://127.0.0.1:{sys.argv[1]}/metrics", timeout=10).read().decode())' \
            "$PORT" > "$SMOKE_ARTIFACT_DIR/chaos_metrics.json" 2>/dev/null || true
        [ -s "$SMOKE_ARTIFACT_DIR/chaos_metrics.json" ] \
            || rm -f "$SMOKE_ARTIFACT_DIR/chaos_metrics.json"
    fi
    cp "$WORK/serve.log" "$SMOKE_ARTIFACT_DIR/chaos_serve.log" 2>/dev/null || true
}
cleanup() {
    dump_artifacts
    [ -n "$SERVER_PID" ] && kill "$SERVER_PID" 2>/dev/null || true
    rm -rf "$WORK"
}
trap cleanup EXIT

python "$SCRIPT_DIR/make_smoke_model.py" "$WORK/smoke-model.json"

python -m repro serve "$WORK/smoke-model.json" --port 0 --workers 2 \
    --chaos "$CHAOS_SPEC" --quarantine-after 3 --breaker-failures 16 \
    > "$WORK/serve.log" 2>&1 &
SERVER_PID=$!

# wait for the announce line that carries the ephemeral port
for _ in $(seq 1 100); do
    grep -q "listening on" "$WORK/serve.log" && break
    kill -0 "$SERVER_PID" 2>/dev/null || { cat "$WORK/serve.log"; exit 1; }
    sleep 0.1
done
PORT="$(sed -n 's#.*listening on http://127\.0\.0\.1:\([0-9]*\).*#\1#p' "$WORK/serve.log")"
[ -n "$PORT" ] || { echo "no port announced"; cat "$WORK/serve.log"; exit 1; }

python "$SCRIPT_DIR/chaos_smoke_client.py" "$PORT" "$CRASHES" \
    || { echo "chaos client failed"; cat "$WORK/serve.log"; exit 1; }

# the wounded-and-healed server must still drain cleanly: SIGTERM -> 0
kill -TERM "$SERVER_PID"
STATUS=0
wait "$SERVER_PID" || STATUS=$?
SERVER_PID=""
[ "$STATUS" -eq 0 ] || { echo "server exited $STATUS"; cat "$WORK/serve.log"; exit 1; }
grep -q "shutting down" "$WORK/serve.log"
echo "smoke_chaos: OK (pool respawn + quarantine proven under live traffic)"
