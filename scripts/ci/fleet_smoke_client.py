"""The client half of the fleet smoke: dedup fleet-wide, kill a node,
prove every request is still answered exactly once.

Driven against a live ``repro serve --fleet 3`` router:

* **Phase A** — M distinct workloads, each POSTed twice under different
  cosmetic names.  The fleet ``/metrics`` aggregate must show exactly M
  simulations: consistent-hash routing plus each node's dedup tiers
  merge every duplicate, no matter which node a request landed on.
* **Phase B** — SIGKILL one node (a real machine loss, no drain), then
  re-submit every workload plus the victim's share of traffic.  Every
  request must be answered exactly once (one 200 per POST, none by the
  dead node), and the kill must add **zero** re-simulations: re-routed
  keys are shared-cache-tier hits on their new owners.

    python scripts/ci/fleet_smoke_client.py ROUTER_PORT VICTIM_PID VICTIM_ADDR
"""

from __future__ import annotations

import http.client
import json
import os
import signal
import sys
import time

#: Distinct workloads in the smoke (each submitted more than once).
DISTINCT_WORKLOADS = 6

SOURCE_TEMPLATE = """
    .data
out: .word 0
    .text
main:
    movi a2, {n}
    movi a3, 0
loop:
    add a3, a3, a2
    addi a2, a2, -1
    bnez a2, loop
    la a4, out
    s32i a3, a4, 0
    halt
"""


def estimate_body(name: str, workload: int) -> dict:
    return {
        "program": {
            "name": name,
            "source": SOURCE_TEMPLATE.format(n=workload + 3),
        },
        "max_instructions": 10_000,
    }


def request(port: int, method: str, path: str, body: dict | None = None):
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=60)
    try:
        payload = None if body is None else json.dumps(body)
        headers = {"Content-Type": "application/json"} if payload else {}
        conn.request(method, path, payload, headers)
        response = conn.getresponse()
        return response.status, json.loads(response.read()), dict(response.getheaders())
    finally:
        conn.close()


def main(argv: list[str]) -> int:
    port = int(argv[1])
    victim_pid = int(argv[2])
    victim_addr = argv[3]
    sent = 0
    answered = 0

    status, health, _ = request(port, "GET", "/healthz")
    assert status == 200, (status, health)
    assert health["status"] == "ok", health
    assert health["fleet"]["nodes_routable"] == 3, health["fleet"]

    # -- phase A: cross-node dedup ----------------------------------------
    answered_by: set[str] = set()
    for i in range(DISTINCT_WORKLOADS):
        for name in (f"smoke{i}", f"smoke{i}_dup"):
            sent += 1
            status, resp, headers = request(
                port, "POST", "/estimate", estimate_body(name, i)
            )
            assert status == 200, (status, resp)
            answered += 1
            answered_by.add(headers.get("X-Repro-Node", "?"))

    status, metrics, _ = request(port, "GET", "/metrics")
    assert status == 200, (status, metrics)
    fleet = metrics["fleet"]
    # M distinct keys -> exactly M simulations, fleet-wide, regardless of
    # which node each of the 2M requests hit
    assert fleet["simulation"]["runs_finished"] == DISTINCT_WORKLOADS, fleet
    assert fleet["counters"]["duplicates_merged"] >= DISTINCT_WORKLOADS, fleet
    assert fleet["nodes_reporting"] == 3, fleet
    # per-node payloads ride along the aggregate
    assert len(metrics["nodes"]) == 3, list(metrics["nodes"])
    assert all("counters" in node for node in metrics["nodes"].values())

    # -- phase B: kill a node mid-soak ------------------------------------
    os.kill(victim_pid, signal.SIGKILL)
    for i in range(DISTINCT_WORKLOADS + 2):
        # the first DISTINCT_WORKLOADS bodies repeat known workloads (the
        # victim's keys re-route and hit the shared tier); the final two
        # are brand-new work arriving after the loss
        sent += 1
        status, resp, headers = request(
            port, "POST", "/estimate", estimate_body(f"after{i}", i)
        )
        assert status == 200, (status, resp)
        answered += 1
        assert headers.get("X-Repro-Node") != victim_addr, headers

    status, metrics, _ = request(port, "GET", "/metrics")
    assert status == 200, (status, metrics)
    fleet = metrics["fleet"]
    # exactly-once accounting: every POST got exactly one 200 answer
    assert sent == answered == 2 * DISTINCT_WORKLOADS + DISTINCT_WORKLOADS + 2
    # the dead node's tally left the aggregate; survivors re-simulated
    # nothing old (shared-tier hits) and only the 2 new workloads
    assert fleet["nodes_reporting"] == 2, fleet
    assert fleet["simulation"]["runs_finished"] <= DISTINCT_WORKLOADS + 2, fleet

    # the router marks the victim down (forward failures and/or health poll)
    for _ in range(50):
        status, health, _ = request(port, "GET", "/healthz")
        if health["status"] == "degraded" and victim_addr in health["fleet"]["nodes_down"]:
            break
        time.sleep(0.1)
    else:
        raise AssertionError(f"victim {victim_addr} never marked down: {health}")

    artifact_dir = os.environ.get("SMOKE_ARTIFACT_DIR")
    if artifact_dir:
        os.makedirs(artifact_dir, exist_ok=True)
        with open(os.path.join(artifact_dir, "fleet_metrics.json"), "w") as fh:
            json.dump(metrics, fh, indent=2, sort_keys=True)

    print(
        f"fleet smoke: {answered}/{sent} requests answered exactly once "
        f"across {sorted(answered_by)}; {DISTINCT_WORKLOADS} distinct "
        f"workloads -> {DISTINCT_WORKLOADS} simulations before the kill; "
        f"node {victim_addr} SIGKILLed and routed around"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
