"""The client half of the chaos smoke: prove self-healing over the wire.

Drives a running ``repro serve`` instance that was booted with a seeded
chaos plan (scheduled worker crashes on a fork pool, plus the poisoned
program name ``ci_poison``) and asserts, via real HTTP answers and
``/metrics``, that:

* innocent requests all answer 200 even though the plan kills real
  worker processes under them (the supervisor respawns and retries);
* the poisoned program is isolated and quarantined: a typed
  ``stage="quarantine"`` 500, and repeats are rejected without dispatch;
* the pool restart and quarantine counters account for every fault;
* the service stays ``ok`` (breaker closed) for everyone else.

    python scripts/ci/chaos_smoke_client.py PORT PLANNED_CRASHES
"""

from __future__ import annotations

import http.client
import json
import sys

PROGRAM_TEMPLATE = (
    "    .data\n"
    "out: .word 0\n"
    "    .text\n"
    "main:\n"
    "    movi a2, {loops}\n"
    "    movi a3, 0\n"
    "loop:\n"
    "    add a3, a3, a2\n"
    "    addi a2, a2, -1\n"
    "    bnez a2, loop\n"
    "    la a4, out\n"
    "    s32i a3, a4, 0\n"
    "    halt\n"
)

#: Singleton crash strikes before quarantine; must match the server's
#: ``--quarantine-after`` so the poison assertions below are exact.
QUARANTINE_AFTER = 3


def body(name: str, loops: int) -> dict:
    return {
        "program": {
            "source": PROGRAM_TEMPLATE.format(loops=loops),
            "name": name,
        },
        "max_instructions": 10_000,
    }


def request(port: int, method: str, path: str, payload: dict | None = None):
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=60)
    try:
        encoded = None if payload is None else json.dumps(payload)
        headers = {"Content-Type": "application/json"} if encoded else {}
        conn.request(method, path, encoded, headers)
        response = conn.getresponse()
        return response.status, json.loads(response.read())
    finally:
        conn.close()


def main(argv: list[str]) -> int:
    port = int(argv[1])
    planned_crashes = int(argv[2])

    status, health = request(port, "GET", "/healthz")
    assert status == 200 and health["status"] == "ok", (status, health)

    # innocents answer 200 while the plan kills real workers under them
    for index in range(6):
        status, answer = request(
            port, "POST", "/estimate", body(f"ci_good{index}", loops=10 + index)
        )
        assert status == 200, (index, status, answer)
        assert answer["energy"] > 0, answer

    # the poison crashes its worker on every dispatch until quarantined
    status, answer = request(port, "POST", "/estimate", body("ci_poison", loops=50))
    assert status == 500, (status, answer)
    assert answer["stage"] == "quarantine", answer

    # ...and stays quarantined: the repeat is rejected without dispatch
    status, answer = request(port, "POST", "/estimate", body("ci_poison", loops=50))
    assert status == 500 and answer["stage"] == "quarantine", (status, answer)

    # traffic keeps flowing around the quarantine
    status, answer = request(port, "POST", "/estimate", body("ci_after", loops=30))
    assert status == 200, (status, answer)

    status, metrics = request(port, "GET", "/metrics")
    assert status == 200, (status, metrics)
    counters = metrics["counters"]
    supervision = metrics["supervision"]
    expected_crashes = planned_crashes + QUARANTINE_AFTER
    assert counters["worker_crashes_total"] >= expected_crashes, counters
    assert counters["pool_restarts_total"] >= 1, counters
    assert supervision["pool"]["mode"] == "fork", supervision["pool"]
    assert supervision["pool"]["restarts"] >= 1, supervision["pool"]
    assert supervision["chaos"]["injected"].get("crash", 0) == planned_crashes, (
        supervision["chaos"]
    )
    quarantine = supervision["quarantine"]
    assert quarantine["held"] == 1, quarantine
    assert "ci_poison" in quarantine["keys"].values(), quarantine
    assert counters["quarantine_rejections_total"] >= 1, counters

    # the breaker never opened: crashes were isolated faults, not an outage
    status, health = request(port, "GET", "/healthz")
    assert status == 200 and health["status"] == "ok", (status, health)
    assert supervision["breaker"]["state"] == "closed", supervision["breaker"]

    print(
        f"chaos smoke: {counters['worker_crashes_total']} worker crash(es) "
        f"survived, pool respawned {counters['pool_restarts_total']} time(s), "
        "'ci_poison' quarantined, service still ok"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
