    .data
buf: .word 1, 2, 3, 4, 5, 6, 7, 8
    .text
main:
    la a2, buf
    movi a3, 8
    movi a4, 0
accumulate:
    l32i a5, a2, 0
    add a4, a4, a5
    addi a2, a2, 4
    addi a3, a3, -1
    bnez a3, accumulate
    halt
