#!/usr/bin/env bash
# ISS throughput smoke, per engine tier: instrumented, per-op compiled
# and fused superop dispatch must all beat the reference interpreter on
# a two-program subset, the superop tier must not be slower than the
# compiled tier (geomean), and run_batch must not be slower than the
# same configs run solo.  All of that is --check's contract.
# Run identically by CI and locally:  bash scripts/ci/smoke_iss.sh
set -euo pipefail

SCRIPT_DIR="$(cd "$(dirname "${BASH_SOURCE[0]}")" && pwd)"
ROOT="$(cd "$SCRIPT_DIR/../.." && pwd)"
export PYTHONPATH="$ROOT/src${PYTHONPATH:+:$PYTHONPATH}"

WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT

python "$ROOT/benchmarks/bench_iss_throughput.py" \
    --programs tp01_alu_mix tp06_memcpy --repeat 2 --batch-configs 8 \
    --output "$WORK/iss-smoke.json" --check
echo "smoke_iss: OK"
