#!/usr/bin/env bash
# ISS throughput smoke: the compiled dispatch paths must not be slower
# than the reference interpreter on a two-program subset.
# Run identically by CI and locally:  bash scripts/ci/smoke_iss.sh
set -euo pipefail

SCRIPT_DIR="$(cd "$(dirname "${BASH_SOURCE[0]}")" && pwd)"
ROOT="$(cd "$SCRIPT_DIR/../.." && pwd)"
export PYTHONPATH="$ROOT/src${PYTHONPATH:+:$PYTHONPATH}"

WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT

python "$ROOT/benchmarks/bench_iss_throughput.py" \
    --programs tp01_alu_mix tp06_memcpy --repeat 2 \
    --output "$WORK/iss-smoke.json" --check
echo "smoke_iss: OK"
