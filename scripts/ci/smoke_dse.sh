#!/usr/bin/env bash
# Design-space exploration smoke: a cold exploration populates the result
# cache, an identical warm rerun must be answered entirely from it.
# Run identically by CI and locally:  bash scripts/ci/smoke_dse.sh
set -euo pipefail

SCRIPT_DIR="$(cd "$(dirname "${BASH_SOURCE[0]}")" && pwd)"
ROOT="$(cd "$SCRIPT_DIR/../.." && pwd)"
export PYTHONPATH="$ROOT/src${PYTHONPATH:+:$PYTHONPATH}"

WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT

python "$SCRIPT_DIR/make_smoke_model.py" "$WORK/smoke-model.json"

python -m repro explore --list-spaces

python -m repro explore "$WORK/smoke-model.json" --space reed_solomon_tuned \
    --strategy random --budget 6 --seed 1 --jobs 2 \
    --cache "$WORK/dse-smoke-cache" --top-k 3

python -m repro explore "$WORK/smoke-model.json" --space reed_solomon_tuned \
    --strategy random --budget 6 --seed 1 --jobs 2 \
    --cache "$WORK/dse-smoke-cache" --top-k 3 \
    | tee "$WORK/warm.txt"

grep -q "6 hit(s), 0 miss(es)" "$WORK/warm.txt"
echo "smoke_dse: OK (warm rerun fully cached)"
