"""Write the synthetic macro-model every CI smoke check estimates against.

The coefficients are an arbitrary-but-fixed ramp over the default
template — smoke checks exercise plumbing (caching, serving, profiling),
not model accuracy, so any well-formed model will do as long as every
check uses the *same* one.

    python scripts/ci/make_smoke_model.py [output.json]
"""

from __future__ import annotations

import pathlib
import sys

import numpy as np

from repro.core import EnergyMacroModel, default_template


def main(argv: list[str]) -> int:
    output = pathlib.Path(argv[1] if len(argv) > 1 else "smoke-model.json")
    template = default_template()
    coefficients = np.linspace(50, 5000, len(template))
    EnergyMacroModel(template, coefficients).save(str(output))
    print(f"smoke model: {len(template)} coefficients -> {output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
