#!/usr/bin/env bash
# Technology-calibration smoke: characterize a model at one operating
# point, re-estimate it at neighbouring supply voltages (energy must
# scale monotonically with V^2), then explore the same space at two
# points through one shared result cache — key sets must be disjoint
# across points and fully warm on rerun.
# Run identically by CI and locally:  bash scripts/ci/smoke_calib.sh
set -euo pipefail

SCRIPT_DIR="$(cd "$(dirname "${BASH_SOURCE[0]}")" && pwd)"
ROOT="$(cd "$SCRIPT_DIR/../.." && pwd)"
export PYTHONPATH="$ROOT/src${PYTHONPATH:+:$PYTHONPATH}"

WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT

FIT_POINT="90nm@1.2V@600MHz"
LOW_POINT="90nm@1.1V@550MHz"
HIGH_POINT="90nm@1.3V@650MHz"

# -- characterize once, bound to the fit point -------------------------------
python -m repro characterize --core-only --operating-point "$FIT_POINT" \
    -o "$WORK/calib-model.json" > /dev/null
grep -q "repro-energy-macro-model/2" "$WORK/calib-model.json"

# -- estimate at the fit point and two supply corners ------------------------
for point in "$FIT_POINT" "$LOW_POINT" "$HIGH_POINT"; do
    python -m repro estimate "$WORK/calib-model.json" \
        "$SCRIPT_DIR/smoke_loop.s" --format json --operating-point "$point" \
        > "$WORK/est-$point.json"
done

python - "$WORK" "$FIT_POINT" "$LOW_POINT" "$HIGH_POINT" <<'PY'
import json
import sys

work, fit, low, high = sys.argv[1:5]

def load(point):
    with open(f"{work}/est-{point}.json") as handle:
        payload = json.load(handle)
    assert payload["format"] == "repro-estimates/1", payload["format"]
    assert payload["operating_point"] == point, payload["operating_point"]
    (entry,) = payload["estimates"]
    return entry

entries = {point: load(point) for point in (fit, low, high)}
# supply scaling is monotone: E(1.1V) < E(1.2V) < E(1.3V)
assert entries[low]["energy"] < entries[fit]["energy"] < entries[high]["energy"], {
    point: entry["energy"] for point, entry in entries.items()
}
# the operating point never perturbs the simulation
assert len({entry["cycles"] for entry in entries.values()}) == 1
# exact first-order law: E scales with (V/V_fit)^2 at a fixed node
ratio = entries[high]["energy"] / entries[fit]["energy"]
expected = (1.3 / 1.2) ** 2
assert abs(ratio - expected) < 1e-9, (ratio, expected)
print("smoke_calib: voltage scaling OK "
      f"({entries[low]['energy']:.1f} < {entries[fit]['energy']:.1f} "
      f"< {entries[high]['energy']:.1f})")
PY

# -- per-point cache identity over one shared cache --------------------------
CACHE="$WORK/calib-cache"
MATRIX=(--operating-point "$LOW_POINT" --operating-point "$HIGH_POINT")

python -m repro explore "$WORK/calib-model.json" --space fir \
    --cache "$CACHE" "${MATRIX[@]}" | tee "$WORK/cold.txt"
# disjoint key sets: the second point must miss, not hit
grep -q "0 hit(s), 3 miss(es)" "$WORK/cold.txt"
grep -q "0 hit(s), 6 miss(es)" "$WORK/cold.txt"

python -m repro explore "$WORK/calib-model.json" --space fir \
    --cache "$CACHE" "${MATRIX[@]}" | tee "$WORK/warm.txt"
grep -q "3 hit(s), 0 miss(es)" "$WORK/warm.txt"
grep -q "6 hit(s), 0 miss(es)" "$WORK/warm.txt"

echo "smoke_calib: OK (monotone voltage scaling, disjoint per-point cache keys)"
