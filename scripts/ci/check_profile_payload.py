"""Assert a ``repro profile --format json`` payload has every section.

    python scripts/ci/check_profile_payload.py profile.json
"""

from __future__ import annotations

import json
import sys

EXPECTED = {"regions", "timeline", "hot_spots", "cache_events"}


def main(argv: list[str]) -> int:
    with open(argv[1], encoding="utf-8") as handle:
        payload = json.load(handle)
    assert set(payload) == EXPECTED, sorted(payload)
    print(f"profile payload: sections {sorted(payload)} all present")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
